//! The full SIR study of Section V of the paper in one binary.
//!
//! Reproduces, at reduced resolution, the four analyses of the SIR case
//! study: transient bounds (Figure 1), extremal bang-bang trajectories
//! (Figure 2), the steady-state Birkhoff centre (Figure 3), and the
//! comparison with stochastic simulation (Figure 6). The full-resolution
//! figure data is produced by the binaries of the `mfu-bench` crate.
//!
//! Run with `cargo run --release --example sir_epidemic`.

use mean_field_uncertain::core::birkhoff::{birkhoff_centre_2d, BirkhoffOptions};
use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::core::reachability::{reach_tube, ReachTubeOptions};
use mean_field_uncertain::core::uncertain::UncertainAnalysis;
use mean_field_uncertain::models::sir::SirModel;
use mean_field_uncertain::sim::gillespie::Simulator;
use mean_field_uncertain::sim::policy::HysteresisPolicy;
use mean_field_uncertain::sim::steady::{sample_steady_state, SteadyStateOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();

    // ---------------------------------------------------------------- Fig. 1
    println!("== Transient bounds on the infected fraction (cf. Figure 1) ==");
    let tube_options = ReachTubeOptions {
        time_points: 8,
        pontryagin: PontryaginOptions {
            grid_intervals: 150,
            ..Default::default()
        },
    };
    let tube = reach_tube(&drift, &x0, 4.0, 1, &tube_options)?;
    let uncertain = UncertainAnalysis {
        grid_per_axis: 20,
        time_intervals: 8,
        step: 2e-3,
    };
    let envelope = uncertain.envelope(&drift, &x0, 4.0)?;
    println!("  t     uncertain [lo, hi]      imprecise [lo, hi]");
    for (k, (t, lo, hi)) in tube.rows().enumerate() {
        println!(
            "  {t:<5.2} [{:.4}, {:.4}]      [{lo:.4}, {hi:.4}]",
            envelope.lower()[k + 1][1],
            envelope.upper()[k + 1][1],
        );
    }
    println!();

    // ---------------------------------------------------------------- Fig. 2
    println!("== Extremal trajectories for x_I(3) (cf. Figure 2) ==");
    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 400,
        ..Default::default()
    });
    let best = solver.maximize_coordinate(&drift, &x0, 3.0, 1)?;
    let worst = solver.minimize_coordinate(&drift, &x0, 3.0, 1)?;
    println!(
        "  max x_I(3) = {:.4}, bang-bang switches at {:?}",
        best.objective_value(),
        best.switching_times(1e-6)
    );
    println!(
        "  min x_I(3) = {:.4}, bang-bang switches at {:?}",
        worst.objective_value(),
        worst.switching_times(1e-6)
    );
    println!();

    // ---------------------------------------------------------------- Fig. 3
    println!("== Steady-state Birkhoff centre (cf. Figure 3) ==");
    let options = BirkhoffOptions {
        settle_time: 25.0,
        boundary_samples: 80,
        ..Default::default()
    };
    let centre = birkhoff_centre_2d(&drift, &x0, &options)?;
    let (lo, hi) = centre.polygon().bounding_box();
    println!(
        "  region area {:.4}, bounding box S ∈ [{:.3}, {:.3}], I ∈ [{:.3}, {:.3}]",
        centre.area(),
        lo.x,
        hi.x,
        lo.y,
        hi.y
    );
    println!();

    // ---------------------------------------------------------------- Fig. 6
    println!("== Stochastic simulation vs Birkhoff centre (cf. Figure 6) ==");
    for scale in [100usize, 1000] {
        let simulator = Simulator::new(sir.population_model()?, scale)?;
        let mut policy = HysteresisPolicy::new(
            vec![sir.contact_max],
            0,
            sir.contact_min,
            sir.contact_max,
            0, // observe X_S
            0.5,
            0.85,
            true,
        );
        let steady = SteadyStateOptions::new(20.0, 0.25, 200);
        let sample = sample_steady_state(
            &simulator,
            &sir.initial_counts(scale),
            &mut policy,
            &steady,
            7,
        )?;
        let points = sample.project(0, 1)?;
        let fraction = centre.containment_fraction(&points);
        println!(
            "  N = {scale:<6} fraction of stationary samples inside the centre: {fraction:.2}"
        );
    }
    println!();
    println!("Containment improves with N, as Theorem 3 predicts.");
    Ok(())
}
