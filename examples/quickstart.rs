//! Quickstart: bound an imprecise epidemic in a few lines.
//!
//! Builds the paper's SIR model, computes the mean-field bounds on the
//! infected fraction under both the uncertain (constant unknown `ϑ`) and the
//! imprecise (`ϑ(t)` free to vary) interpretations, and prints the result.
//!
//! Run with `cargo run --release --example quickstart`.

use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::core::uncertain::UncertainAnalysis;
use mean_field_uncertain::models::sir::SirModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();
    let horizon = 3.0;

    println!("SIR model of Bortolussi & Gast (DSN 2016), Section V");
    println!(
        "  a = {}, b = {}, c = {}, contact rate in [{}, {}], x0 = (S, I) = ({}, {})",
        sir.external_infection,
        sir.recovery,
        sir.immunity_loss,
        sir.contact_min,
        sir.contact_max,
        x0[0],
        x0[1]
    );
    println!();

    // Uncertain scenario: ϑ is an unknown constant — sweep a grid of values.
    let uncertain = UncertainAnalysis {
        grid_per_axis: 30,
        time_intervals: 30,
        step: 2e-3,
    };
    let envelope = uncertain.envelope(&drift, &x0, horizon)?;
    let last = envelope.times().len() - 1;
    println!(
        "uncertain  (constant unknown ϑ): x_I({horizon}) ∈ [{:.4}, {:.4}]",
        envelope.lower()[last][1],
        envelope.upper()[last][1]
    );

    // Imprecise scenario: ϑ(t) may vary arbitrarily — Pontryagin bounds.
    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 300,
        ..Default::default()
    });
    let (lo, hi) = solver.coordinate_extremes(&drift, &x0, horizon, 1)?;
    println!("imprecise  (time-varying ϑ):     x_I({horizon}) ∈ [{lo:.4}, {hi:.4}]");
    println!();
    println!(
        "The imprecise interval strictly contains the uncertain one: the environment\n\
         can drive the epidemic to levels no constant contact rate reaches."
    );
    Ok(())
}
