//! DSL quickstart: declare a model textually, then analyse and simulate it.
//!
//! Declares the paper's SIR epidemic in the `mfu-lang` DSL, checks it
//! against the hand-coded model, bounds the infected fraction with the
//! Pontryagin sweep, and then walks the scenario registry: every built-in
//! scenario — the GPS/MAP queue of Section VI with its guarded service
//! rates, the botnet and load-balancer models that exist only in the DSL,
//! and the epidemic family — is compiled, bounded via `mfu-core` and
//! simulated via `mfu-sim` from the same source text. (The `mfu` CLI does
//! the same from the command line: `mfu run gps --simulate 500`.)
//!
//! Run with `cargo run --release --example dsl_quickstart`.

use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::lang::ScenarioRegistry;
use mean_field_uncertain::sim::gillespie::{SimulationOptions, Simulator};
use mean_field_uncertain::sim::policy::ConstantPolicy;

const SIR_DSL: &str = "
model sir;
species S, I, R;
param contact in [1, 10];
const a = 0.1;   // external infection
const b = 5;     // recovery
const c = 1;     // loss of immunity
rule infect:  S -> I @ (a + contact * I) * S;
rule recover: I -> R @ b * I;
rule wane:    R -> S @ c * R;
init S = 0.7, I = 0.3, R = 0;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- a model from source text ---------------------------------------
    let model = mean_field_uncertain::lang::compile(SIR_DSL)?;
    println!("compiled `{}`: species {:?}", model.name(), model.species());

    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 300,
        // multi-start protects the higher-dimensional scenarios (botnet)
        // from local extremals of the forward-backward sweep
        multi_start: true,
        ..Default::default()
    });
    let (lo, hi) = solver.coordinate_extremes(
        &model.reduced_drift(),
        &model.reduced_initial_state(),
        3.0,
        1,
    )?;
    println!("  imprecise bounds from the DSL model: x_I(3) ∈ [{lo:.4}, {hi:.4}]");
    println!();

    // --- the scenario registry ------------------------------------------
    let registry = ScenarioRegistry::with_builtins();
    println!("registry: {}", registry.names().join(", "));
    for scenario in registry.iter() {
        let model = scenario.compile()?;
        let coordinate = scenario.objective_coordinate();
        let horizon = scenario.horizon();

        // mean-field side: transient reach interval of the objective
        let (lo, hi) = solver.coordinate_extremes(
            &model.reduced_drift(),
            &model.reduced_initial_state(),
            horizon,
            coordinate,
        )?;

        // stochastic side: one Gillespie run at N = 500 under the midpoint ϑ
        let scale = 500;
        let simulator = Simulator::new(model.population_model()?, scale)?;
        let mut policy = ConstantPolicy::new(model.params().midpoint());
        let run = simulator.simulate(
            &model.initial_counts(scale),
            &mut policy,
            &SimulationOptions::new(horizon),
            7,
        )?;
        let reduced_dim = model.reduced_initial_state().dim();
        let simulated = run.trajectory().last_state()[coordinate.min(reduced_dim - 1)];

        println!(
            "  {:<14} {:<55} x[{}]({horizon}) ∈ [{lo:.4}, {hi:.4}], one N={scale} run ends at {simulated:.4}",
            scenario.name(),
            scenario.summary(),
            coordinate,
        );
    }
    println!();
    println!("Every scenario above came from DSL text: same source, two backends.");
    Ok(())
}
