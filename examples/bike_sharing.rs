//! The single-station bike-sharing example of Sections II–III of the paper.
//!
//! Shows the three layers of the library on the paper's running example:
//! the exact finite chain (uniformization), the stochastic simulator, and the
//! mean-field differential-inclusion bounds, all derived from the same
//! population model.
//!
//! Run with `cargo run --release --example bike_sharing`.

use mean_field_uncertain::core::hull::{DifferentialHull, HullOptions};
use mean_field_uncertain::core::inclusion::DifferentialInclusion;
use mean_field_uncertain::ctmc::finite::{ExpansionOptions, FiniteChain};
use mean_field_uncertain::ctmc::imprecise::IntervalGenerator;
use mean_field_uncertain::models::bike::BikeStationModel;
use mean_field_uncertain::sim::gillespie::{SimulationOptions, Simulator};
use mean_field_uncertain::sim::policy::ConstantPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bike = BikeStationModel::symmetric();
    let model = bike.population_model()?;
    let racks = 20usize;
    let horizon = 5.0;

    println!(
        "Single-station bike sharing: {racks} racks, occupancy starts at {}",
        bike.initial_occupancy
    );
    println!();

    // Exact answer for a small station via uniformization.
    let chain = FiniteChain::expand(
        &model,
        racks,
        &bike.initial_counts(racks),
        &[1.0, 1.0],
        &ExpansionOptions::default(),
    )?;
    let transient =
        chain
            .generator()
            .transient_distribution(&chain.initial_distribution(), horizon, 1e-9)?;
    let exact_mean = chain.mean_normalized(&transient)?;
    println!(
        "exact (uniformization, ϑ = (1, 1)):   E[occupancy({horizon})] = {:.4}",
        exact_mean[0]
    );

    // Stochastic simulation of the same chain.
    let simulator = Simulator::new(model.clone(), racks)?;
    let replications = 200;
    let mut total = 0.0;
    for seed in 0..replications {
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let run = simulator.simulate(
            &bike.initial_counts(racks),
            &mut policy,
            &SimulationOptions::new(horizon).record_stride(16),
            seed,
        )?;
        total += run.trajectory().last_state()[0];
    }
    println!(
        "simulation ({replications} replications):      E[occupancy({horizon})] ≈ {:.4}",
        total / replications as f64
    );
    println!();

    // Mean-field bounds when both rates are imprecise.
    let drift = bike.drift();
    let hull = DifferentialHull::new(
        &drift,
        HullOptions {
            clamp: Some((0.0, 1.0)),
            ..Default::default()
        },
    );
    let bounds = hull.bounds(&bike.initial_state(), horizon)?;
    let (lo, hi) = bounds.final_bounds();
    println!(
        "differential hull (imprecise rates):  occupancy({horizon}) ∈ [{:.3}, {:.3}]",
        lo[0], hi[0]
    );

    // The extreme constant selections of the inclusion (drain-as-fast-as-possible
    // and fill-as-fast-as-possible) confirm that the hull bounds are attained.
    let inclusion = DifferentialInclusion::new(&drift);
    let drain = inclusion
        .solve_fixed_step(
            &mean_field_uncertain::core::signal::ConstantSignal::new(vec![
                bike.pickup_max,
                bike.return_min,
            ]),
            bike.initial_state(),
            horizon,
            1e-3,
        )?
        .last_state()[0];
    let fill = inclusion
        .solve_fixed_step(
            &mean_field_uncertain::core::signal::ConstantSignal::new(vec![
                bike.pickup_min,
                bike.return_max,
            ]),
            bike.initial_state(),
            horizon,
            1e-3,
        )?
        .last_state()[0];
    println!(
        "extreme constant selections:          occupancy({horizon}) ∈ [{:.3}, {:.3}]",
        drain.max(0.0),
        fill.min(1.0)
    );
    println!();

    // Section II view: the imprecise finite chain and its Kolmogorov bounds.
    // All pick-up/return rates are only known up to their intervals; bound the
    // probability that the small station is empty at the horizon.
    let small_racks = 6usize;
    let small_chain = FiniteChain::expand(
        &model,
        small_racks,
        &[small_racks as i64 / 2],
        &[1.0, 1.0],
        &ExpansionOptions::default(),
    )?;
    let mut interval_generator = IntervalGenerator::new(small_chain.len());
    let scale = small_racks as f64;
    for bikes in 0..=small_racks as i64 {
        let from = small_chain
            .index_of(&[bikes])
            .expect("all occupancy levels are reachable");
        // a pick-up removes one bike, a return adds one — both with interval rates
        if bikes > 0 {
            let to = small_chain.index_of(&[bikes - 1]).expect("reachable");
            interval_generator.set_rate_bounds(
                from,
                to,
                bike.pickup_min * scale,
                bike.pickup_max * scale,
            )?;
        }
        if bikes < small_racks as i64 {
            let to = small_chain.index_of(&[bikes + 1]).expect("reachable");
            interval_generator.set_rate_bounds(
                from,
                to,
                bike.return_min * scale,
                bike.return_max * scale,
            )?;
        }
    }
    let empty_index = small_chain
        .index_of(&[0])
        .expect("empty state is reachable");
    let (kolmogorov_lo, kolmogorov_hi) =
        interval_generator.transient_bounds(&small_chain.initial_distribution(), 0.2, 1e-4)?;
    println!(
        "imprecise Kolmogorov bounds ({small_racks} racks): P(empty at t = 0.2) ∈ [{:.3}, {:.3}]",
        kolmogorov_lo[empty_index], kolmogorov_hi[empty_index]
    );
    println!();
    println!(
        "With rates free to vary in [{}, {}] × [{}, {}], the adversarial environment can\n\
         empty or fill the station entirely; the mean-field bounds capture that.",
        bike.pickup_min, bike.pickup_max, bike.return_min, bike.return_max
    );
    Ok(())
}
