//! Robust tuning of the GPS weights (Section VI-C of the paper).
//!
//! The generalized-processor-sharing machine serves two job classes with
//! weights `φ_1, φ_2`. The job-creation rates are imprecise, so the design
//! question is: which weights minimise the *worst-case* total queue length?
//! The paper finds the optimum near `φ_1 = 9 φ_2`. This example computes the
//! worst-case backlog with the Pontryagin sweep for a sweep of weights and
//! then refines the optimum with the robust-design search.
//!
//! Run with `cargo run --release --example gps_robust_tuning`.

use mean_field_uncertain::core::pontryagin::{
    LinearObjective, PontryaginOptions, PontryaginSolver,
};
use mean_field_uncertain::core::robust::{minimize_worst_case, RobustOptions};
use mean_field_uncertain::models::gps::GpsModel;
use mean_field_uncertain::num::StateVec;

/// Worst-case total queue length `max_ϑ (Q_1 + Q_2)(T)` of the MAP scenario
/// for a candidate weight `φ_1` (with `φ_2 = 1`).
fn worst_case_backlog(phi1: f64, horizon: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let gps = GpsModel::paper_with_weights(phi1, 1.0);
    let drift = gps.map_drift();
    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 150,
        multi_start: true,
        ..Default::default()
    });
    // maximise Q_1 + Q_2 at the horizon (coordinates 1 and 3 of the MAP state)
    let objective = LinearObjective::maximize(StateVec::from(vec![0.0, 1.0, 0.0, 1.0]));
    let solution = solver.solve(&drift, &gps.map_initial_state(), horizon, objective)?;
    Ok(solution.objective_value())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = 5.0;
    println!("== Worst-case total queue length as a function of φ1 (φ2 = 1) ==");
    println!("  φ1      max_ϑ (Q1 + Q2)({horizon})");
    for phi1 in [1.0, 2.0, 4.0, 6.0, 8.0, 9.0, 10.0, 12.0, 16.0] {
        let backlog = worst_case_backlog(phi1, horizon)?;
        println!("  {phi1:<6.1}  {backlog:.4}");
    }
    println!();

    println!("== Robust optimum ==");
    let robust = RobustOptions {
        coarse_grid: 10,
        design_tolerance: 0.05,
        ..Default::default()
    };
    let best = minimize_worst_case(1.0, 16.0, &robust, |phi1| {
        worst_case_backlog(phi1, horizon)
            .map_err(|err| mean_field_uncertain::core::CoreError::invalid_input(err.to_string()))
    })?;
    println!(
        "  optimal φ1 ≈ {:.2} (worst-case backlog {:.4}, {} objective evaluations)",
        best.design, best.worst_case, best.evaluations
    );
    println!("  The paper reports the optimum near φ1 = 9.0 φ2.");
    Ok(())
}
