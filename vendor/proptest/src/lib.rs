//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access. This vendored crate keeps
//! the workspace's property tests runnable by reimplementing the surface
//! they use — the [`Strategy`] trait, range/tuple/`vec` strategies, the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros and
//! [`ProptestConfig`] — as plain randomised testing:
//!
//! * cases are generated from a generator seeded with a hash of the test
//!   name, so every run explores the same deterministic case set;
//! * failures panic immediately with the ordinary `assert!` message — there
//!   is **no shrinking**; the failing values are reported as sampled.
//!
//! Swapping the real proptest back in requires no change to the tests.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator driving the sampled cases.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash), so each property
    /// sees a reproducible case sequence independent of execution order.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    fn word(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of an associated type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply samples.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.word() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.word() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible sizes for a generated collection: `[min, max)`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max: range.end.max(range.start + 1),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`]; `size` may be an exact `usize` or a
    /// `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min).max(1);
            let len = self.size.min
                + (Range {
                    start: 0usize,
                    end: span,
                })
                .sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace alias used inside property bodies.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property; panics with the case values
/// reported by the standard `assert!` message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit(dim: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0..1.0f64, dim)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled ranges respect their bounds.
        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 2usize..9, flag in crate::bool::ANY) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..9).contains(&n));
            let _ = flag;
        }

        /// Vec strategies produce the requested sizes.
        #[test]
        fn vec_sizes_are_in_range(v in prop::collection::vec(0.0..1.0f64, 2..10), w in unit(4)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().chain(w.iter()).all(|u| (0.0..1.0).contains(u)));
        }

        /// Tuple strategies sample componentwise.
        #[test]
        fn tuples_sample_componentwise(p in (0.0..1.0f64, 5.0..6.0f64)) {
            prop_assert!((0.0..1.0).contains(&p.0) && (5.0..6.0).contains(&p.1));
        }
    }

    #[test]
    fn same_name_gives_same_cases() {
        let mut a = crate::TestRng::deterministic("case");
        let mut b = crate::TestRng::deterministic("case");
        let s = 0.0..1.0f64;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a).to_bits(), s.sample(&mut b).to_bits());
        }
    }
}
