//! Offline stand-in for the parts of `rand` this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the exact API surface the simulator relies on — [`RngCore`],
//! [`Rng::gen`], [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — on
//! top of a xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic in the seed (the property the simulation tests assert) but
//! deliberately *not* bit-compatible with the real `rand::rngs::StdRng`;
//! nothing in the workspace depends on the exact stream.

#![forbid(unsafe_code)]

/// Low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] — the stand-in
/// for sampling from `rand`'s `Standard` distribution.
pub trait SampleStandard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`, which the parameter policies take).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform/standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Poisson sampling, the workhorse of τ-leaping.
pub mod poisson {
    use super::{Rng, RngCore};

    /// Mean below which [`sample`] uses Knuth's product-of-uniforms
    /// inversion (`O(mean)` per draw, exact) and at or above which it
    /// switches to Hörmann's PTRS transformed rejection (`O(1)` expected).
    pub const INVERSION_MEAN_MAX: f64 = 10.0;

    /// `ln k!` — exact summation for small `k`, a Stirling series beyond
    /// (absolute error below `1e-10` for `k ≥ 20`, far finer than the
    /// resolution the PTRS acceptance test needs).
    fn ln_factorial(k: f64) -> f64 {
        if k < 20.0 {
            let mut acc = 0.0;
            let mut i = 2.0;
            while i <= k {
                acc += i.ln();
                i += 1.0;
            }
            return acc;
        }
        let n = k;
        let n2 = n * n;
        (n + 0.5) * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * n)
            - 1.0 / (360.0 * n * n2)
            + 1.0 / (1260.0 * n * n2 * n2)
    }

    /// Draws one Poisson(`mean`) variate.
    ///
    /// Small means use inversion by sequential search (Knuth's product of
    /// uniforms — exact, `O(mean)` draws); means of
    /// [`INVERSION_MEAN_MAX`] and above use the PTRS transformed-rejection
    /// sampler of Hörmann (*The transformed rejection method for
    /// generating Poisson random variables*, 1993), which is exact (the
    /// acceptance test evaluates the true log-pmf) and consumes `O(1)`
    /// uniforms per draw independent of the mean.
    ///
    /// A non-positive `mean` yields `0`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is NaN or infinite.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, mean: f64) -> u64 {
        assert!(mean.is_finite(), "Poisson mean must be finite");
        if mean <= 0.0 {
            return 0;
        }
        if mean < INVERSION_MEAN_MAX {
            // Knuth: count the uniforms whose product stays above e^-mean.
            let limit = (-mean).exp();
            let mut k = 0u64;
            let mut product: f64 = rng.gen();
            while product > limit {
                k += 1;
                product *= rng.gen::<f64>();
            }
            return k;
        }
        // PTRS (Hörmann 1993): one uniform pair per attempt, acceptance
        // probability well above 90% for every mean ≥ 10.
        let b = 0.931 + 2.53 * mean.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        let ln_mean = mean.ln();
        loop {
            let u = rng.gen::<f64>() - 0.5;
            let v: f64 = rng.gen();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + mean + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            if (v * inv_alpha / (a / (us * us) + b)).ln() <= k * ln_mean - mean - ln_factorial(k) {
                return k as u64;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::super::rngs::StdRng;
        use super::super::SeedableRng;
        use super::{ln_factorial, sample};

        fn mean_and_variance(seed: u64, mean: f64, draws: usize) -> (f64, f64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<f64> = (0..draws).map(|_| sample(&mut rng, mean) as f64).collect();
            let m = samples.iter().sum::<f64>() / draws as f64;
            let v = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / (draws - 1) as f64;
            (m, v)
        }

        #[test]
        fn moments_match_over_both_regimes() {
            // Poisson mean == variance; tolerances are several standard
            // errors wide and the seeds are fixed, so this cannot flake.
            for (seed, mean) in [(1u64, 0.5), (2, 3.0), (3, 9.99), (4, 10.0), (5, 42.0)] {
                let draws = 40_000;
                let (m, v) = mean_and_variance(seed, mean, draws);
                let se = (mean / draws as f64).sqrt();
                assert!((m - mean).abs() < 6.0 * se, "mean {mean}: sampled {m}");
                assert!(
                    (v / mean - 1.0).abs() < 0.08,
                    "mean {mean}: variance {v} off"
                );
            }
            // large-mean PTRS regime (τ-leap firing counts at N = 10⁶)
            let (m, v) = mean_and_variance(6, 1.0e4, 20_000);
            assert!((m - 1.0e4).abs() < 5.0, "large-mean sampled mean {m}");
            assert!((v / 1.0e4 - 1.0).abs() < 0.05, "large-mean variance {v}");
        }

        #[test]
        fn edge_means_and_determinism() {
            let mut rng = StdRng::seed_from_u64(7);
            assert_eq!(sample(&mut rng, 0.0), 0);
            assert_eq!(sample(&mut rng, -3.0), 0);
            // tiny mean: overwhelmingly zero but occasionally one
            let zeros = (0..1000).filter(|_| sample(&mut rng, 1e-3) == 0).count();
            assert!(zeros > 980, "{zeros}");
            // same seed, same stream
            let mut a = StdRng::seed_from_u64(11);
            let mut b = StdRng::seed_from_u64(11);
            for mean in [0.2, 5.0, 17.0, 5000.0] {
                assert_eq!(sample(&mut a, mean), sample(&mut b, mean));
            }
        }

        #[test]
        #[should_panic(expected = "finite")]
        fn rejects_nan_means() {
            let mut rng = StdRng::seed_from_u64(1);
            let _ = sample(&mut rng, f64::NAN);
        }

        #[test]
        fn ln_factorial_matches_direct_summation() {
            // the Stirling branch must join the exact branch smoothly
            for k in [20u64, 25, 50, 170, 1000] {
                let exact: f64 = (2..=k).map(|i| (i as f64).ln()).sum();
                let approx = ln_factorial(k as f64);
                assert!(
                    (approx - exact).abs() < 1e-9 * exact.max(1.0),
                    "k = {k}: {approx} vs {exact}"
                );
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn RngCore = &mut rng;
        let u: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&u));
        let b: bool = dynrng.gen();
        let _ = b;
    }
}
