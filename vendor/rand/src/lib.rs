//! Offline stand-in for the parts of `rand` this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the exact API surface the simulator relies on — [`RngCore`],
//! [`Rng::gen`], [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — on
//! top of a xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic in the seed (the property the simulation tests assert) but
//! deliberately *not* bit-compatible with the real `rand::rngs::StdRng`;
//! nothing in the workspace depends on the exact stream.

#![forbid(unsafe_code)]

/// Low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] — the stand-in
/// for sampling from `rand`'s `Standard` distribution.
pub trait SampleStandard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`, which the parameter policies take).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the uniform/standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn RngCore = &mut rng;
        let u: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&u));
        let b: bool = dynrng.gen();
        let _ = b;
    }
}
