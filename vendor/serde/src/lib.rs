//! Offline stand-in for `serde`.
//!
//! The workspace uses serde exclusively for `#[derive(Serialize,
//! Deserialize)]` on plain-data model types; nothing is serialised at
//! runtime. This crate provides the two marker traits and re-exports the
//! no-op derive macros from the vendored [`serde_derive`] so that the
//! original `use serde::{Deserialize, Serialize};` lines keep compiling
//! without network access. Replacing the `vendor/` crates with the real
//! serde requires no change to the rest of the workspace.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented by the no-op
/// derive; present so bounds written against it still name a real trait).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (see [`Serialize`]).
pub trait Deserialize<'de> {}
