//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored crate
//! keeps the `benches/` targets compiling and running: it implements
//! [`Criterion::benchmark_group`]/[`Criterion::bench_function`],
//! [`Bencher::iter`] and the [`criterion_group!`]/[`criterion_main!`]
//! macros on top of plain [`std::time::Instant`] timing. Each benchmark is
//! warmed up once, timed for `sample_size` samples, and reported to stdout
//! as `name  …  median <t> (min <t> … max <t>)`. There is no statistical
//! analysis, plotting or baseline comparison — swap the real criterion back
//! in for that; the bench sources need no change.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the std implementation).
pub use std::hint::black_box;

/// Top-level benchmark driver, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark (a group of one, default sample size).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let name = name.into();
        self.benchmark_group(name.clone()).run(&name, 10, f);
        self.benches_run += 1;
    }

    /// Prints a closing line; called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("finished {} benchmark(s)", self.benches_run);
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and immediately runs one benchmark of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size;
        self.run(&id, samples, f);
        self.criterion.benches_run += 1;
        self
    }

    /// Ends the group (kept for API compatibility; groups report eagerly).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, samples: usize, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
            budget: samples,
        };
        f(&mut bencher);
        let mut timed = bencher.samples;
        if timed.is_empty() {
            println!("{id:<60} no samples recorded");
            return;
        }
        timed.sort_unstable();
        let median = timed[timed.len() / 2];
        println!(
            "{id:<60} median {} (min {} … max {}, {} samples)",
            format_duration(median),
            format_duration(timed[0]),
            format_duration(*timed.last().expect("non-empty")),
            timed.len(),
        );
    }
}

/// Times closures handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `sample_size` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn harness_runs_and_counts_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.benches_run, 2);
        c.final_summary();
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with("s"));
    }
}
