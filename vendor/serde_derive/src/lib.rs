//! Offline stand-in for `serde_derive`.
//!
//! The build environment of this workspace has no access to crates.io, and
//! the workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations — no code path actually serialises anything. These derives
//! therefore expand to nothing; swapping the real `serde`/`serde_derive`
//! back in requires no source change outside the vendored crates.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
