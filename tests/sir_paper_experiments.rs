//! Integration tests reproducing, at reduced resolution, the qualitative
//! claims of the SIR case study (Section V, Figures 1–3 of the paper).

use mean_field_uncertain::core::birkhoff::{birkhoff_centre_2d, BirkhoffOptions};
use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::core::uncertain::UncertainAnalysis;
use mean_field_uncertain::models::sir::SirModel;
use mean_field_uncertain::num::geometry::Point2;

fn solver() -> PontryaginSolver {
    PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 200,
        ..Default::default()
    })
}

/// Figure 1: the imprecise bounds contain the uncertain bounds, with a gap
/// that grows with the horizon, and the imprecise maximum eventually exceeds
/// every constant-ϑ trajectory.
#[test]
fn figure1_imprecise_bounds_contain_uncertain_bounds() {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();
    let analysis = UncertainAnalysis {
        grid_per_axis: 12,
        time_intervals: 8,
        step: 2e-3,
    };

    let mut previous_excess = 0.0;
    for (k, horizon) in [1.0, 2.0, 4.0].iter().enumerate() {
        let envelope = analysis.envelope(&drift, &x0, *horizon).unwrap();
        let last = envelope.times().len() - 1;
        let (unc_lo, unc_hi) = (envelope.lower()[last][1], envelope.upper()[last][1]);
        let (imp_lo, imp_hi) = solver()
            .coordinate_extremes(&drift, &x0, *horizon, 1)
            .unwrap();

        assert!(
            imp_lo <= unc_lo + 1e-3,
            "horizon {horizon}: imprecise lower bound above uncertain"
        );
        assert!(
            imp_hi >= unc_hi - 1e-3,
            "horizon {horizon}: imprecise upper bound below uncertain"
        );
        // all bounds stay in the simplex
        for v in [unc_lo, unc_hi, imp_lo, imp_hi] {
            assert!((-1e-6..=1.0 + 1e-6).contains(&v));
        }
        let excess = imp_hi - unc_hi;
        if k > 0 {
            assert!(
                excess >= previous_excess - 5e-3,
                "the imprecise/uncertain gap should grow with the horizon"
            );
        }
        previous_excess = excess;
    }
    // At T = 4 the gap is substantial (the paper shows roughly 0.09 vs 0.15).
    assert!(
        previous_excess > 0.02,
        "expected a clear gap at T = 4, got {previous_excess}"
    );
}

/// Figure 2: the extremal controls are bang-bang. The control maximising
/// x_I(3) holds ϑ^min and switches to ϑ^max once, late in the horizon; the
/// minimising control switches twice.
#[test]
fn figure2_extremal_controls_are_bang_bang() {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();
    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 400,
        ..Default::default()
    });

    let maximal = solver.maximize_coordinate(&drift, &x0, 3.0, 1).unwrap();
    let switches = maximal.switching_times(1e-6);
    assert_eq!(
        switches.len(),
        1,
        "maximising control should switch exactly once, got {switches:?}"
    );
    assert!(
        switches[0] > 1.8 && switches[0] < 2.8,
        "paper reports the switch near t = 2.25, got {switches:?}"
    );
    // every control value is at a vertex of Θ (bang-bang)
    for value in maximal.control().values() {
        let v = value[0];
        assert!((v - sir.contact_min).abs() < 1e-6 || (v - sir.contact_max).abs() < 1e-6);
    }
    // the extremal value beats every constant-ϑ trajectory
    let analysis = UncertainAnalysis {
        grid_per_axis: 10,
        time_intervals: 4,
        step: 2e-3,
    };
    let envelope = analysis.envelope(&drift, &x0, 3.0).unwrap();
    let unc_hi = envelope.upper()[4][1];
    assert!(maximal.objective_value() > unc_hi + 0.02);

    let minimal = solver.minimize_coordinate(&drift, &x0, 3.0, 1).unwrap();
    let switches = minimal.switching_times(1e-6);
    assert_eq!(
        switches.len(),
        2,
        "minimising control should switch twice, got {switches:?}"
    );
    assert!(
        switches[0] < 1.2 && switches[1] > 1.6,
        "paper reports switches near 0.7 and 2.2"
    );
    assert!(minimal.objective_value() < envelope.lower()[4][1] + 1e-3);
}

/// Figure 3: the steady state of the uncertain model (fixed-point curve) is
/// contained in the Birkhoff centre of the imprecise model, and the centre
/// extends strictly beyond the curve.
#[test]
fn figure3_birkhoff_centre_contains_fixed_point_curve() {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();

    let analysis = UncertainAnalysis {
        grid_per_axis: 12,
        time_intervals: 8,
        step: 2e-3,
    };
    let fixed_points = analysis.fixed_points(&drift, &x0).unwrap();
    assert!(fixed_points.len() >= 10);

    let options = BirkhoffOptions {
        step: 2e-3,
        settle_time: 25.0,
        boundary_samples: 80,
        ..Default::default()
    };
    let centre = birkhoff_centre_2d(&drift, &x0, &options).unwrap();
    assert!(
        centre.area() > 1e-3,
        "the imprecise steady state is a genuine region"
    );

    for fp in &fixed_points {
        let point = Point2::new(fp.state[0], fp.state[1]);
        assert!(
            centre.polygon().distance_to_region(point) < 5e-3,
            "fixed point for ϑ = {:?} lies outside the Birkhoff centre",
            fp.theta
        );
    }

    // the centre reaches x_S below and x_I above every fixed point
    let min_s_curve = fixed_points
        .iter()
        .map(|fp| fp.state[0])
        .fold(f64::INFINITY, f64::min);
    let max_i_curve = fixed_points
        .iter()
        .map(|fp| fp.state[1])
        .fold(f64::NEG_INFINITY, f64::max);
    let (bb_lo, bb_hi) = centre.polygon().bounding_box();
    assert!(bb_lo.x < min_s_curve - 0.01);
    assert!(bb_hi.y > max_i_curve + 0.01);
}
