//! Integration tests for the GPS queueing case study (Section VI, Figure 7
//! and the robust-tuning exercise of the paper).

use mean_field_uncertain::core::pontryagin::{
    LinearObjective, PontryaginOptions, PontryaginSolver,
};
use mean_field_uncertain::core::robust::{minimize_worst_case, RobustOptions};
use mean_field_uncertain::core::uncertain::UncertainAnalysis;
use mean_field_uncertain::core::CoreError;
use mean_field_uncertain::models::gps::GpsModel;
use mean_field_uncertain::num::StateVec;

fn solver() -> PontryaginSolver {
    PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 120,
        ..Default::default()
    })
}

/// Figure 7(a): with Poisson job creation, letting the rate vary in time does
/// not produce materially worse congestion than the worst constant rate —
/// the imprecise and uncertain maxima essentially coincide.
#[test]
fn figure7_poisson_imprecise_matches_uncertain_maximum() {
    let gps = GpsModel::paper();
    let drift = gps.poisson_drift();
    let x0 = gps.poisson_initial_state();
    let horizon = 3.0;

    let analysis = UncertainAnalysis {
        grid_per_axis: 6,
        time_intervals: 6,
        step: 2e-3,
    };
    let envelope = analysis.envelope(&drift, &x0, horizon).unwrap();
    let unc_q2 = envelope.upper()[6][1];

    let imprecise = solver()
        .maximize_coordinate(&drift, &x0, horizon, 1)
        .unwrap();
    let gap = imprecise.objective_value() - unc_q2;
    assert!(
        gap >= -1e-3,
        "imprecise max cannot be below the uncertain max"
    );
    assert!(
        gap < 0.02,
        "Poisson scenario: imprecise max should essentially equal the uncertain max (gap {gap})"
    );
}

/// Figure 7(b): with MAP job creation, a time-varying rate can exploit the
/// activation delay to build bursts, so the imprecise maximum of the class-2
/// queue clearly exceeds every constant-rate maximum.
#[test]
fn figure7_map_imprecise_exceeds_uncertain_maximum() {
    let gps = GpsModel::paper();
    let drift = gps.map_drift();
    let x0 = gps.map_initial_state();
    let horizon = 3.0;

    let analysis = UncertainAnalysis {
        grid_per_axis: 6,
        time_intervals: 6,
        step: 2e-3,
    };
    let envelope = analysis.envelope(&drift, &x0, horizon).unwrap();
    let unc_q1 = envelope.upper()[6][1];

    let imprecise = solver()
        .maximize_coordinate(&drift, &x0, horizon, 1)
        .unwrap();
    let gap = imprecise.objective_value() - unc_q1;
    assert!(
        gap > 0.01,
        "MAP scenario: imprecise Q1 max should exceed the uncertain max by a clear margin (gap {gap})"
    );
}

/// The queues of the mean field stay in [0, 1] under every analysis (they are
/// per-class fractions of a closed population).
#[test]
fn gps_queues_stay_in_the_unit_interval() {
    let gps = GpsModel::paper();
    let drift = gps.map_drift();
    let x0 = gps.map_initial_state();
    let (lo, hi) = solver().coordinate_extremes(&drift, &x0, 3.0, 3).unwrap();
    assert!(lo >= -1e-6 && hi <= 1.0 + 1e-6, "[{lo}, {hi}]");
}

/// Section VI-C: the worst-case total backlog is a well-behaved function of
/// the GPS weight, and the robust-design search finds a weight at least as
/// good as every sampled candidate.
#[test]
fn robust_weight_search_dominates_a_coarse_sweep() {
    let horizon = 2.0;
    let worst_case = |phi1: f64| -> Result<f64, CoreError> {
        let gps = GpsModel {
            weights: [phi1, 1.0],
            ..GpsModel::paper()
        };
        let drift = gps.map_drift();
        let objective = LinearObjective::maximize(StateVec::from(vec![0.0, 1.0, 0.0, 1.0]));
        let solution = solver().solve(&drift, &gps.map_initial_state(), horizon, objective)?;
        Ok(solution.objective_value())
    };

    let robust = RobustOptions {
        coarse_grid: 6,
        design_tolerance: 0.1,
        ..Default::default()
    };
    let best = minimize_worst_case(1.0, 12.0, &robust, worst_case).unwrap();
    for phi1 in [1.0, 3.0, 6.0, 9.0, 12.0] {
        let value = worst_case(phi1).unwrap();
        assert!(
            best.worst_case <= value + 1e-3,
            "robust optimum {} at φ1 = {} beaten by φ1 = {phi1} ({value})",
            best.worst_case,
            best.design
        );
    }
}
