//! Cross-layer consistency tests: the stochastic simulator, the exact
//! finite-chain analysis and the mean-field limit must agree where the theory
//! says they should (Theorem 1 and the Kurtz-style convergence it builds on).

use mean_field_uncertain::core::birkhoff::{birkhoff_centre_2d, BirkhoffOptions};
use mean_field_uncertain::ctmc::finite::{ExpansionOptions, FiniteChain};
use mean_field_uncertain::models::bike::BikeStationModel;
use mean_field_uncertain::models::sir::SirModel;
use mean_field_uncertain::num::ode::{Integrator, Rk4};
use mean_field_uncertain::sim::ensemble::{run_ensemble, EnsembleOptions};
use mean_field_uncertain::sim::gillespie::{SimulationOptions, Simulator};
use mean_field_uncertain::sim::policy::{ConstantPolicy, HysteresisPolicy};
use mean_field_uncertain::sim::steady::{sample_steady_state, SteadyStateOptions};

/// The empirical mean of the simulator matches the exact uniformization answer
/// on a small bike station (same model, two independent code paths).
#[test]
fn simulator_matches_uniformization_on_a_small_station() {
    let bike = BikeStationModel::symmetric();
    let model = bike.population_model().unwrap();
    let racks = 10usize;
    let horizon = 3.0;
    let theta = [1.2, 0.8];

    let chain = FiniteChain::expand(
        &model,
        racks,
        &bike.initial_counts(racks),
        &theta,
        &ExpansionOptions::default(),
    )
    .unwrap();
    let exact = chain
        .generator()
        .transient_distribution(&chain.initial_distribution(), horizon, 1e-10)
        .unwrap();
    let exact_mean = chain.mean_normalized(&exact).unwrap()[0];

    let simulator = Simulator::new(model, racks).unwrap();
    let replications = 400;
    let mut total = 0.0;
    for seed in 0..replications {
        let mut policy = ConstantPolicy::new(theta.to_vec());
        let run = simulator
            .simulate(
                &bike.initial_counts(racks),
                &mut policy,
                &SimulationOptions::new(horizon).record_stride(32),
                seed,
            )
            .unwrap();
        total += run.trajectory().last_state()[0];
    }
    let empirical_mean = total / replications as f64;
    assert!(
        (empirical_mean - exact_mean).abs() < 0.03,
        "simulator mean {empirical_mean} vs uniformization {exact_mean}"
    );
}

/// Theorem 1 / Corollary 1 (uncertain case): at a moderately large N the SIR
/// ensemble mean follows the mean-field ODE for a fixed contact rate.
#[test]
fn sir_ensemble_mean_tracks_the_mean_field_ode() {
    let sir = SirModel::paper();
    let population = sir.population_model().unwrap();
    let scale = 500usize;
    let horizon = 3.0;
    let theta = 4.0;

    let simulator = Simulator::new(population.clone(), scale).unwrap();
    let summary = run_ensemble(
        &simulator,
        &sir.initial_counts(scale),
        || ConstantPolicy::new(vec![theta]),
        &SimulationOptions::new(horizon).record_stride(16),
        &EnsembleOptions {
            replications: 12,
            base_seed: 5,
            threads: 4,
            grid_intervals: 12,
            ..Default::default()
        },
    )
    .unwrap();

    let ode = population.ode_for(vec![theta]);
    let reference = Rk4::with_step(1e-3)
        .integrate(&ode, 0.0, sir.full_initial_state(), horizon)
        .unwrap();
    let distance = summary
        .max_mean_distance(|t| reference.at(t).unwrap())
        .unwrap();
    assert!(
        distance < 0.05,
        "ensemble mean deviates from the mean field by {distance}"
    );
}

/// Theorem 3: stationary samples of the imprecise SIR system concentrate on
/// the Birkhoff centre as N grows.
#[test]
fn stationary_samples_concentrate_on_the_birkhoff_centre() {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let centre = birkhoff_centre_2d(
        &drift,
        &sir.reduced_initial_state(),
        &BirkhoffOptions {
            step: 2e-3,
            settle_time: 25.0,
            boundary_samples: 80,
            ..Default::default()
        },
    )
    .unwrap();

    let population = sir.population_model().unwrap();
    let mut distances = Vec::new();
    for &scale in &[100usize, 2000] {
        let simulator = Simulator::new(population.clone(), scale).unwrap();
        let mut policy = HysteresisPolicy::new(
            vec![sir.contact_max],
            0,
            sir.contact_min,
            sir.contact_max,
            0,
            0.5,
            0.85,
            true,
        );
        let sample = sample_steady_state(
            &simulator,
            &sir.initial_counts(scale),
            &mut policy,
            &SteadyStateOptions::new(15.0, 0.25, 120),
            11,
        )
        .unwrap();
        let points = sample.project(0, 1).unwrap();
        let mean_distance = points
            .iter()
            .map(|p| centre.polygon().distance_to_region(*p))
            .sum::<f64>()
            / points.len() as f64;
        distances.push(mean_distance);
    }
    assert!(
        distances[1] < distances[0],
        "mean distance to the Birkhoff centre should shrink with N: {distances:?}"
    );
    assert!(
        distances[1] < 0.01,
        "at N = 2000 the samples should hug the centre: {distances:?}"
    );
}
