//! Integration tests for the differential-hull versus Pontryagin comparison
//! (Section IV / V-D, Figures 4 and 5 of the paper).

use mean_field_uncertain::core::hull::{DifferentialHull, HullOptions};
use mean_field_uncertain::core::inclusion::DifferentialInclusion;
use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::core::signal::PiecewiseSignal;
use mean_field_uncertain::models::sir::SirModel;
use mean_field_uncertain::num::StateVec;

fn hull_bounds(theta_max: f64, horizon: f64) -> (f64, f64) {
    let sir = SirModel::paper_with_contact_max(theta_max);
    let drift = sir.reduced_drift();
    let hull = DifferentialHull::new(
        &drift,
        HullOptions {
            step: 5e-3,
            time_intervals: 20,
            ..Default::default()
        },
    );
    let bounds = hull.bounds(&sir.reduced_initial_state(), horizon).unwrap();
    let (lo, hi) = bounds.final_bounds();
    (lo[1], hi[1])
}

fn pontryagin_bounds(theta_max: f64, horizon: f64) -> (f64, f64) {
    let sir = SirModel::paper_with_contact_max(theta_max);
    let drift = sir.reduced_drift();
    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 200,
        ..Default::default()
    });
    solver
        .coordinate_extremes(&drift, &sir.reduced_initial_state(), horizon, 1)
        .unwrap()
}

/// The hull is a valid over-approximation of the imprecise bounds…
#[test]
fn figure4_hull_always_contains_the_exact_imprecise_bounds() {
    for theta_max in [2.0, 5.0] {
        let (hull_lo, hull_hi) = hull_bounds(theta_max, 4.0);
        let (exact_lo, exact_hi) = pontryagin_bounds(theta_max, 4.0);
        assert!(hull_lo <= exact_lo + 1e-3, "ϑmax = {theta_max}");
        assert!(hull_hi >= exact_hi - 1e-3, "ϑmax = {theta_max}");
    }
}

/// …that is accurate for a small parameter range and very loose for a larger
/// one: the degradation is strongly non-linear in ϑ^max (Figures 4–5).
#[test]
fn figure4_hull_accuracy_degrades_with_parameter_range() {
    let horizon = 4.0;
    let width = |theta_max: f64| {
        let (hull_lo, hull_hi) = hull_bounds(theta_max, horizon);
        let (exact_lo, exact_hi) = pontryagin_bounds(theta_max, horizon);
        (hull_hi - hull_lo) - (exact_hi - exact_lo)
    };
    let slack_small = width(2.0);
    let slack_large = width(5.0);
    assert!(
        slack_small < 0.08,
        "hull should be tight for ϑmax = 2, slack {slack_small}"
    );
    assert!(
        slack_large > 4.0 * slack_small.max(1e-3),
        "hull should be much looser for ϑmax = 5 ({slack_large} vs {slack_small})"
    );
}

/// For ϑ^max = 6 and a long horizon the paper reports that the hull becomes
/// trivial (the infected bound covers all of [0, 1]); the exact bounds do not.
#[test]
fn figure4_hull_becomes_trivial_for_large_ranges() {
    let (hull_lo, hull_hi) = hull_bounds(6.0, 10.0);
    assert!(
        hull_lo <= 1e-3,
        "hull lower bound should collapse to ~0, got {hull_lo}"
    );
    assert!(
        hull_hi >= 0.9,
        "hull upper bound should blow up towards ≥ 1, got {hull_hi}"
    );
    let (exact_lo, exact_hi) = pontryagin_bounds(6.0, 10.0);
    assert!(
        exact_hi - exact_lo < 0.5,
        "exact bounds stay informative, got [{exact_lo}, {exact_hi}]"
    );
}

/// Sanity check tying the two analyses to actual solutions of the inclusion:
/// a switching selection must respect both the hull and the exact bounds.
#[test]
fn bounds_contain_a_concrete_switching_solution() {
    let sir = SirModel::paper_with_contact_max(5.0);
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();
    let horizon = 4.0;

    let inclusion = DifferentialInclusion::new(&drift);
    let signal = PiecewiseSignal::new(vec![1.0, 2.5], vec![vec![1.0], vec![5.0], vec![2.0]]);
    let trajectory = inclusion
        .solve_fixed_step(&signal, StateVec::from([0.7, 0.3]), horizon, 1e-3)
        .unwrap();
    let x_i_final = trajectory.last_state()[1];

    let (hull_lo, hull_hi) = hull_bounds(5.0, horizon);
    let (exact_lo, exact_hi) = pontryagin_bounds(5.0, horizon);
    assert!(x_i_final >= exact_lo - 1e-3 && x_i_final <= exact_hi + 1e-3);
    assert!(x_i_final >= hull_lo - 1e-3 && x_i_final <= hull_hi + 1e-3);
    assert!((x0[0] - 0.7).abs() < 1e-12);
}
