//! End-to-end acceptance tests for the `mfu-lang` DSL subsystem.
//!
//! * the SIR model written in the DSL must produce transient Pontryagin
//!   bounds matching the hand-coded `SirModel::paper()` within 1e-8 on the
//!   same grid;
//! * the new non-paper scenarios (botnet, load balancer) must compile from
//!   the registry, simulate via `mfu-sim` and be bounded via `mfu-core`,
//!   with the stochastic runs falling inside the mean-field reach bounds.

use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::core::reachability::{reach_tube, ReachTubeOptions};
use mean_field_uncertain::lang::ScenarioRegistry;
use mean_field_uncertain::models::sir::SirModel;
use mean_field_uncertain::sim::gillespie::{SimulationOptions, Simulator};
use mean_field_uncertain::sim::policy::ConstantPolicy;

#[test]
fn dsl_sir_pontryagin_bounds_match_hand_coded_model() {
    let sir = SirModel::paper();
    let dsl = mean_field_uncertain::lang::compile(&sir.dsl_source()).unwrap();

    let hand_drift = sir.reduced_drift();
    let dsl_drift = dsl.reduced_drift();
    let x0 = sir.reduced_initial_state();

    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 120,
        ..Default::default()
    });
    for (horizon, coordinate) in [(1.0, 1), (3.0, 1), (3.0, 0)] {
        let (hand_lo, hand_hi) = solver
            .coordinate_extremes(&hand_drift, &x0, horizon, coordinate)
            .unwrap();
        let (dsl_lo, dsl_hi) = solver
            .coordinate_extremes(
                &dsl_drift,
                &dsl.reduced_initial_state(),
                horizon,
                coordinate,
            )
            .unwrap();
        assert!(
            (hand_lo - dsl_lo).abs() < 1e-8,
            "lower bound of x[{coordinate}]({horizon}): hand {hand_lo} vs dsl {dsl_lo}"
        );
        assert!(
            (hand_hi - dsl_hi).abs() < 1e-8,
            "upper bound of x[{coordinate}]({horizon}): hand {hand_hi} vs dsl {dsl_hi}"
        );
    }
}

#[test]
fn registry_ships_the_paper_case_studies_and_extras() {
    let registry = ScenarioRegistry::with_builtins();
    let names = registry.names();
    for expected in [
        "sir",
        "sis",
        "seir",
        "botnet",
        "load_balancer",
        "gps",
        "gps_poisson",
    ] {
        assert!(names.contains(&expected), "missing scenario `{expected}`");
    }
}

#[test]
fn dsl_gps_matches_hand_coded_model_in_simulation() {
    // The Section VI GPS/MAP model: same seed + same counts ⇒ identical
    // Gillespie runs for the guarded DSL rates and the hand-coded closures.
    use mean_field_uncertain::models::gps::GpsModel;
    let gps = GpsModel::paper();
    let dsl = mean_field_uncertain::lang::compile(&gps.dsl_source()).unwrap();
    let scale = 400;
    let counts = dsl.initial_counts(scale);

    let hand_sim = Simulator::new(gps.map_population_model().unwrap(), scale).unwrap();
    let dsl_sim = Simulator::new(dsl.population_model().unwrap(), scale).unwrap();
    let options = SimulationOptions::new(2.0);

    for theta in [[1.0, 2.0], [7.0, 3.0], [4.0, 2.5]] {
        let mut hand_policy = ConstantPolicy::new(theta.to_vec());
        let mut dsl_policy = ConstantPolicy::new(theta.to_vec());
        let hand_run = hand_sim
            .simulate(&counts, &mut hand_policy, &options, 23)
            .unwrap();
        let dsl_run = dsl_sim
            .simulate(&counts, &mut dsl_policy, &options, 23)
            .unwrap();
        assert_eq!(hand_run.final_counts(), dsl_run.final_counts());
        assert_eq!(hand_run.events(), dsl_run.events());
    }
}

/// Drives one registry scenario end-to-end: compile, bound via Pontryagin
/// reach tubes, simulate via Gillespie at the extreme constant parameters,
/// and check the empirical endpoints against the mean-field bounds (with a
/// finite-size allowance).
fn scenario_end_to_end(name: &str) {
    let registry = ScenarioRegistry::with_builtins();
    let scenario = registry
        .get(name)
        .unwrap_or_else(|| panic!("scenario `{name}` missing"));
    let model = scenario.compile().unwrap();
    let horizon = scenario.horizon();
    let coordinate = scenario.objective_coordinate();

    // mean-field bounds via mfu-core
    let drift = model.reduced_drift();
    let x0 = model.reduced_initial_state();
    let tube = reach_tube(
        &drift,
        &x0,
        horizon,
        coordinate,
        &ReachTubeOptions {
            time_points: 8,
            // multi-start: the single-start sweep can settle on a local
            // extremal for the 3-dimensional reduced botnet drift
            pontryagin: PontryaginOptions {
                grid_intervals: 120,
                multi_start: true,
                ..Default::default()
            },
        },
    )
    .unwrap();
    let last = tube.times().len() - 1;
    let (lo, hi) = (tube.lower()[last], tube.upper()[last]);
    assert!(lo <= hi, "`{name}`: inverted bounds [{lo}, {hi}]");
    assert!(
        lo >= -1e-6 && hi <= 1.0 + 1e-6,
        "`{name}`: bounds escape [0, 1]: [{lo}, {hi}]"
    );

    // stochastic side via mfu-sim: constant policies at both vertices
    let scale = 2000;
    let simulator = Simulator::new(model.population_model().unwrap(), scale).unwrap();
    for (seed, vertex) in model.params().vertices().into_iter().enumerate() {
        let mut policy = ConstantPolicy::new(vertex.clone());
        let run = simulator
            .simulate(
                &model.initial_counts(scale),
                &mut policy,
                &SimulationOptions::new(horizon),
                41 + seed as u64,
            )
            .unwrap();
        let end = run.trajectory().last_state()[coordinate];
        // finite-N fluctuation allowance ~ O(1/sqrt(N))
        let slack = 4.0 / (scale as f64).sqrt();
        assert!(
            end >= lo - slack && end <= hi + slack,
            "`{name}` at ϑ = {vertex:?}: simulated endpoint {end} outside [{lo}, {hi}] ± {slack}"
        );
    }
}

#[test]
fn botnet_scenario_simulates_and_is_bounded() {
    scenario_end_to_end("botnet");
}

#[test]
fn load_balancer_scenario_simulates_and_is_bounded() {
    scenario_end_to_end("load_balancer");
}

#[test]
fn dsl_scenarios_match_hand_coded_population_models_in_simulation() {
    // Same seed + same model ⇒ identical Gillespie runs, even though one
    // model came from text and the other from hand-written Rust.
    let sir = SirModel::paper();
    let dsl = mean_field_uncertain::lang::compile(&sir.dsl_source()).unwrap();
    let scale = 300;

    let hand_sim = Simulator::new(sir.population_model().unwrap(), scale).unwrap();
    let dsl_sim = Simulator::new(dsl.population_model().unwrap(), scale).unwrap();
    let options = SimulationOptions::new(2.0);

    let mut hand_policy = ConstantPolicy::new(vec![4.0]);
    let mut dsl_policy = ConstantPolicy::new(vec![4.0]);
    let hand_run = hand_sim
        .simulate(&sir.initial_counts(scale), &mut hand_policy, &options, 11)
        .unwrap();
    let dsl_run = dsl_sim
        .simulate(&dsl.initial_counts(scale), &mut dsl_policy, &options, 11)
        .unwrap();

    assert_eq!(hand_run.final_counts(), dsl_run.final_counts());
    assert_eq!(hand_run.events(), dsl_run.events());
}
