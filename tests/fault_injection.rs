//! Deterministic fault-injection harness for every engine (mfu-guard).
//!
//! The contract under test: whatever a [`FaultPlan`] throws at an engine —
//! NaN rates, rate spikes, out-of-box policy jumps — every registry scenario
//! either completes, returns a gracefully truncated run, or fails with a
//! *typed* error. Never a panic, never a hang: each simulation carries a
//! wall-clock budget, so a misbehaving engine truncates instead of spinning.
//!
//! The harness also pins two guard guarantees that are easiest to check from
//! outside the crates:
//!
//! * an armed-but-untripped budget is invisible — trajectories are
//!   bit-identical with the guard on or off;
//! * the Pontryagin escalation ladder closes the carried "single-start
//!   settles on a local extremal for the reduced botnet drift" issue: the
//!   single-start solver now matches the multi-start bound on its own.

use std::time::{Duration, Instant};

use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::guard::{FaultKind, FaultPlan, Outcome, RunBudget};
use mean_field_uncertain::lang::{CompiledModel, ScenarioRegistry};
use mean_field_uncertain::obs::{Counter, Obs};
use mean_field_uncertain::sim::ensemble::{run_ensemble, EnsembleOptions};
use mean_field_uncertain::sim::gillespie::{
    SimulationAlgorithm, SimulationOptions, SimulationRun, Simulator,
};
use mean_field_uncertain::sim::policy::ConstantPolicy;
use mean_field_uncertain::sim::steady::{sample_steady_state, SteadyStateOptions};
use mean_field_uncertain::sim::tauleap::TauLeapOptions;
use mean_field_uncertain::sim::SimError;

const SCALE: usize = 200;

/// Per-simulation budget: generous enough that healthy runs never trip it,
/// tight enough that a spiked-rate run truncates in bounded time.
fn harness_budget() -> RunBudget {
    RunBudget::unlimited()
        .wall_clock(Duration::from_secs(5))
        .max_events(50_000)
}

fn scenarios() -> Vec<(String, CompiledModel)> {
    let registry = ScenarioRegistry::with_builtins();
    registry
        .iter()
        .map(|scenario| {
            let model = scenario
                .compile()
                .unwrap_or_else(|e| panic!("scenario `{}` fails to compile: {e}", scenario.name()));
            (scenario.name().to_string(), model)
        })
        .collect()
}

/// The fault registry: one plan per failure family, sized to the model.
fn fault_plans(model: &CompiledModel) -> Vec<(&'static str, FaultPlan)> {
    let last_rule = model.rules().len() - 1;
    vec![
        (
            "nan_rate",
            FaultPlan::new().inject(25, FaultKind::NanRate { rule: 0 }),
        ),
        (
            "rate_spike",
            FaultPlan::new().inject(
                10,
                FaultKind::RateSpike {
                    rule: last_rule,
                    factor: 1e12,
                },
            ),
        ),
        (
            "policy_jump",
            FaultPlan::new().inject(
                30,
                FaultKind::PolicyJump {
                    param: 0,
                    value: 1e9,
                },
            ),
        ),
    ]
}

/// Asserts the engine contract on one outcome: a graceful result or a typed
/// error — anything else (a panic unwinds the test on its own) fails here.
fn assert_contract(context: &str, elapsed: Duration, result: Result<SimulationRun, SimError>) {
    assert!(
        elapsed < Duration::from_secs(30),
        "{context}: took {elapsed:?} despite a 5 s wall-clock budget"
    );
    match result {
        Ok(run) => {
            // completed or truncated — either way the prefix must be sane
            let last = run.trajectory().last_time();
            assert!(
                last.is_finite() && last >= 0.0,
                "{context}: bad end time {last}"
            );
            if let Outcome::Truncated { reached_t, .. } = run.outcome() {
                assert!(reached_t.is_finite(), "{context}: bad truncation time");
            }
        }
        Err(
            SimError::InvalidRate { .. }
            | SimError::PolicyOutOfRange { .. }
            | SimError::Truncated { .. }
            | SimError::EventBudgetExhausted { .. }
            | SimError::InvalidInput { .. }
            | SimError::Model(_)
            | SimError::Numerical(_),
        ) => {}
        Err(other) => panic!("{context}: unexpected error variant {other:?}"),
    }
}

#[test]
fn every_engine_survives_every_fault_on_every_scenario() {
    for (name, model) in scenarios() {
        let population = model.population_model().unwrap();
        let counts = model.initial_counts(SCALE);
        let midpoint = model.params().midpoint();
        let horizon = model_horizon(&name);
        for (fault, plan) in fault_plans(&model) {
            for (engine, algorithm) in [
                ("exact", SimulationAlgorithm::Exact),
                (
                    "tau-leap",
                    SimulationAlgorithm::TauLeap(TauLeapOptions::default()),
                ),
            ] {
                let context = format!("{name} × {engine} × {fault}");
                let simulator = Simulator::new(population.clone(), SCALE)
                    .unwrap()
                    .with_fault_plan(plan.clone());
                let options = SimulationOptions::new(horizon)
                    .algorithm(algorithm)
                    .budget(harness_budget());
                let mut policy = ConstantPolicy::new(midpoint.clone());
                let started = Instant::now();
                let result = simulator.simulate(&counts, &mut policy, &options, 7);
                assert_contract(&context, started.elapsed(), result);
            }
        }
    }
}

#[test]
fn aggregating_engines_convert_faults_into_typed_errors() {
    // Ensemble grids and steady-state samples need full-horizon runs, so a
    // fault mid-run must surface as a typed error — never a panic and never
    // a silently poisoned aggregate.
    for (name, model) in scenarios() {
        let population = model.population_model().unwrap();
        let counts = model.initial_counts(SCALE);
        let midpoint = model.params().midpoint();
        let horizon = model_horizon(&name);
        for (fault, plan) in fault_plans(&model) {
            let simulator = Simulator::new(population.clone(), SCALE)
                .unwrap()
                .with_fault_plan(plan.clone());
            let sim_options = SimulationOptions::new(horizon).budget(harness_budget());

            let context = format!("{name} × ensemble × {fault}");
            let started = Instant::now();
            let ensemble = run_ensemble(
                &simulator,
                &counts,
                || ConstantPolicy::new(midpoint.clone()),
                &sim_options,
                &EnsembleOptions {
                    replications: 3,
                    base_seed: 11,
                    threads: 2,
                    grid_intervals: 8,
                    ..Default::default()
                },
            );
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "{context}: hang"
            );
            if let Err(err) = ensemble {
                assert!(
                    matches!(
                        err,
                        SimError::InvalidRate { .. }
                            | SimError::PolicyOutOfRange { .. }
                            | SimError::Truncated { .. }
                            | SimError::EventBudgetExhausted { .. }
                    ),
                    "{context}: unexpected error {err:?}"
                );
            }

            let context = format!("{name} × steady × {fault}");
            let started = Instant::now();
            let steady = sample_steady_state(
                &simulator,
                &counts,
                &mut ConstantPolicy::new(midpoint.clone()),
                &SteadyStateOptions::new(0.5, 0.1, 5).budget(harness_budget()),
                13,
            );
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "{context}: hang"
            );
            if let Err(err) = steady {
                assert!(
                    matches!(
                        err,
                        SimError::InvalidRate { .. }
                            | SimError::PolicyOutOfRange { .. }
                            | SimError::Truncated { .. }
                            | SimError::EventBudgetExhausted { .. }
                    ),
                    "{context}: unexpected error {err:?}"
                );
            }
        }
    }
}

#[test]
fn seeded_fault_plans_never_panic_any_engine() {
    // Sweep pseudo-random fault schedules over one cheap scenario per
    // engine: the registry faults above are hand-aimed, this catches the
    // combinations nobody thought of.
    let registry = ScenarioRegistry::with_builtins();
    let model = registry.get("sir").unwrap().compile().unwrap();
    let population = model.population_model().unwrap();
    let counts = model.initial_counts(SCALE);
    let rules = model.rules().len();
    let params = model.params().dim();
    for seed in 0..24u64 {
        let plan = FaultPlan::seeded(seed, rules, params, 4, 500);
        for algorithm in [
            SimulationAlgorithm::Exact,
            SimulationAlgorithm::TauLeap(TauLeapOptions::default()),
        ] {
            let simulator = Simulator::new(population.clone(), SCALE)
                .unwrap()
                .with_fault_plan(plan.clone());
            let options = SimulationOptions::new(2.0)
                .algorithm(algorithm)
                .budget(harness_budget());
            let mut policy = ConstantPolicy::new(model.params().midpoint());
            let started = Instant::now();
            let result = simulator.simulate(&counts, &mut policy, &options, seed);
            assert_contract(
                &format!("sir × seeded plan {seed}"),
                started.elapsed(),
                result,
            );
        }
    }
}

#[test]
fn armed_untripped_budgets_are_bit_identical_to_no_budget() {
    let generous = RunBudget::unlimited()
        .wall_clock(Duration::from_secs(3600))
        .max_events(u64::MAX)
        .max_leap_steps(u64::MAX)
        .max_tau_halvings(u64::MAX);
    for (name, model) in scenarios() {
        let population = model.population_model().unwrap();
        let counts = model.initial_counts(SCALE);
        let horizon = model_horizon(&name);
        for (engine, algorithm) in [
            ("exact", SimulationAlgorithm::Exact),
            (
                "tau-leap",
                SimulationAlgorithm::TauLeap(TauLeapOptions::default()),
            ),
        ] {
            let simulator = Simulator::new(population.clone(), SCALE).unwrap();
            let base_options = SimulationOptions::new(horizon).algorithm(algorithm);
            let mut policy = ConstantPolicy::new(model.params().midpoint());
            let plain = simulator
                .simulate(&counts, &mut policy, &base_options, 42)
                .unwrap();
            let mut policy = ConstantPolicy::new(model.params().midpoint());
            let guarded = simulator
                .simulate(&counts, &mut policy, &base_options.budget(generous), 42)
                .unwrap();
            assert_eq!(
                plain.trajectory(),
                guarded.trajectory(),
                "{name} × {engine}: guard-on trajectory differs"
            );
            assert_eq!(plain.events(), guarded.events(), "{name} × {engine}");
            assert_eq!(
                plain.final_counts(),
                guarded.final_counts(),
                "{name} × {engine}"
            );
            assert_eq!(guarded.outcome(), Outcome::Completed, "{name} × {engine}");
        }
    }
}

#[test]
fn botnet_single_start_escalates_and_matches_the_multi_start_bound() {
    // The carried robustness issue: the single-start sweep settles on a
    // local extremal for the 3-dimensional reduced botnet drift, which used
    // to force every caller to know to pass multi_start. The escalation
    // ladder must now detect the bad extremal and recover the multi-start
    // bound on its own, reporting the escalation in the metrics.
    let registry = ScenarioRegistry::with_builtins();
    let scenario = registry.get("botnet").unwrap();
    let model = scenario.compile().unwrap();
    let drift = model.reduced_drift();
    let x0 = model.reduced_initial_state();
    let horizon = scenario.horizon();
    let coordinate = scenario.objective_coordinate();

    let multi = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 120,
        multi_start: true,
        ..Default::default()
    });
    let (multi_lo, multi_hi) = multi
        .coordinate_extremes(&drift, &x0, horizon, coordinate)
        .unwrap();

    let obs = Obs::with_metrics();
    let single = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 120,
        multi_start: false,
        ..Default::default()
    })
    .with_obs(obs.clone());
    let (lo, hi) = single
        .coordinate_extremes(&drift, &x0, horizon, coordinate)
        .unwrap();
    assert!(
        (lo - multi_lo).abs() < 1e-6,
        "lower bound {lo} vs multi-start {multi_lo}"
    );
    assert!(
        (hi - multi_hi).abs() < 1e-6,
        "upper bound {hi} vs multi-start {multi_hi}"
    );
    let snapshot = obs.metrics.snapshot().unwrap();
    assert!(
        snapshot.counter(Counter::CorePontryaginEscalations) >= 1,
        "the ladder never escalated"
    );
}

/// Scenario horizons, clamped so that debug-mode suites stay quick: the
/// contract under test is fault behaviour, not long-horizon accuracy.
fn model_horizon(name: &str) -> f64 {
    let registry = ScenarioRegistry::with_builtins();
    registry
        .get(name)
        .map(|s| s.horizon())
        .unwrap_or(2.0)
        .min(2.0)
}
