//! Acceptance: the τ-leap engine is accurate where it claims to be and
//! honest where it cannot leap.
//!
//! The contract of `mfu_sim::tauleap` has three legs:
//!
//! 1. **large-`N` accuracy** — at `N = 10⁵`, a single leap trajectory of
//!    a registry scenario must track the mean-field drift (the midpoint-ϑ
//!    ODE the paper's Theorem 1 converges to) within a stated sup-norm
//!    tolerance: the `O(1/√N)` stochastic fluctuations and the `O(ε)`
//!    leap bias are both far below it. CI runs this file in release mode
//!    next to `large_k_ring_parity_holds_at_200_rules`.
//! 2. **determinism** — a τ-leap run is a pure function of the seed.
//! 3. **boundary honesty** — on guarded models parked at (or walking
//!    into) absorbing boundaries, the negative-population guard and the
//!    exact-SSA fallback keep every count non-negative and stop exactly
//!    where the exact engine stops.

use mean_field_uncertain::lang::ScenarioRegistry;
use mean_field_uncertain::num::ode::{Integrator, Rk4};
use mean_field_uncertain::sim::gillespie::{SimulationOptions, Simulator};
use mean_field_uncertain::sim::policy::ConstantPolicy;
use mean_field_uncertain::sim::tauleap::TauLeapOptions;

/// Sup-norm accuracy budget for one `N = 10⁵` trajectory vs the drift:
/// fluctuations contribute `O(1/√N) ≈ 0.003` and the `ε = 0.03` leap bias
/// stays below that, so 0.02 carries a comfortable safety factor while
/// still failing on any systematic error (a wrong step-size bound or a
/// mis-scaled Poisson mean shows up at the 0.1+ level).
const SUP_TOLERANCE: f64 = 0.02;

#[test]
fn tau_leap_tracks_the_drift_at_1e5_for_sir_and_gps() {
    let registry = ScenarioRegistry::with_builtins();
    for name in ["sir", "gps"] {
        let scenario = registry.get(name).expect("registered");
        let model = scenario.compile().expect("compiles");
        let population = model.population_model().expect("population backend");
        let horizon = scenario.horizon();
        let theta = model.params().midpoint();
        let reference = Rk4::with_step(1e-3)
            .integrate(
                &population.ode_for(theta.clone()),
                0.0,
                model.initial_state(),
                horizon,
            )
            .expect("drift integrates");

        let scale = 100_000;
        let simulator = Simulator::new(population.clone(), scale).expect("simulator");
        let options = SimulationOptions::new(horizon).tau_leap(TauLeapOptions::new(0.03));
        for seed in [3, 41] {
            let mut policy = ConstantPolicy::new(theta.clone());
            let run = simulator
                .simulate(&model.initial_counts(scale), &mut policy, &options, seed)
                .expect("tau-leap run");
            let sup_error = run
                .trajectory()
                .iter()
                .map(|(t, state)| state.distance_inf(&reference.at(t).expect("sampled")))
                .fold(0.0_f64, f64::max);
            assert!(
                sup_error < SUP_TOLERANCE,
                "`{name}` seed {seed}: sup error {sup_error} vs drift exceeds {SUP_TOLERANCE}"
            );
            // and leaping actually leapt: an exact run at this scale costs
            // hundreds of thousands of events
            assert!(
                run.events() < 50_000,
                "`{name}` seed {seed}: {} steps — did not leap",
                run.events()
            );
        }
    }
}

#[test]
fn tau_leap_is_deterministic_per_seed_at_1e6() {
    let registry = ScenarioRegistry::with_builtins();
    let scenario = registry.get("sir_1e6").expect("registered");
    let scale = scenario.default_scale().expect("scaled scenario");
    let model = scenario.compile().expect("compiles");
    let simulator =
        Simulator::new(model.population_model().expect("population"), scale).expect("simulator");
    let options = SimulationOptions::new(scenario.horizon()).tau_leap(TauLeapOptions::default());
    let run = |seed: u64| {
        let mut policy = ConstantPolicy::new(model.params().midpoint());
        simulator
            .simulate(&model.initial_counts(scale), &mut policy, &options, seed)
            .expect("tau-leap run")
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(a.events(), b.events());
    assert_eq!(a.final_counts(), b.final_counts());
    for ((ta, sa), (tb, sb)) in a.trajectory().iter().zip(b.trajectory().iter()) {
        assert_eq!(ta.to_bits(), tb.to_bits(), "event times diverged");
        assert_eq!(sa.as_slice(), sb.as_slice(), "states diverged");
    }
    // a different seed gives a different realisation
    assert_ne!(a.final_counts(), run(18).final_counts());
    // conservation at a million individuals, across every leap
    assert_eq!(a.final_counts().iter().sum::<i64>(), scale as i64);
}

/// The PR 4 guarded boundary scenario: once X is exhausted both rates are
/// exactly 0.0 and nothing may ever fire.
const GUARDED_ABSORBING_SOURCE: &str = "\
model guarded_absorbing;
species X, Y;
param r in [1, 2];
rule decay:   X -> Y @ when X > 0 { r * X } else { 0 };
rule degrade: Y -> 0 @ when X > 0 { 0.5 * Y } else { 0 };
init X = 0.4, Y = 0.6;
";

#[test]
fn negative_population_guard_holds_on_the_guarded_boundary_model() {
    let model = mean_field_uncertain::lang::compile(GUARDED_ABSORBING_SOURCE).unwrap();
    let population = model.population_model().unwrap();
    let simulator = Simulator::new(population, 100).unwrap();
    let theta = model.params().midpoint();
    // coarse epsilon on a small population: Poisson overshoot is the rule,
    // not the exception, so the halving guard and the exact fallback both
    // fire constantly
    let options = SimulationOptions::new(200.0)
        .tau_leap(TauLeapOptions::new(0.3).ssa_threshold(5.0).ssa_burst(20));
    for seed in 0..8 {
        let mut policy = ConstantPolicy::new(theta.clone());
        let run = simulator
            .simulate(&[40, 60], &mut policy, &options, seed)
            .expect("guarded run");
        assert_eq!(run.final_counts()[0], 0, "seed {seed}: X not exhausted");
        assert!(run.final_counts()[1] >= 0, "seed {seed}");
        for (_, state) in run.trajectory().iter() {
            assert!(
                state.iter().all(|&v| v >= 0.0),
                "seed {seed}: negative population recorded"
            );
        }
        // parked exactly on the boundary: all rates are 0.0, so the run
        // must absorb immediately without a single step
        let mut policy = ConstantPolicy::new(theta.clone());
        let parked = simulator
            .simulate(&[0, 60], &mut policy, &options, seed)
            .expect("parked run");
        assert_eq!(parked.events(), 0, "seed {seed}: fired at the boundary");
        assert_eq!(parked.final_counts(), &[0, 60]);
    }
}

#[test]
fn ensemble_threads_the_tau_leap_algorithm() {
    use mean_field_uncertain::sim::ensemble::{run_ensemble, EnsembleOptions};
    let registry = ScenarioRegistry::with_builtins();
    let model = registry.compile("sir").unwrap();
    let population = model.population_model().unwrap();
    let horizon = 3.0;
    let theta = model.params().midpoint();
    let reference = Rk4::with_step(1e-3)
        .integrate(
            &population.ode_for(theta.clone()),
            0.0,
            model.initial_state(),
            horizon,
        )
        .unwrap();
    let scale = 10_000;
    let simulator = Simulator::new(population.clone(), scale).unwrap();
    let summary = run_ensemble(
        &simulator,
        &model.initial_counts(scale),
        || ConstantPolicy::new(theta.clone()),
        &SimulationOptions::new(horizon).tau_leap(TauLeapOptions::new(0.03)),
        &EnsembleOptions {
            replications: 16,
            base_seed: 29,
            threads: 4,
            grid_intervals: 20,
            ..Default::default()
        },
    )
    .unwrap();
    // averaging 16 replications shrinks the fluctuations well below the
    // single-run budget; what is left is the leap bias
    let distance = summary
        .max_mean_distance(|t| reference.at(t).unwrap())
        .unwrap();
    assert!(
        distance < 0.01,
        "tau-leap ensemble mean deviates from the drift by {distance}"
    );
    for k in 0..summary.times().len() {
        assert_eq!(summary.samples_at(k), 16, "grid point {k} lost samples");
    }
}
