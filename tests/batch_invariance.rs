//! Batched SoA evaluation must be invisible: forcing the batch paths on
//! or off cannot change a single bit of any analysis result. These tests
//! sweep the scenario registry and compare, bit for bit,
//!
//! * differential-hull bounds (`HullOptions::batch_drift`),
//! * Pontryagin coordinate extremes (`PontryaginOptions::batch_drift`),
//! * seeded τ-leap ensemble summaries
//!   (`EnsembleOptions::batch_propensities`, lockstep replication
//!   batching),
//!
//! with batching on versus off. Together with the property suite in
//! `crates/lang/tests/vm_equivalence.rs` (random expressions × widths ×
//! lane-varying inputs) this is the end-to-end half of the batched-VM
//! equivalence harness: the VM proves each instruction pass is lane-exact,
//! these tests prove no call site reorders the arithmetic around it.

use mean_field_uncertain::core::hull::{DifferentialHull, HullOptions};
use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::lang::scenarios::ScenarioRegistry;
use mean_field_uncertain::num::StateVec;
use mean_field_uncertain::sim::ensemble::{run_ensemble, EnsembleOptions, EnsembleSummary};
use mean_field_uncertain::sim::gillespie::{SimulationOptions, Simulator};
use mean_field_uncertain::sim::policy::ConstantPolicy;
use mean_field_uncertain::sim::tauleap::TauLeapOptions;

fn assert_states_bit_identical(a: &[StateVec], b: &[StateVec], what: &str, name: &str) {
    assert_eq!(a.len(), b.len(), "{name}: {what} length");
    for (k, (sa, sb)) in a.iter().zip(b).enumerate() {
        assert_eq!(sa.dim(), sb.dim(), "{name}: {what} dim at node {k}");
        for i in 0..sa.dim() {
            assert_eq!(
                sa[i].to_bits(),
                sb[i].to_bits(),
                "{name}: {what} differs at node {k}, coordinate {i}: {} vs {}",
                sa[i],
                sb[i]
            );
        }
    }
}

/// The hull's rectangle-point enumeration is exponential in the dimension
/// (batched or not), so the registry sweep keeps to the models the scalar
/// hull can integrate in test time.
const MAX_HULL_DIM: usize = 6;

#[test]
fn hull_bounds_are_bit_identical_with_batching_on_and_off() {
    let registry = ScenarioRegistry::with_builtins();
    let mut checked = 0usize;
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        if model.dim() > MAX_HULL_DIM {
            continue;
        }
        let drift = model.drift();
        let horizon = scenario.horizon().min(1.0);
        let bounds_with = |batch: bool| {
            DifferentialHull::new(
                &drift,
                HullOptions {
                    step: 1e-2,
                    time_intervals: 10,
                    batch_drift: batch,
                    ..Default::default()
                },
            )
            .bounds(&model.initial_state(), horizon)
            .unwrap()
        };
        let on = bounds_with(true);
        let off = bounds_with(false);
        assert_eq!(on.times(), off.times(), "{}: time grid", model.name());
        assert_states_bit_identical(on.lower(), off.lower(), "hull lower bound", model.name());
        assert_states_bit_identical(on.upper(), off.upper(), "hull upper bound", model.name());
        checked += 1;
    }
    assert!(checked >= 3, "only {checked} scenarios fit the hull sweep");
}

#[test]
fn pontryagin_extremes_are_bit_identical_with_batching_on_and_off() {
    let registry = ScenarioRegistry::with_builtins();
    let mut checked = 0usize;
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        if model.dim() > MAX_HULL_DIM {
            continue;
        }
        let drift = model.drift();
        let horizon = scenario.horizon().min(1.0);
        let extremes_with = |batch: bool| {
            let solver = PontryaginSolver::new(PontryaginOptions {
                grid_intervals: 40,
                batch_drift: batch,
                ..Default::default()
            });
            solver
                .coordinate_extremes(&drift, &model.initial_state(), horizon, 0)
                .unwrap()
        };
        let (lo_on, hi_on) = extremes_with(true);
        let (lo_off, hi_off) = extremes_with(false);
        assert_eq!(
            lo_on.to_bits(),
            lo_off.to_bits(),
            "{}: lower extreme {lo_on} vs {lo_off}",
            model.name()
        );
        assert_eq!(
            hi_on.to_bits(),
            hi_off.to_bits(),
            "{}: upper extreme {hi_on} vs {hi_off}",
            model.name()
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "only {checked} scenarios fit the Pontryagin sweep"
    );
}

fn assert_summaries_bit_identical(a: &EnsembleSummary, b: &EnsembleSummary, name: &str) {
    assert_eq!(a.times(), b.times(), "{name}: summary grid");
    assert_eq!(a.replications(), b.replications(), "{name}: replications");
    for k in 0..a.times().len() {
        let (ma, mb) = (a.mean_at(k), b.mean_at(k));
        let (sa, sb) = (a.std_dev_at(k), b.std_dev_at(k));
        for i in 0..ma.dim() {
            assert_eq!(
                ma[i].to_bits(),
                mb[i].to_bits(),
                "{name}: mean at ({k}, {i})"
            );
            assert_eq!(
                sa[i].to_bits(),
                sb[i].to_bits(),
                "{name}: std dev at ({k}, {i})"
            );
        }
    }
    let finals_a: Vec<StateVec> = a.final_states().to_vec();
    let finals_b: Vec<StateVec> = b.final_states().to_vec();
    assert_states_bit_identical(&finals_a, &finals_b, "final states", name);
}

#[test]
fn tau_leap_ensemble_summaries_are_bit_identical_with_batching_on_and_off() {
    let registry = ScenarioRegistry::with_builtins();
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        let population = model.population_model().unwrap();
        let scale = 300;
        let horizon = scenario.horizon().min(1.0);
        let sim_options = SimulationOptions::new(horizon).tau_leap(TauLeapOptions::default());
        let summary_with = |batch: bool| {
            let simulator = Simulator::new(population.clone(), scale).unwrap();
            run_ensemble(
                &simulator,
                &model.initial_counts(scale),
                || ConstantPolicy::new(model.params().midpoint()),
                &sim_options,
                &EnsembleOptions {
                    replications: 4,
                    base_seed: 17,
                    // one worker pins the Welford merge order; the batching
                    // knob is then the only degree of freedom
                    threads: 1,
                    grid_intervals: 8,
                    batch_propensities: batch,
                },
            )
            .unwrap()
        };
        assert_summaries_bit_identical(&summary_with(true), &summary_with(false), model.name());
    }
}
