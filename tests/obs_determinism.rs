//! Observability must be free: attaching the metrics/trace bundle to a
//! simulation cannot change a single bit of its output. These tests sweep
//! the scenario registry across both engines and every selection strategy,
//! comparing runs with observability off and on, and then sanity-check the
//! counters the bundle reports against ground truth from the runs.

use mean_field_uncertain::lang::scenarios::ScenarioRegistry;
use mean_field_uncertain::lang::CompiledModel;
use mean_field_uncertain::obs::{Counter, Obs, Tracer};
use mean_field_uncertain::sim::gillespie::{
    SimulationAlgorithm, SimulationOptions, SimulationRun, Simulator,
};
use mean_field_uncertain::sim::policy::ConstantPolicy;
use mean_field_uncertain::sim::selection::SelectionStrategy;
use mean_field_uncertain::sim::tauleap::TauLeapOptions;

/// Runs one simulation of `model`, optionally with a full observability
/// bundle (metrics + buffered tracer) attached.
fn run(
    model: &CompiledModel,
    scale: usize,
    options: &SimulationOptions,
    seed: u64,
    obs: Option<&Obs>,
) -> SimulationRun {
    let population = model.population_model().unwrap();
    let mut simulator = Simulator::new(population, scale).unwrap();
    if let Some(obs) = obs {
        simulator = simulator.with_obs(obs.clone());
    }
    let mut policy = ConstantPolicy::new(model.params().midpoint());
    simulator
        .simulate(&model.initial_counts(scale), &mut policy, options, seed)
        .unwrap()
}

/// A fully-enabled bundle: metrics plus a tracer writing to memory.
fn enabled_obs() -> Obs {
    let (tracer, _sink) = Tracer::to_buffer();
    Obs {
        tracer,
        ..Obs::with_metrics()
    }
}

/// The observed run must equal the unobserved run exactly: same trajectory
/// (times and states compared bit-for-bit through `PartialEq` on `f64`),
/// same event count, same engine counters.
fn assert_bit_identical(model: &CompiledModel, scale: usize, options: &SimulationOptions) {
    let baseline = run(model, scale, options, 42, None);
    let observed = run(model, scale, options, 42, Some(&enabled_obs()));
    assert_eq!(
        baseline.trajectory(),
        observed.trajectory(),
        "model `{}`: observability changed the trajectory",
        model.name()
    );
    assert_eq!(baseline.events(), observed.events());
    assert_eq!(baseline.counters(), observed.counters());
    assert_eq!(baseline.resolved_selection(), observed.resolved_selection());
}

#[test]
fn every_scenario_is_bit_identical_with_observability_on_exact() {
    let registry = ScenarioRegistry::with_builtins();
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        let horizon = scenario.horizon().min(1.0);
        let options = SimulationOptions::new(horizon);
        assert_bit_identical(&model, 200, &options);
    }
}

#[test]
fn every_scenario_is_bit_identical_with_observability_on_tau_leap() {
    let registry = ScenarioRegistry::with_builtins();
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        let horizon = scenario.horizon().min(1.0);
        let options = SimulationOptions::new(horizon)
            .algorithm(SimulationAlgorithm::TauLeap(TauLeapOptions::default()));
        assert_bit_identical(&model, 1000, &options);
    }
}

#[test]
fn every_selection_strategy_is_bit_identical_with_observability_on() {
    let registry = ScenarioRegistry::with_builtins();
    let model = registry.compile("sir").unwrap();
    for selection in [
        SelectionStrategy::Auto,
        SelectionStrategy::LinearScan,
        SelectionStrategy::SumTree,
        SelectionStrategy::CompositionRejection,
    ] {
        let options = SimulationOptions::new(2.0).selection_strategy(selection);
        assert_bit_identical(&model, 300, &options);
    }
}

#[test]
fn counters_match_ground_truth_from_the_run() {
    let registry = ScenarioRegistry::with_builtins();
    let model = registry.compile("sir").unwrap();

    // Exact engine, default stride: every jump is recorded, so the
    // trajectory holds initial state + one node per event + the final state.
    let obs = Obs::with_metrics();
    let population = model.population_model().unwrap();
    let simulator = Simulator::new(population, 500)
        .unwrap()
        .with_obs(obs.clone());
    let mut policy = ConstantPolicy::new(model.params().midpoint());
    let run = simulator
        .simulate(
            &model.initial_counts(500),
            &mut policy,
            &SimulationOptions::new(2.0),
            7,
        )
        .unwrap();
    assert!(run.events() > 0);
    assert_eq!(run.counters().events_fired, run.events() as u64);
    assert_eq!(run.trajectory().len(), run.events() + 2);

    // The flushed metrics agree with the per-run counters.
    let snapshot = obs.metrics.snapshot().unwrap();
    assert_eq!(
        snapshot.counter(Counter::SimEventsFired),
        run.counters().events_fired
    );
    assert_eq!(
        snapshot.counter(Counter::SimPropensityEvals),
        run.counters().propensity_evals
    );
    assert_eq!(snapshot.counter(Counter::SimRuns), 1);
}

#[test]
fn tau_leaping_never_halves_on_the_well_conditioned_sir() {
    // At N = 10⁵ the SIR rates are smooth on the leap scale; the adaptive
    // step selection must never trip the negative-population guard.
    let registry = ScenarioRegistry::with_builtins();
    let model = registry.compile("sir").unwrap();
    let obs = Obs::with_metrics();
    let population = model.population_model().unwrap();
    let simulator = Simulator::new(population, 100_000)
        .unwrap()
        .with_obs(obs.clone());
    let mut policy = ConstantPolicy::new(model.params().midpoint());
    let options = SimulationOptions::new(2.0)
        .algorithm(SimulationAlgorithm::TauLeap(TauLeapOptions::default()));
    let run = simulator
        .simulate(&model.initial_counts(100_000), &mut policy, &options, 4)
        .unwrap();

    let counters = run.counters();
    assert_eq!(counters.tau_halvings, 0, "guard tripped: {counters:?}");
    assert_eq!(
        counters.tau_leap_steps + counters.tau_fallback_steps,
        counters.events_fired
    );
    assert!(counters.poisson_draws > 0);
    let snapshot = obs.metrics.snapshot().unwrap();
    assert_eq!(snapshot.counter(Counter::SimTauHalvings), 0);
}
