//! Native-closure vs DSL-bytecode rate parity.
//!
//! The hand-coded epidemic models and their `dsl_source()` twins must
//! produce *identical* rates: the DSL pipeline lowers each rate expression
//! to a flat bytecode/mass-action program whose evaluation order matches
//! the original tree, and the trees mirror the native closures. The
//! divergence measured by `mfu_models::parity` over a deterministic state
//! sample must therefore be exactly zero — any ulp of drift here would
//! desynchronise the bit-exact Gillespie cross-validation of
//! `tests/dsl_scenarios.rs`.

use mean_field_uncertain::ctmc::population::PopulationModel;
use mean_field_uncertain::models::gps::GpsModel;
use mean_field_uncertain::models::parity::{max_rate_divergence, sample_states};
use mean_field_uncertain::models::seir::SeirModel;
use mean_field_uncertain::models::sir::SirModel;

fn assert_exact_parity(name: &str, native: &PopulationModel, source: &str) {
    let dsl = mean_field_uncertain::lang::compile(source)
        .unwrap_or_else(|e| panic!("`{name}` DSL source failed to compile:\n{e}"))
        .population_model()
        .expect("population backend");

    // the two backends really are different engines…
    assert!(
        native
            .transitions()
            .iter()
            .all(|t| !t.rate_fn().is_compiled()),
        "`{name}`: native model unexpectedly uses compiled rates"
    );
    assert!(
        dsl.transitions().iter().all(|t| t.rate_fn().is_compiled()),
        "`{name}`: DSL model should lower rates to programs"
    );
    // …and the native annotations agree with the programs' derived supports.
    for (a, b) in native.transitions().iter().zip(dsl.transitions()) {
        assert_eq!(
            a.species_support(),
            b.species_support(),
            "`{name}`: support mismatch on `{}`",
            a.name()
        );
    }

    let samples = sample_states(native.dim(), 64);
    let divergence = max_rate_divergence(native, &dsl, &samples).expect("compatible models");
    assert_eq!(
        divergence, 0.0,
        "`{name}`: native and DSL rates diverge by {divergence:e}"
    );
}

#[test]
fn sir_native_and_dsl_rates_are_identical() {
    let sir = SirModel::paper();
    assert_exact_parity("sir", &sir.population_model().unwrap(), &sir.dsl_source());
}

#[test]
fn sir_parity_survives_parameter_changes() {
    let sir = SirModel::paper_with_contact_max(7.5);
    assert_exact_parity("sir", &sir.population_model().unwrap(), &sir.dsl_source());
}

#[test]
fn seir_native_and_dsl_rates_are_identical() {
    let seir = SeirModel::sir_like();
    assert_exact_parity(
        "seir",
        &seir.population_model().unwrap(),
        &seir.dsl_source(),
    );
}

#[test]
fn gps_map_native_and_dsl_rates_are_identical() {
    // The Section VI case study: MAP phase species, a shared `let load`
    // subexpression and guarded (`when load > eps`) service rates — the
    // constructs PR 3 added to the language. Exact parity means the guard
    // and both service branches mirror `GpsModel::service` bit for bit.
    let gps = GpsModel::paper();
    assert_exact_parity(
        "gps_map",
        &gps.map_population_model().unwrap(),
        &gps.dsl_source(),
    );
}

#[test]
fn gps_poisson_native_and_dsl_rates_are_identical() {
    let gps = GpsModel::paper();
    assert_exact_parity(
        "gps_poisson",
        &gps.poisson_population_model().unwrap(),
        &gps.poisson_dsl_source(),
    );
}

#[test]
fn gps_parity_survives_weight_and_capacity_changes() {
    // The guarded service rate folds `cap * mu_i * phi_i` at compile time;
    // folding must track the configured values exactly.
    for gps in [
        GpsModel::paper_with_weights(9.0, 1.0),
        GpsModel::paper_with_weights(0.25, 4.0),
        GpsModel::paper_with_capacity(0.5),
    ] {
        assert_exact_parity(
            "gps_map",
            &gps.map_population_model().unwrap(),
            &gps.dsl_source(),
        );
        assert_exact_parity(
            "gps_poisson",
            &gps.poisson_population_model().unwrap(),
            &gps.poisson_dsl_source(),
        );
    }
}

#[test]
fn gps_registry_scenario_matches_the_hand_coded_model() {
    // The registry's `gps` scenario is the paper configuration written out
    // as literals; it must agree with the generated `dsl_source()` and with
    // the native model on every transition rate.
    let registry = mean_field_uncertain::lang::ScenarioRegistry::with_builtins();
    let scenario = registry
        .compile("gps")
        .expect("gps scenario compiles")
        .population_model()
        .expect("population backend");
    let native = GpsModel::paper().map_population_model().unwrap();
    let samples = sample_states(4, 64);
    let divergence = max_rate_divergence(&native, &scenario, &samples).expect("compatible models");
    assert_eq!(divergence, 0.0, "registry gps diverges by {divergence:e}");

    let poisson = registry
        .compile("gps_poisson")
        .expect("gps_poisson scenario compiles")
        .population_model()
        .expect("population backend");
    let native = GpsModel::paper().poisson_population_model().unwrap();
    let samples = sample_states(2, 64);
    let divergence = max_rate_divergence(&native, &poisson, &samples).expect("compatible models");
    // the registry's λ' literals are the paper's rounded decimals, but the
    // transition rates themselves take ϑ as an argument, so they still
    // match exactly on shared points
    assert_eq!(
        divergence, 0.0,
        "registry gps_poisson diverges by {divergence:e}"
    );
}

#[test]
fn gps_drifts_agree_between_native_and_dsl() {
    // The mean-field side of the case study: the DSL drift (one VM pass
    // over the guarded programs) must reproduce the hand-coded closure
    // drift on both scenarios, across states and parameter vertices.
    use mean_field_uncertain::core::drift::ImpreciseDrift;
    let gps = GpsModel::paper();

    let native = gps.map_drift();
    let dsl_model = mean_field_uncertain::lang::compile(&gps.dsl_source()).unwrap();
    let dsl = dsl_model.drift();
    for x in sample_states(4, 32) {
        for theta in native.params().vertices() {
            let a = native.drift(&x, &theta);
            let b = dsl.drift(&x, &theta);
            for k in 0..4 {
                assert!(
                    (a[k] - b[k]).abs() < 1e-12,
                    "map drift coordinate {k} at {x:?}, ϑ = {theta:?}: {} vs {}",
                    a[k],
                    b[k]
                );
            }
        }
    }

    let native = gps.poisson_drift();
    let dsl_model = mean_field_uncertain::lang::compile(&gps.poisson_dsl_source()).unwrap();
    let dsl = dsl_model.drift();
    for x in sample_states(2, 32) {
        for theta in native.params().vertices() {
            let a = native.drift(&x, &theta);
            let b = dsl.drift(&x, &theta);
            for k in 0..2 {
                assert!(
                    (a[k] - b[k]).abs() < 1e-12,
                    "poisson drift coordinate {k} at {x:?}: {} vs {}",
                    a[k],
                    b[k]
                );
            }
        }
    }
    // keep the helper honest: the DSL initial states mirror the natives
    assert!(
        dsl_model
            .initial_state()
            .distance_inf(&gps.poisson_initial_state())
            < 1e-12
    );
}

#[test]
fn gossip_native_and_dsl_rates_are_identical() {
    // The epidemic-broadcast member of the Benaïm–Le Boudec fleet: the
    // mass-action `spread` rate lowers through the VM fast path (ϑ first,
    // then the species in source order), the `stifled` rate through
    // bytecode — both must mirror the native closures bit for bit.
    use mean_field_uncertain::models::gossip::GossipModel;
    let gossip = GossipModel::broadcast();
    assert_exact_parity(
        "gossip",
        &gossip.population_model().unwrap(),
        &gossip.dsl_source(),
    );
}

#[test]
fn gossip_parity_survives_parameter_changes() {
    use mean_field_uncertain::models::gossip::GossipModel;
    for gossip in [
        GossipModel {
            push_max: 7.5,
            ..GossipModel::broadcast()
        },
        GossipModel {
            stifle: 2.25,
            cool: 0.4,
            ..GossipModel::broadcast()
        },
    ] {
        assert_exact_parity(
            "gossip",
            &gossip.population_model().unwrap(),
            &gossip.dsl_source(),
        );
    }
}

#[test]
fn gossip_registry_scenario_matches_the_hand_coded_model() {
    // The registry's `gossip` scenario is the broadcast configuration
    // written out as literals; it must agree with the native model on
    // every transition rate, at every parameter vertex.
    use mean_field_uncertain::models::gossip::GossipModel;
    let registry = mean_field_uncertain::lang::ScenarioRegistry::with_builtins();
    let scenario = registry
        .compile("gossip")
        .expect("gossip scenario compiles")
        .population_model()
        .expect("population backend");
    let native = GossipModel::broadcast().population_model().unwrap();
    let samples = sample_states(3, 64);
    let divergence = max_rate_divergence(&native, &scenario, &samples).expect("compatible models");
    assert_eq!(
        divergence, 0.0,
        "registry gossip diverges by {divergence:e}"
    );
}

#[test]
fn bike_native_drift_and_dsl_reduced_drift_are_identical() {
    // The registry's `bike` scenario is the 2-species conservative spelling
    // of `BikeStationModel`; its reduced drift must reproduce the native
    // 1-dimensional occupancy dynamics bit for bit, boundary guards
    // included (`B < 1` is exactly `E > 0` under conservation).
    use mean_field_uncertain::core::drift::ImpreciseDrift;
    use mean_field_uncertain::models::bike::BikeStationModel;
    use mean_field_uncertain::num::StateVec;

    let bike = BikeStationModel::symmetric();
    let native = bike.drift();
    let model = mean_field_uncertain::lang::ScenarioRegistry::with_builtins()
        .compile("bike")
        .expect("bike scenario compiles");
    assert!(model.is_conservative(), "bike must conserve total racks");
    let reduced = model.reduced_drift();
    assert_eq!(reduced.dim(), 1, "reduced drift lives on the occupancy");
    assert_eq!(
        model.reduced_initial_state().as_slice(),
        bike.initial_state().as_slice()
    );

    for occupancy in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let x = StateVec::from([occupancy]);
        for theta in [[0.5, 0.5], [0.5, 1.5], [1.5, 0.5], [1.5, 1.5], [1.0, 1.3]] {
            let a = native.drift(&x, &theta)[0];
            let b = reduced.drift(&x, &theta)[0];
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "bike drift differs at B = {occupancy}, theta = {theta:?}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn gps_rates_stay_guarded_at_the_empty_queue_corner() {
    // The whole point of the `when` guard: the service rates are 0, not
    // NaN, when both queues are empty — in both representations.
    use mean_field_uncertain::num::StateVec;
    let gps = GpsModel::paper();
    let native = gps.map_population_model().unwrap();
    let dsl = mean_field_uncertain::lang::compile(&gps.dsl_source())
        .unwrap()
        .population_model()
        .unwrap();
    let empty = StateVec::from([0.5, 0.0, 0.5, 0.0]);
    for model in [&native, &dsl] {
        for t in model.transitions() {
            let rate = t.rate(&empty, &[4.0, 2.5]);
            assert!(
                rate.is_finite() && rate >= 0.0,
                "`{}` = {rate} at empty queues",
                t.name()
            );
            if t.name().starts_with("serve") {
                assert_eq!(rate, 0.0, "`{}` should be masked", t.name());
            }
        }
    }
}
