//! Native-closure vs DSL-bytecode rate parity.
//!
//! The hand-coded epidemic models and their `dsl_source()` twins must
//! produce *identical* rates: the DSL pipeline lowers each rate expression
//! to a flat bytecode/mass-action program whose evaluation order matches
//! the original tree, and the trees mirror the native closures. The
//! divergence measured by `mfu_models::parity` over a deterministic state
//! sample must therefore be exactly zero — any ulp of drift here would
//! desynchronise the bit-exact Gillespie cross-validation of
//! `tests/dsl_scenarios.rs`.

use mean_field_uncertain::ctmc::population::PopulationModel;
use mean_field_uncertain::models::parity::{max_rate_divergence, sample_states};
use mean_field_uncertain::models::seir::SeirModel;
use mean_field_uncertain::models::sir::SirModel;

fn assert_exact_parity(name: &str, native: &PopulationModel, source: &str) {
    let dsl = mean_field_uncertain::lang::compile(source)
        .unwrap_or_else(|e| panic!("`{name}` DSL source failed to compile:\n{e}"))
        .population_model()
        .expect("population backend");

    // the two backends really are different engines…
    assert!(
        native
            .transitions()
            .iter()
            .all(|t| !t.rate_fn().is_compiled()),
        "`{name}`: native model unexpectedly uses compiled rates"
    );
    assert!(
        dsl.transitions().iter().all(|t| t.rate_fn().is_compiled()),
        "`{name}`: DSL model should lower rates to programs"
    );
    // …and the native annotations agree with the programs' derived supports.
    for (a, b) in native.transitions().iter().zip(dsl.transitions()) {
        assert_eq!(
            a.species_support(),
            b.species_support(),
            "`{name}`: support mismatch on `{}`",
            a.name()
        );
    }

    let samples = sample_states(native.dim(), 64);
    let divergence = max_rate_divergence(native, &dsl, &samples).expect("compatible models");
    assert_eq!(
        divergence, 0.0,
        "`{name}`: native and DSL rates diverge by {divergence:e}"
    );
}

#[test]
fn sir_native_and_dsl_rates_are_identical() {
    let sir = SirModel::paper();
    assert_exact_parity("sir", &sir.population_model().unwrap(), &sir.dsl_source());
}

#[test]
fn sir_parity_survives_parameter_changes() {
    let sir = SirModel::paper_with_contact_max(7.5);
    assert_exact_parity("sir", &sir.population_model().unwrap(), &sir.dsl_source());
}

#[test]
fn seir_native_and_dsl_rates_are_identical() {
    let seir = SeirModel::sir_like();
    assert_exact_parity(
        "seir",
        &seir.population_model().unwrap(),
        &seir.dsl_source(),
    );
}
