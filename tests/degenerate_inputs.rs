//! Degenerate-input property tests (mfu-guard satellite).
//!
//! The engines must treat pathological-but-legal inputs as ordinary work:
//! all-zero initial populations, absorbing starts, horizons spanning six
//! hundred orders of magnitude, and parameter boxes collapsed to a single
//! point all either complete, truncate gracefully, or fail with a typed
//! error. Panics and hangs are the only forbidden outcomes, and `proptest`
//! sweeps the input space so nobody has to hand-pick the nasty values.

use std::time::Duration;

use proptest::prelude::*;

use mean_field_uncertain::core::hull::{DifferentialHull, HullOptions};
use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mean_field_uncertain::guard::{Outcome, RunBudget, TruncationReason};
use mean_field_uncertain::lang::{compile, CompiledModel};
use mean_field_uncertain::sim::gillespie::{SimulationAlgorithm, SimulationOptions, Simulator};
use mean_field_uncertain::sim::policy::ConstantPolicy;
use mean_field_uncertain::sim::steady::SteadyStateOptions;
use mean_field_uncertain::sim::tauleap::TauLeapOptions;
use mean_field_uncertain::sim::SimError;

/// SIR with a configurable contact interval; `[v, v]` gives the degenerate
/// single-point parameter box.
fn sir(lo: f64, hi: f64) -> CompiledModel {
    compile(&format!(
        "model sir;\n\
         species S, I, R;\n\
         param contact in [{lo}, {hi}];\n\
         const a = 0.1;\n\
         const b = 5;\n\
         const c = 1;\n\
         rule infect:  S -> I @ (a + contact * I) * S;\n\
         rule recover: I -> R @ b * I;\n\
         rule wane:    R -> S @ c * R;\n\
         init S = 0.7, I = 0.3, R = 0;\n"
    ))
    .expect("sir dsl compiles")
}

/// Pure decay whose initial state has no infected agents: every rate is
/// exactly zero from the first evaluation, i.e. the start is absorbing.
fn absorbing() -> CompiledModel {
    compile(
        "model decay;\n\
         species I, R;\n\
         param rho in [1, 2];\n\
         rule fade: I -> R @ rho * I;\n\
         init I = 0, R = 1;\n",
    )
    .expect("decay dsl compiles")
}

fn engines() -> [SimulationAlgorithm; 2] {
    [
        SimulationAlgorithm::Exact,
        SimulationAlgorithm::TauLeap(TauLeapOptions::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A population of zero agents is absorbing by construction: every
    /// engine completes with zero events and a flat trajectory.
    #[test]
    fn all_zero_initial_state_completes_with_zero_events(
        seed in 0u64..1_000,
        scale in 1usize..500,
    ) {
        let model = sir(1.0, 10.0);
        let population = model.population_model().unwrap();
        let zeros = vec![0i64; population.dim()];
        for algorithm in engines() {
            let simulator = Simulator::new(population.clone(), scale).unwrap();
            let options = SimulationOptions::new(2.0).algorithm(algorithm);
            let mut policy = ConstantPolicy::new(model.params().midpoint());
            let run = simulator.simulate(&zeros, &mut policy, &options, seed).unwrap();
            prop_assert_eq!(run.outcome(), Outcome::Completed);
            prop_assert_eq!(run.events(), 0);
            prop_assert_eq!(run.final_counts(), &zeros[..]);
        }
    }

    /// An absorbing initial state (all rates exactly zero) completes
    /// instantly rather than spinning or erroring.
    #[test]
    fn absorbing_start_completes_instantly(seed in 0u64..1_000, scale in 1usize..500) {
        let model = absorbing();
        let population = model.population_model().unwrap();
        let counts = model.initial_counts(scale);
        for algorithm in engines() {
            let simulator = Simulator::new(population.clone(), scale).unwrap();
            let options = SimulationOptions::new(5.0).algorithm(algorithm);
            let mut policy = ConstantPolicy::new(model.params().midpoint());
            let run = simulator.simulate(&counts, &mut policy, &options, seed).unwrap();
            prop_assert_eq!(run.outcome(), Outcome::Completed);
            prop_assert_eq!(run.events(), 0);
            prop_assert_eq!(run.final_counts(), &counts[..]);
        }
    }

    /// Horizons down to 1e-300 are legal: the run completes (usually with
    /// zero events — the first waiting time overshoots the horizon) and the
    /// trajectory still ends exactly at `t_end`.
    #[test]
    fn tiny_horizons_are_exact_not_special_cased(
        exponent in -300i64..-10,
        seed in 0u64..1_000,
    ) {
        let t_end = 10f64.powi(exponent as i32);
        let model = sir(1.0, 10.0);
        let population = model.population_model().unwrap();
        let counts = model.initial_counts(200);
        for algorithm in engines() {
            let simulator = Simulator::new(population.clone(), 200).unwrap();
            let options = SimulationOptions::new(t_end).algorithm(algorithm);
            let mut policy = ConstantPolicy::new(model.params().midpoint());
            let run = simulator.simulate(&counts, &mut policy, &options, seed).unwrap();
            prop_assert_eq!(run.outcome(), Outcome::Completed);
            prop_assert_eq!(run.trajectory().last_time(), t_end);
        }
    }

    /// A huge horizon with a small event budget truncates gracefully at the
    /// budget instead of hanging for the age of the universe: the partial
    /// run is returned, carries exactly `max_events` events and names the
    /// cap that tripped.
    #[test]
    fn huge_horizons_truncate_at_the_event_budget(
        max_events in 10u64..200,
        seed in 0u64..1_000,
    ) {
        let model = sir(1.0, 10.0);
        let population = model.population_model().unwrap();
        let counts = model.initial_counts(200);
        let simulator = Simulator::new(population, 200).unwrap();
        let options = SimulationOptions::new(1e12).budget(
            RunBudget::unlimited()
                .max_events(max_events)
                .wall_clock(Duration::from_secs(10)),
        );
        let mut policy = ConstantPolicy::new(model.params().midpoint());
        let run = simulator.simulate(&counts, &mut policy, &options, seed).unwrap();
        match run.outcome() {
            Outcome::Truncated { reason, reached_t } => {
                prop_assert_eq!(reason, TruncationReason::MaxEvents);
                prop_assert!(reached_t.is_finite() && reached_t < 1e12);
                prop_assert_eq!(run.events() as u64, max_events);
                prop_assert_eq!(run.trajectory().last_time(), reached_t);
            }
            Outcome::Completed => prop_assert!(false, "1e12 horizon cannot complete"),
        }
    }

    /// A parameter box collapsed to a single point (a precisely known
    /// parameter) degrades every analysis to its classical counterpart:
    /// simulation runs, the hull has zero parameter-induced width at t = 0,
    /// and Pontryagin's lower and upper extremals coincide.
    #[test]
    fn single_point_parameter_boxes_collapse_cleanly(contact in 0.5f64..5.0) {
        let model = sir(contact, contact);
        let population = model.population_model().unwrap();
        let counts = model.initial_counts(150);
        let simulator = Simulator::new(population, 150).unwrap();
        let options = SimulationOptions::new(1.0);
        let mut policy = ConstantPolicy::new(model.params().midpoint());
        let run = simulator.simulate(&counts, &mut policy, &options, 3).unwrap();
        prop_assert_eq!(run.outcome(), Outcome::Completed);

        let drift = model.reduced_drift();
        let x0 = model.reduced_initial_state();
        let hull = DifferentialHull::new(
            &drift,
            HullOptions { step: 5e-3, time_intervals: 10, ..Default::default() },
        );
        let bounds = hull.bounds(&x0, 1.0).unwrap();
        let (lo, hi) = bounds.final_bounds();
        for i in 0..lo.dim() {
            prop_assert!(lo[i].is_finite() && hi[i].is_finite() && lo[i] <= hi[i]);
        }

        let solver = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 40,
            ..Default::default()
        });
        let (p_lo, p_hi) = solver.coordinate_extremes(&drift, &x0, 1.0, 1).unwrap();
        prop_assert!(
            (p_hi - p_lo).abs() < 1e-6,
            "point box must give coinciding extremes, got [{}, {}]",
            p_lo,
            p_hi
        );
    }
}

/// The checked steady-state constructor rejects every malformed input with
/// a typed error naming the offending field — no asserts, no NaN laundering.
#[test]
fn steady_state_try_new_rejects_bad_inputs_with_typed_errors() {
    let cases: [(f64, f64, usize, &str); 5] = [
        (f64::NAN, 0.1, 5, "burn-in"),
        (-1.0, 0.1, 5, "burn-in"),
        (0.5, 0.0, 5, "sample interval"),
        (0.5, f64::INFINITY, 5, "sample interval"),
        (0.5, 0.1, 0, "sample"),
    ];
    for (burn_in, interval, samples, needle) in cases {
        match SteadyStateOptions::try_new(burn_in, interval, samples) {
            Err(SimError::InvalidInput { message }) => assert!(
                message.contains(needle),
                "error {message:?} does not name {needle:?}"
            ),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }
}
