//! Scenario scaling laws: Kurtz density dependence across the registry.
//!
//! The mean-field machinery only applies to *density-dependent* population
//! processes (Kurtz's condition): the propensity of a transition at
//! population size `N` must be `N · f(counts / N)` for a scale-free rate
//! density `f`. Every registry scenario therefore has to satisfy two
//! properties, and this suite pins both so a mis-scaled rate can't
//! silently enter the registry:
//!
//! * **scale invariance** — evaluating `f` at `counts / N` and at
//!   `(2·counts) / (2N)` must give the *bit-identical* result (doubling
//!   both numerator and denominator is exact in binary floating point, so
//!   any difference would mean the rate depends on absolute counts, not
//!   densities), which makes the propensity exactly linear in `N`;
//! * **health on the simplex** — `f` is finite and non-negative at every
//!   vertex of the parameter box, and the resulting drift is bounded
//!   (`PopulationModel::check_scaling_assumptions`), for random population
//!   splits, not just the initial condition.

use proptest::prelude::*;

use mean_field_uncertain::lang::ScenarioRegistry;
use mean_field_uncertain::num::StateVec;

/// Splits `scale` agents over `dim` compartments, deterministically from a
/// seed: a Weyl sequence draws `dim − 1` cut fractions, the remainder goes
/// to the last compartment, so the counts always sum to `scale` exactly.
fn random_split(dim: usize, scale: usize, seed: u64) -> Vec<i64> {
    const ALPHA: f64 = 0.618_033_988_749_894_9; // 1/φ
    let mut remaining = scale as i64;
    let mut counts = Vec::with_capacity(dim);
    for i in 0..dim - 1 {
        let fraction = ((seed + 1) as f64 * ALPHA * (i + 2) as f64).fract();
        let take = ((remaining as f64 * fraction) as i64).clamp(0, remaining);
        counts.push(take);
        remaining -= take;
    }
    counts.push(remaining);
    counts
}

/// Densities `counts / scale` as a state vector.
fn densities(counts: &[i64], scale: usize) -> StateVec {
    counts
        .iter()
        .map(|&c| c as f64 / scale as f64)
        .collect::<Vec<_>>()
        .into()
}

/// Parameter boxes to probe: every vertex plus the midpoint.
fn thetas(model: &mean_field_uncertain::lang::CompiledModel) -> Vec<Vec<f64>> {
    let mut thetas = model.params().vertices();
    thetas.push(model.params().midpoint());
    thetas
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Doubling both the counts and the population size leaves every rate
    /// density bit-identical, at every parameter vertex — the registry-wide
    /// Kurtz scale-invariance sweep.
    #[test]
    fn rates_are_density_dependent_across_the_registry(seed in 0u64..10_000) {
        let registry = ScenarioRegistry::with_builtins();
        for scenario in registry.iter() {
            let model = scenario.compile().unwrap();
            let population = model.population_model().unwrap();
            // cap the sweep scale: the *density* maths is what matters, and
            // doubled counts must stay exact in f64 regardless of the
            // declared default (sir_1e6 still sweeps at its full scale)
            let scale = scenario.default_scale().unwrap_or(1000).min(1 << 40);
            let counts = random_split(population.dim(), scale, seed);
            let doubled: Vec<i64> = counts.iter().map(|&c| 2 * c).collect();
            let x = densities(&counts, scale);
            let y = densities(&doubled, 2 * scale);
            for theta in thetas(&model) {
                for t in population.transitions() {
                    let r1 = t.rate(&x, &theta);
                    let r2 = t.rate(&y, &theta);
                    prop_assert!(
                        r1.is_finite() && r1 >= 0.0,
                        "`{}`: unhealthy rate `{}` = {r1} at N = {scale}",
                        scenario.name(),
                        t.name()
                    );
                    prop_assert_eq!(
                        r1.to_bits(),
                        r2.to_bits(),
                        "`{}`: rate `{}` is not density-dependent ({} at N vs {} at 2N)",
                        scenario.name(),
                        t.name(),
                        r1,
                        r2
                    );
                    // the propensity N·f(x) is then exactly linear in N
                    // (multiplication by 2 is exact in binary)
                    let propensity = scale as f64 * r1;
                    let propensity_doubled = (2 * scale) as f64 * r2;
                    prop_assert_eq!(
                        (2.0 * propensity).to_bits(),
                        propensity_doubled.to_bits(),
                        "`{}`: propensity of `{}` is not linear in N",
                        scenario.name(),
                        t.name()
                    );
                }
            }
        }
    }

    /// The drift stays bounded over random population splits at every
    /// parameter vertex — `check_scaling_assumptions` over the registry.
    #[test]
    fn drifts_stay_bounded_on_random_population_splits(seed in 0u64..10_000) {
        let registry = ScenarioRegistry::with_builtins();
        for scenario in registry.iter() {
            let model = scenario.compile().unwrap();
            let population = model.population_model().unwrap();
            let scale = scenario.default_scale().unwrap_or(1000);
            let samples: Vec<StateVec> = (0..4)
                .map(|k| densities(&random_split(population.dim(), scale, seed + k), scale))
                .chain(std::iter::once(model.initial_state()))
                .collect();
            // generous but finite: rates are O(1) densities times O(10)
            // constants, and the jump vectors are unit-sized — a diverging
            // drift here means a modelling bug, not tightness
            let bound = 1e4;
            if let Err(e) = population.check_scaling_assumptions(&samples, bound) {
                prop_assert!(false, "`{}`: {e}", scenario.name());
            }
        }
    }
}

/// The flagship worked example of the Kurtz condition: power-of-d-choices
/// at three different scales produces the exact same rate densities, so a
/// τ-leap ensemble at N = 10³ and one at N = 10⁶ integrate the same
/// mean-field limit.
#[test]
fn pod_choices_densities_are_scale_free() {
    let registry = ScenarioRegistry::with_builtins();
    let model = registry.compile("pod_choices_d2").unwrap();
    let population = model.population_model().unwrap();
    let theta = model.params().midpoint();
    let reference: Vec<f64> = {
        let x = densities(&model.initial_counts(1000), 1000);
        population
            .transitions()
            .iter()
            .map(|t| t.rate(&x, &theta))
            .collect()
    };
    for scale in [4_000usize, 1_000_000] {
        let x = densities(&model.initial_counts(scale), scale);
        for (t, &expected) in population.transitions().iter().zip(&reference) {
            let rate = t.rate(&x, &theta);
            assert_eq!(
                rate.to_bits(),
                expected.to_bits(),
                "`{}` drifts across scales: {rate} vs {expected}",
                t.name()
            );
        }
    }
}
