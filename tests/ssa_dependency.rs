//! Acceptance: the dependency-graph Gillespie hot path is bit-identical to
//! the full-rescan reference for every registered DSL scenario.
//!
//! Each scenario compiles to a population model whose rates are flat
//! bytecode programs with known species supports, so the simulator's
//! dependency graph is genuinely sparse. For the same RNG seed, the
//! `DependencyGraph` strategy must reproduce the `FullRescan` trajectory —
//! every event time and every recorded state, bit for bit — because it
//! evaluates identical programs on identical states and re-sums the
//! propensity total in the reference's addition order. The
//! `IncrementalTotal` strategy maintains a running propensity total that is
//! allowed to drift from the reference by ulps between refreshes, so it is
//! held to a slightly weaker standard: the *event sequence* (every state,
//! every final count) must match exactly, while event times may differ by a
//! relative `1e-12`. The comparison is fully deterministic, so this cannot
//! flake.

use mean_field_uncertain::lang::ScenarioRegistry;
use mean_field_uncertain::sim::gillespie::{
    PropensityStrategy, SimulationOptions, SimulationRun, Simulator,
};
use mean_field_uncertain::sim::policy::ConstantPolicy;

const SCALE: usize = 300;
const SEEDS: [u64; 3] = [1, 17, 2026];

fn run(
    simulator: &Simulator,
    counts: &[i64],
    theta: &[f64],
    strategy: PropensityStrategy,
    seed: u64,
) -> SimulationRun {
    let mut policy = ConstantPolicy::new(theta.to_vec());
    let options = SimulationOptions::new(4.0)
        .max_events(400_000)
        .propensity_strategy(strategy);
    simulator
        .simulate(counts, &mut policy, &options, seed)
        .expect("simulation failed")
}

/// `time_tolerance` is the admissible relative deviation of event times
/// (`0.0` demands bit-identity); states and final counts must always match
/// exactly.
fn assert_same_run(
    name: &str,
    seed: u64,
    reference: &SimulationRun,
    other: &SimulationRun,
    time_tolerance: f64,
) {
    assert_eq!(
        reference.events(),
        other.events(),
        "`{name}` seed {seed}: event counts diverged"
    );
    assert_eq!(
        reference.final_counts(),
        other.final_counts(),
        "`{name}` seed {seed}: final counts diverged"
    );
    assert_eq!(
        reference.trajectory().len(),
        other.trajectory().len(),
        "`{name}` seed {seed}: trajectory lengths diverged"
    );
    for (index, ((ta, sa), (tb, sb))) in reference
        .trajectory()
        .iter()
        .zip(other.trajectory().iter())
        .enumerate()
    {
        if time_tolerance == 0.0 {
            assert_eq!(
                ta.to_bits(),
                tb.to_bits(),
                "`{name}` seed {seed}: time diverged at point {index}"
            );
        } else {
            assert!(
                (ta - tb).abs() <= time_tolerance * ta.abs().max(1.0),
                "`{name}` seed {seed}: time diverged at point {index}: {ta} vs {tb}"
            );
        }
        for (i, (va, vb)) in sa.iter().zip(sb.iter()).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "`{name}` seed {seed}: coordinate {i} diverged at point {index}"
            );
        }
    }
}

#[test]
fn dependency_graph_ssa_is_bit_identical_across_the_registry() {
    let registry = ScenarioRegistry::with_builtins();
    assert_eq!(
        registry.names(),
        vec![
            "botnet",
            "gps",
            "gps_poisson",
            "load_balancer",
            "seir",
            "sir",
            "sis"
        ]
    );
    for scenario in registry.iter() {
        let model = scenario.compile().expect("scenario compiles");
        let population = model.population_model().expect("population backend");
        // DSL rates are compiled programs, so supports are known…
        assert!(
            population
                .transitions()
                .iter()
                .all(|t| t.rate_fn().is_compiled()),
            "`{}`: expected compiled rates",
            scenario.name()
        );
        let simulator = Simulator::new(population, SCALE).expect("simulator");
        // …and the dependency graph actually prunes work wherever the
        // stoichiometry allows it (the 2-species SIS is legitimately dense:
        // both rules read and write both species). The guarded GPS rates
        // still report sparse supports — the guard condition and both
        // branches contribute, but e.g. `create1` only reads its own MAP
        // phase.
        if matches!(
            scenario.name(),
            "botnet" | "seir" | "load_balancer" | "sir" | "gps" | "gps_poisson"
        ) {
            assert!(
                simulator.has_sparse_dependencies(),
                "`{}`: dependency graph is dense",
                scenario.name()
            );
        }

        let counts = model.initial_counts(SCALE);
        let theta = model.params().midpoint();
        for seed in SEEDS {
            let reference = run(
                &simulator,
                &counts,
                &theta,
                PropensityStrategy::FullRescan,
                seed,
            );
            assert!(
                reference.events() > 0,
                "`{}` seed {seed}: no events simulated",
                scenario.name()
            );
            let graph = run(
                &simulator,
                &counts,
                &theta,
                PropensityStrategy::DependencyGraph,
                seed,
            );
            assert_same_run(scenario.name(), seed, &reference, &graph, 0.0);
            let incremental = run(
                &simulator,
                &counts,
                &theta,
                PropensityStrategy::IncrementalTotal { refresh_every: 256 },
                seed,
            );
            assert_same_run(scenario.name(), seed, &reference, &incremental, 1e-12);
        }
    }
}

#[test]
fn dependency_graph_matches_under_vertex_parameters() {
    // The extreme parameter choices drive some scenarios toward rate
    // boundaries (dropped jumps, near-absorbing states) — the paths the
    // dependency bookkeeping must also handle identically.
    let registry = ScenarioRegistry::with_builtins();
    for scenario in registry.iter() {
        let model = scenario.compile().expect("scenario compiles");
        let population = model.population_model().expect("population backend");
        let simulator = Simulator::new(population, SCALE).expect("simulator");
        let counts = model.initial_counts(SCALE);
        for vertex in model.params().vertices() {
            let reference = run(
                &simulator,
                &counts,
                &vertex,
                PropensityStrategy::FullRescan,
                5,
            );
            let graph = run(
                &simulator,
                &counts,
                &vertex,
                PropensityStrategy::DependencyGraph,
                5,
            );
            assert_same_run(scenario.name(), 5, &reference, &graph, 0.0);
        }
    }
}
