//! Acceptance: the dependency-graph Gillespie hot path is bit-identical to
//! the full-rescan reference for every registered DSL scenario.
//!
//! Each scenario compiles to a population model whose rates are flat
//! bytecode programs with known species supports, so the simulator's
//! dependency graph is genuinely sparse. For the same RNG seed, the
//! `DependencyGraph` strategy must reproduce the `FullRescan` trajectory —
//! every event time and every recorded state, bit for bit — because it
//! evaluates identical programs on identical states and re-sums the
//! propensity total in the reference's addition order. The
//! `IncrementalTotal` strategy maintains a running propensity total that is
//! allowed to drift from the reference by ulps between refreshes, so it is
//! held to a slightly weaker standard: the *event sequence* (every state,
//! every final count) must match exactly, while event times may differ by a
//! relative `1e-12`. The comparison is fully deterministic, so this cannot
//! flake.
//!
//! The selection subsystem is held to the same contract per strategy:
//! within a fixed `SelectionStrategy`, `FullRescan` and `DependencyGraph`
//! propensity maintenance see identical rates and totals, so their runs
//! must agree bit for bit for *every* selection strategy (tree descent and
//! composition-rejection groups are pure functions of the rate array and
//! the RNG stream). Across selection strategies, `FullRescan + LinearScan`
//! is the bit-exact reference; the tree consumes the same single uniform
//! per event and only disagrees on ulp-wide target windows (none of the
//! tested seeds hit one), while composition-rejection consumes a different
//! draw sequence and is checked for determinism and model invariants.

use mean_field_uncertain::lang::scenarios::ring_source;
use mean_field_uncertain::lang::ScenarioRegistry;
use mean_field_uncertain::sim::gillespie::{
    PropensityStrategy, SimulationOptions, SimulationRun, Simulator,
};
use mean_field_uncertain::sim::policy::ConstantPolicy;
use mean_field_uncertain::sim::selection::SelectionStrategy;

const SCALE: usize = 300;
const SEEDS: [u64; 3] = [1, 17, 2026];

fn run(
    simulator: &Simulator,
    counts: &[i64],
    theta: &[f64],
    strategy: PropensityStrategy,
    seed: u64,
) -> SimulationRun {
    run_with_selection(
        simulator,
        counts,
        theta,
        strategy,
        SelectionStrategy::LinearScan,
        seed,
    )
}

fn run_with_selection(
    simulator: &Simulator,
    counts: &[i64],
    theta: &[f64],
    strategy: PropensityStrategy,
    selection: SelectionStrategy,
    seed: u64,
) -> SimulationRun {
    let mut policy = ConstantPolicy::new(theta.to_vec());
    let options = SimulationOptions::new(4.0)
        .max_events(400_000)
        .propensity_strategy(strategy)
        .selection_strategy(selection);
    simulator
        .simulate(counts, &mut policy, &options, seed)
        .expect("simulation failed")
}

/// `time_tolerance` is the admissible relative deviation of event times
/// (`0.0` demands bit-identity); states and final counts must always match
/// exactly.
fn assert_same_run(
    name: &str,
    seed: u64,
    reference: &SimulationRun,
    other: &SimulationRun,
    time_tolerance: f64,
) {
    assert_eq!(
        reference.events(),
        other.events(),
        "`{name}` seed {seed}: event counts diverged"
    );
    assert_eq!(
        reference.final_counts(),
        other.final_counts(),
        "`{name}` seed {seed}: final counts diverged"
    );
    assert_eq!(
        reference.trajectory().len(),
        other.trajectory().len(),
        "`{name}` seed {seed}: trajectory lengths diverged"
    );
    for (index, ((ta, sa), (tb, sb))) in reference
        .trajectory()
        .iter()
        .zip(other.trajectory().iter())
        .enumerate()
    {
        if time_tolerance == 0.0 {
            assert_eq!(
                ta.to_bits(),
                tb.to_bits(),
                "`{name}` seed {seed}: time diverged at point {index}"
            );
        } else {
            assert!(
                (ta - tb).abs() <= time_tolerance * ta.abs().max(1.0),
                "`{name}` seed {seed}: time diverged at point {index}: {ta} vs {tb}"
            );
        }
        for (i, (va, vb)) in sa.iter().zip(sb.iter()).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "`{name}` seed {seed}: coordinate {i} diverged at point {index}"
            );
        }
    }
}

#[test]
fn dependency_graph_ssa_is_bit_identical_across_the_registry() {
    let registry = ScenarioRegistry::with_builtins();
    assert_eq!(
        registry.names(),
        vec![
            "bike",
            "bike_city_4",
            "botnet",
            "csma",
            "gossip",
            "gps",
            "gps_poisson",
            "grid_6x6",
            "load_balancer",
            "pod_choices_d2",
            "pod_choices_d3",
            "ring_48",
            "seir",
            "sir",
            "sir_1e6",
            "sis",
            "ttl_cache"
        ]
    );
    for scenario in registry.iter() {
        let model = scenario.compile().expect("scenario compiles");
        let population = model.population_model().expect("population backend");
        // DSL rates are compiled programs, so supports are known…
        assert!(
            population
                .transitions()
                .iter()
                .all(|t| t.rate_fn().is_compiled()),
            "`{}`: expected compiled rates",
            scenario.name()
        );
        let simulator = Simulator::new(population, SCALE).expect("simulator");
        // …and the dependency graph actually prunes work wherever the
        // stoichiometry allows it (the 2-species SIS is legitimately dense:
        // both rules read and write both species). The guarded GPS rates
        // still report sparse supports — the guard condition and both
        // branches contribute, but e.g. `create1` only reads its own MAP
        // phase.
        if matches!(
            scenario.name(),
            "botnet"
                | "seir"
                | "load_balancer"
                | "sir"
                | "sir_1e6"
                | "gps"
                | "gps_poisson"
                | "ring_48"
                | "grid_6x6"
        ) {
            assert!(
                simulator.has_sparse_dependencies(),
                "`{}`: dependency graph is dense",
                scenario.name()
            );
        }

        let counts = model.initial_counts(SCALE);
        let theta = model.params().midpoint();
        for seed in SEEDS {
            let reference = run(
                &simulator,
                &counts,
                &theta,
                PropensityStrategy::FullRescan,
                seed,
            );
            assert!(
                reference.events() > 0,
                "`{}` seed {seed}: no events simulated",
                scenario.name()
            );
            let graph = run(
                &simulator,
                &counts,
                &theta,
                PropensityStrategy::DependencyGraph,
                seed,
            );
            assert_same_run(scenario.name(), seed, &reference, &graph, 0.0);
            let incremental = run(
                &simulator,
                &counts,
                &theta,
                PropensityStrategy::IncrementalTotal { refresh_every: 256 },
                seed,
            );
            assert_same_run(scenario.name(), seed, &reference, &incremental, 1e-12);
        }
    }
}

/// A 2-rule guarded model that walks to an absorbing boundary: once X is
/// exhausted both guards hold the rates at exactly 0.0 and the simulation
/// must stop without firing anything further.
const GUARDED_ABSORBING_SOURCE: &str = "\
model guarded_absorbing;
species X, Y;
param r in [1, 2];
rule decay:   X -> Y @ when X > 0 { r * X } else { 0 };
rule degrade: Y -> 0 @ when X > 0 { 0.5 * Y } else { 0 };
init X = 0.4, Y = 0.6;
";

const SELECTIONS: [SelectionStrategy; 3] = [
    SelectionStrategy::LinearScan,
    SelectionStrategy::SumTree,
    SelectionStrategy::CompositionRejection,
];

#[test]
fn selection_and_propensity_combinations_agree_on_generated_scenarios() {
    let registry = ScenarioRegistry::with_builtins();
    for name in ["ring_48", "grid_6x6"] {
        let model = registry.compile(name).expect("scenario compiles");
        let population = model.population_model().expect("population backend");
        let simulator = Simulator::new(population, SCALE).expect("simulator");
        let counts = model.initial_counts(SCALE);
        let theta = model.params().midpoint();
        for seed in SEEDS {
            let reference = run_with_selection(
                &simulator,
                &counts,
                &theta,
                PropensityStrategy::FullRescan,
                SelectionStrategy::LinearScan,
                seed,
            );
            assert!(reference.events() > 0, "`{name}` seed {seed}: no events");
            for selection in SELECTIONS {
                let full = run_with_selection(
                    &simulator,
                    &counts,
                    &theta,
                    PropensityStrategy::FullRescan,
                    selection,
                    seed,
                );
                let graph = run_with_selection(
                    &simulator,
                    &counts,
                    &theta,
                    PropensityStrategy::DependencyGraph,
                    selection,
                    seed,
                );
                let incremental = run_with_selection(
                    &simulator,
                    &counts,
                    &theta,
                    PropensityStrategy::IncrementalTotal { refresh_every: 256 },
                    selection,
                    seed,
                );
                if selection == SelectionStrategy::CompositionRejection {
                    // CR group membership order is update-history dependent
                    // (fresh rebuild vs swap-remove churn), so propensity
                    // strategies legitimately diverge; the contract is
                    // determinism per configuration plus model invariants
                    let again = run_with_selection(
                        &simulator,
                        &counts,
                        &theta,
                        PropensityStrategy::DependencyGraph,
                        selection,
                        seed,
                    );
                    assert_same_run(name, seed, &graph, &again, 0.0);
                    assert!(incremental.events() > 0);
                } else {
                    // within linear/tree selection, every propensity
                    // strategy sees the same rates: FullRescan vs
                    // DependencyGraph must be bit-identical,
                    // IncrementalTotal ulp-close in time
                    assert_same_run(name, seed, &full, &graph, 0.0);
                    assert_same_run(name, seed, &full, &incremental, 1e-12);
                }
                // model invariants hold regardless of the draw sequence
                for run in [&full, &graph, &incremental] {
                    assert_eq!(
                        run.final_counts().iter().sum::<i64>(),
                        SCALE as i64,
                        "`{name}` {selection}: migration network lost mass"
                    );
                    assert!(run.final_counts().iter().all(|&c| c >= 0));
                }
                // cross-selection: the tree consumes the same uniform draw
                // per event as the scan, so these seeds match it exactly
                if selection == SelectionStrategy::SumTree {
                    assert_eq!(reference.events(), full.events(), "`{name}` seed {seed}");
                    assert_eq!(reference.final_counts(), full.final_counts());
                }
            }
        }
    }
}

#[test]
fn guarded_model_at_an_absorbing_boundary_stops_under_every_combination() {
    let model = mean_field_uncertain::lang::compile(GUARDED_ABSORBING_SOURCE).unwrap();
    let population = model.population_model().unwrap();
    let simulator = Simulator::new(population, 100).unwrap();
    let theta = model.params().midpoint();
    let propensities = [
        PropensityStrategy::FullRescan,
        PropensityStrategy::DependencyGraph,
        PropensityStrategy::IncrementalTotal { refresh_every: 16 },
    ];
    // a horizon long enough for the decay chain to exhaust X almost surely
    let absorb = |counts: &[i64], propensity, selection| {
        let mut policy = ConstantPolicy::new(theta.clone());
        let options = SimulationOptions::new(200.0)
            .propensity_strategy(propensity)
            .selection_strategy(selection);
        simulator
            .simulate(counts, &mut policy, &options, 7)
            .expect("simulation failed")
    };
    for propensity in propensities {
        for selection in SELECTIONS {
            // started away from the boundary: the run must absorb with X
            // exhausted and never fire a guarded-off rule afterwards
            let run = absorb(&[40, 60], propensity, selection);
            assert_eq!(
                run.final_counts()[0],
                0,
                "{propensity}/{selection}: did not absorb"
            );
            assert!(run.final_counts()[1] >= 0);
            assert!(
                run.events() >= 40,
                "{propensity}/{selection}: too few events"
            );
            // started exactly on the boundary: all rates are exactly 0.0,
            // so nothing may ever fire
            let parked = absorb(&[0, 60], propensity, selection);
            assert_eq!(
                parked.events(),
                0,
                "{propensity}/{selection}: fired at boundary"
            );
            assert_eq!(parked.final_counts(), &[0, 60]);
        }
    }
}

#[test]
fn large_k_ring_parity_holds_at_200_rules() {
    // the acceptance-scale generated scenario: 200 mass-action rules, the
    // size where sub-linear selection pays off; parity must not degrade
    // 10 molecules per site: small enough to stay fast, large enough for
    // the uniform init to round exactly (SCALE = 300 would leave the last
    // site negative after rounding 199 sites of 1.5 up to 2)
    let scale = 2000usize;
    let model = mean_field_uncertain::lang::compile(&ring_source(200)).unwrap();
    let population = model.population_model().unwrap();
    assert_eq!(population.transitions().len(), 200);
    let simulator = Simulator::new(population, scale).unwrap();
    assert!(simulator.has_sparse_dependencies());
    let counts = model.initial_counts(scale);
    assert_eq!(counts.iter().sum::<i64>(), scale as i64);
    let theta = model.params().midpoint();
    let seed = 1;
    let reference = run_with_selection(
        &simulator,
        &counts,
        &theta,
        PropensityStrategy::FullRescan,
        SelectionStrategy::LinearScan,
        seed,
    );
    assert!(reference.events() > 0);
    for selection in SELECTIONS {
        let full = run_with_selection(
            &simulator,
            &counts,
            &theta,
            PropensityStrategy::FullRescan,
            selection,
            seed,
        );
        let graph = run_with_selection(
            &simulator,
            &counts,
            &theta,
            PropensityStrategy::DependencyGraph,
            selection,
            seed,
        );
        if selection != SelectionStrategy::CompositionRejection {
            // CR group-member ordering differs between a per-event rebuild
            // and incremental churn, so cross-propensity bit-parity only
            // binds the linear and tree selectors
            assert_same_run("ring_200", seed, &full, &graph, 0.0);
        }
        assert!(full.events() > 0 && graph.events() > 0);
        assert_eq!(full.final_counts().iter().sum::<i64>(), scale as i64);
        assert_eq!(graph.final_counts().iter().sum::<i64>(), scale as i64);
        if selection == SelectionStrategy::SumTree {
            assert_eq!(reference.events(), full.events());
            assert_eq!(reference.final_counts(), full.final_counts());
        }
    }
}

#[test]
fn dependency_graph_matches_under_vertex_parameters() {
    // The extreme parameter choices drive some scenarios toward rate
    // boundaries (dropped jumps, near-absorbing states) — the paths the
    // dependency bookkeeping must also handle identically.
    let registry = ScenarioRegistry::with_builtins();
    for scenario in registry.iter() {
        let model = scenario.compile().expect("scenario compiles");
        let population = model.population_model().expect("population backend");
        let simulator = Simulator::new(population, SCALE).expect("simulator");
        let counts = model.initial_counts(SCALE);
        for vertex in model.params().vertices() {
            let reference = run(
                &simulator,
                &counts,
                &vertex,
                PropensityStrategy::FullRescan,
                5,
            );
            let graph = run(
                &simulator,
                &counts,
                &vertex,
                PropensityStrategy::DependencyGraph,
                5,
            );
            assert_same_run(scenario.name(), 5, &reference, &graph, 0.0);
        }
    }
}
