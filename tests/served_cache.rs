//! The `mfu serve` artifact cache must be invisible: a cached answer has
//! to be bit-identical to the cold computation it replaced, for every
//! registry scenario and both bounding methods. These tests sweep the
//! registry through an in-process [`QueryService`] and compare, bit for
//! bit,
//!
//! * the hot (cache-hit) artifact against a cold recomputation on a
//!   *fresh* service — which simultaneously proves cold determinism,
//! * the responses a crowd of concurrent clients receive for the same
//!   query racing a single shared service.
//!
//! The cache-internal properties (LRU determinism, content-hash dedup,
//! eviction counting) live in `crates/serve`; this is the end-to-end
//! half over the real scenario registry.

use mean_field_uncertain::core::artifact::{BoundArtifact, BoundMethod};
use mean_field_uncertain::core::hull::HullOptions;
use mean_field_uncertain::core::pontryagin::PontryaginOptions;
use mean_field_uncertain::lang::scenarios::ScenarioRegistry;
use mean_field_uncertain::serve::{BoundRequest, QueryService, ServiceOptions};

/// The hull's rectangle-point enumeration is exponential in the dimension,
/// so the sweep keeps to the models both methods can bound in test time
/// (same cap as `tests/batch_invariance.rs`).
const MAX_DIM: usize = 6;

/// Fast-but-real analysis options: coarse enough for a full registry
/// sweep, fine enough that every computation exercises the real solvers.
fn fast_options() -> ServiceOptions {
    ServiceOptions {
        hull: HullOptions {
            step: 1e-2,
            time_intervals: 10,
            ..Default::default()
        },
        pontryagin: PontryaginOptions {
            grid_intervals: 40,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn assert_artifacts_bit_identical(a: &BoundArtifact, b: &BoundArtifact, what: &str) {
    assert_eq!(a.model, b.model, "{what}: model name");
    assert_eq!(a.model_hash, b.model_hash, "{what}: model hash");
    assert_eq!(a.method, b.method, "{what}: method");
    assert_eq!(a.horizon.to_bits(), b.horizon.to_bits(), "{what}: horizon");
    assert_eq!(a.species, b.species, "{what}: species");
    assert_eq!(a.truncated, b.truncated, "{what}: truncation flag");
    assert_eq!(a.param_box.len(), b.param_box.len(), "{what}: box size");
    for (ra, rb) in a.param_box.iter().zip(&b.param_box) {
        assert_eq!(ra.name, rb.name, "{what}: box param name");
        assert_eq!(ra.lo.to_bits(), rb.lo.to_bits(), "{what}: `{}` lo", ra.name);
        assert_eq!(ra.hi.to_bits(), rb.hi.to_bits(), "{what}: `{}` hi", ra.name);
    }
    assert_eq!(a.lower.len(), b.lower.len(), "{what}: lower length");
    for (i, (va, vb)) in a.lower.iter().zip(&b.lower).enumerate() {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{what}: lower bound differs at coordinate {i}: {va} vs {vb}"
        );
    }
    assert_eq!(a.upper.len(), b.upper.len(), "{what}: upper length");
    for (i, (va, vb)) in a.upper.iter().zip(&b.upper).enumerate() {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{what}: upper bound differs at coordinate {i}: {va} vs {vb}"
        );
    }
}

#[test]
fn cache_hits_are_bit_identical_to_cold_recomputation_across_the_registry() {
    let registry = ScenarioRegistry::with_builtins();
    let mut checked = 0usize;
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        if model.dim() > MAX_DIM {
            continue;
        }
        for method in [BoundMethod::Hull, BoundMethod::Pontryagin] {
            let request = BoundRequest {
                model: Some(scenario.name().to_string()),
                source: None,
                method,
                horizon: Some(scenario.horizon().min(1.0)),
                box_overrides: Vec::new(),
            };
            let what = format!("{} / {}", scenario.name(), method.name());

            let warm = QueryService::new(fast_options());
            let cold = warm.bound(&request).unwrap_or_else(|e| {
                panic!("{what}: cold query failed: {e}");
            });
            assert!(!cold.cache_hit, "{what}: fresh service reported a hit");
            let hot = warm.bound(&request).expect("hot query failed");
            assert!(hot.cache_hit, "{what}: replayed query missed the cache");
            // a hit shares the cached artifact outright…
            assert!(
                std::sync::Arc::ptr_eq(&cold.artifact, &hot.artifact),
                "{what}: hit did not return the cached artifact"
            );

            // …and that artifact matches an independent cold run bit for
            // bit, so caching can never change an answer — and the cold
            // computation itself is deterministic.
            let fresh = QueryService::new(fast_options());
            let recomputed = fresh.bound(&request).expect("recomputation failed");
            assert!(!recomputed.cache_hit, "{what}: fresh service hit");
            assert_artifacts_bit_identical(&hot.artifact, &recomputed.artifact, &what);
        }
        checked += 1;
    }
    assert!(checked >= 3, "only {checked} scenarios fit the sweep");
}

#[test]
fn concurrent_clients_racing_one_service_get_identical_answers() {
    // Eight clients fire the same cold query at one shared service. The
    // compute-outside-the-lock design may let several threads compute
    // redundantly, but every response must carry bit-identical bounds and
    // at least one response must be served from the cache once it warms.
    let service = QueryService::new(fast_options());
    let request = BoundRequest {
        model: Some("sir".to_string()),
        source: None,
        method: BoundMethod::Hull,
        horizon: Some(1.0),
        box_overrides: Vec::new(),
    };
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let first = service.bound(&request).expect("racing query failed");
                    // a second round per client is guaranteed warm
                    let second = service.bound(&request).expect("warm query failed");
                    (first, second)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let reference = &outcomes[0].0.artifact;
    let mut hits = 0usize;
    for (i, (first, second)) in outcomes.iter().enumerate() {
        assert_artifacts_bit_identical(reference, &first.artifact, &format!("client {i} round 1"));
        assert_artifacts_bit_identical(reference, &second.artifact, &format!("client {i} round 2"));
        assert!(second.cache_hit, "client {i}: warm round missed the cache");
        hits += usize::from(first.cache_hit) + 1;
    }
    assert!(hits >= 8, "the cache never warmed across 16 queries");
}
