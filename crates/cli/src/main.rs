//! `mfu` — command-line front-end for the `mfu-lang` model DSL.
//!
//! Runs models without writing any Rust:
//!
//! ```text
//! mfu list-scenarios                 # what the registry ships
//! mfu check model.mfu                # compile + per-rule lowering report
//! mfu run model.mfu --bound I@3      # Pontryagin bounds on a coordinate
//! mfu run gps --simulate 2000        # registry scenario + one SSA run
//! mfu serve --addr 127.0.0.1:7464    # long-running cached query service
//! mfu query sir --method hull        # one query against a running server
//! ```
//!
//! A target is a `.mfu` file (or any existing path) or the name of a
//! built-in scenario from [`mfu_lang::scenarios::ScenarioRegistry`].
//! Diagnostics from the compiler are printed verbatim, caret and all, and
//! the exit code is `0` on success, `1` on model/analysis errors and `2`
//! on usage errors.

use std::fmt::Write as _;
use std::io::BufWriter;
use std::path::Path;
use std::process::ExitCode;

use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mfu_guard::RunBudget;
use mfu_lang::vm::RateProgram;
use mfu_lang::{CompiledModel, ScenarioRegistry};
use mfu_obs::{Metrics, Obs, Timer, Tracer};
use mfu_sim::gillespie::{PropensityStrategy, SimulationAlgorithm, SimulationOptions, Simulator};
use mfu_sim::policy::ConstantPolicy;
use mfu_sim::selection::SelectionStrategy;
use mfu_sim::tauleap::TauLeapOptions;

const USAGE: &str = "\
mfu — imprecise population models from the command line

USAGE:
    mfu list-scenarios
    mfu check <model.mfu | scenario>
    mfu run   <model.mfu | scenario> [options]
    mfu serve [--addr <host:port>] [--cache-cap <n>]
    mfu query [<model.mfu | scenario>] [query options]

SERVE OPTIONS:
    --addr <host:port>       listen address (default 127.0.0.1:7464; port 0
                             binds an ephemeral port, echoed on stdout)
    --cache-cap <n>          bound-artifact cache capacity (default 64;
                             least-recently-used eviction past it)

QUERY OPTIONS:
    --addr <host:port>       server address (default 127.0.0.1:7464)
    --method <m>             bounding method: hull | pontryagin
                             (default pontryagin)
    --horizon <t>            analysis horizon (default: the scenario's)
    --box <param=lo:hi>      override one parameter interval (repeatable)
    --stats                  ask for cache statistics instead of bounds
    --shutdown               ask the server to stop instead of bounds

RUN OPTIONS:
    --bound <coord>@<time>   coordinate (species name or index) and horizon
                             to bound, e.g. `I@3` or `1@2.5`
                             (default: the scenario's objective, or the
                             first species at t = 3 for files)
    --grid <n>               Pontryagin time-grid intervals (default 120)
    --single-start           disable the multi-start extremal search
    --simulate <scale>       also run one stochastic simulation at population
                             size <scale> (at least 1) under the midpoint
                             parameters; scenarios that declare a default
                             scale (e.g. sir_1e6) simulate at it when the
                             flag is omitted
    --algorithm <algo>       simulation algorithm: exact (event-by-event
                             Gillespie SSA; the default for --simulate) or
                             tau-leap[:<epsilon>] (approximate adaptive
                             τ-leaping for large populations; epsilon in
                             (0, 1), default 0.03; the default when a
                             scenario's declared scale triggers the run)
    --seed <n>               RNG seed for the simulation (default 42)
    --propensity <strategy>  propensity maintenance for --simulate:
                             full-rescan | dependency-graph |
                             incremental[:refresh] (default dependency-graph)
    --selection <strategy>   transition selection for --simulate:
                             auto | linear | tree | cr (default auto, which
                             picks by the model's transition count)
    --metrics[=<format>]     collect engine counters and stage timings and
                             report them after the run: `pretty` (the
                             default; human-readable, to stderr) or `json`
                             (one machine-readable line, printed last on
                             stdout)
    --trace <file.jsonl>     write structured run events (rule lowering,
                             simulation summaries, tau-leap adaptations,
                             Pontryagin solves) as JSON Lines to <file>
    --timeout <secs>         wall-clock budget (positive seconds, fractions
                             allowed) for the Pontryagin sweep and the
                             simulation; a run that trips it reports the
                             prefix computed so far, notes the truncation on
                             stderr and still exits 0
    --max-events <n>         event budget (at least 1) for --simulate; a
                             truncated run reports its prefix, notes the
                             truncation on stderr and still exits 0

A target that names an existing file (or ends in `.mfu`) is compiled from
disk; anything else is looked up in the scenario registry.";

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    /// `mfu list-scenarios`
    ListScenarios,
    /// `mfu check <target>`
    Check { target: String },
    /// `mfu run <target> [options]`
    Run { target: String, options: RunOptions },
    /// `mfu serve [--addr ...] [--cache-cap ...]`
    Serve { addr: String, cache_cap: usize },
    /// `mfu query [target] [query options]`
    Query { addr: String, request: QueryRequest },
}

/// What `mfu query` asks the server.
#[derive(Debug, Clone, PartialEq)]
enum QueryRequest {
    /// Bound a target: registry scenario name, or a `.mfu` file sent inline.
    Bound {
        /// Scenario name or model file.
        target: String,
        /// `hull` or `pontryagin`.
        method: String,
        /// `--horizon`.
        horizon: Option<f64>,
        /// `--box param=lo:hi`, in flag order.
        box_overrides: Vec<(String, f64, f64)>,
    },
    /// `--stats`.
    Stats,
    /// `--shutdown`.
    Shutdown,
}

/// Default address `mfu serve` listens on and `mfu query` talks to.
const DEFAULT_ADDR: &str = "127.0.0.1:7464";

/// `--metrics` reporting format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    /// No metrics collection (the default).
    Off,
    /// Human-readable report on stderr.
    Pretty,
    /// One JSON line, printed last on stdout.
    Json,
}

/// Options of `mfu run`.
#[derive(Debug, Clone, PartialEq)]
struct RunOptions {
    /// `--bound coord@time`, parsed into (coordinate spec, horizon).
    bound: Option<(String, f64)>,
    /// `--grid n`.
    grid: usize,
    /// `--single-start` clears this.
    multi_start: bool,
    /// `--simulate scale`.
    simulate: Option<usize>,
    /// `--algorithm exact|tau-leap[:eps]` (`None` until given: explicit
    /// `--simulate` runs default to exact, scenario-default-scale runs to
    /// τ-leaping).
    algorithm: Option<SimulationAlgorithm>,
    /// `--seed n`.
    seed: u64,
    /// `--propensity strategy`.
    propensity: PropensityStrategy,
    /// `--selection strategy`.
    selection: SelectionStrategy,
    /// `--metrics[=pretty|json]`.
    metrics: MetricsMode,
    /// `--trace file.jsonl`.
    trace: Option<String>,
    /// `--timeout secs`: wall-clock budget for the analysis and simulation.
    timeout: Option<f64>,
    /// `--max-events n`: event budget for the simulation.
    max_events: Option<u64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            bound: None,
            grid: 120,
            multi_start: true,
            simulate: None,
            algorithm: None,
            seed: 42,
            propensity: PropensityStrategy::DependencyGraph,
            selection: SelectionStrategy::Auto,
            metrics: MetricsMode::Off,
            trace: None,
            timeout: None,
            max_events: None,
        }
    }
}

/// Parses a `--metrics` format: bare `--metrics` means `pretty`.
fn parse_metrics_mode(spec: &str) -> Result<MetricsMode, String> {
    match spec {
        "pretty" => Ok(MetricsMode::Pretty),
        "json" => Ok(MetricsMode::Json),
        other => Err(format!("`--metrics={other}`: expected pretty or json")),
    }
}

/// Parses a `--propensity` value: `full-rescan`, `dependency-graph` or
/// `incremental[:refresh_every]` (default refresh 256).
fn parse_propensity(spec: &str) -> Result<PropensityStrategy, String> {
    match spec {
        "full-rescan" | "full" => Ok(PropensityStrategy::FullRescan),
        "dependency-graph" | "graph" => Ok(PropensityStrategy::DependencyGraph),
        "incremental" => Ok(PropensityStrategy::IncrementalTotal { refresh_every: 256 }),
        other => {
            if let Some(refresh) = other.strip_prefix("incremental:") {
                let refresh_every: usize = refresh.parse().map_err(|_| {
                    format!("`--propensity {other}`: bad refresh interval `{refresh}`")
                })?;
                if refresh_every == 0 {
                    return Err(format!(
                        "`--propensity {other}`: refresh interval must be at least 1"
                    ));
                }
                return Ok(PropensityStrategy::IncrementalTotal { refresh_every });
            }
            Err(format!(
                "`--propensity {other}`: expected full-rescan, dependency-graph \
                 or incremental[:refresh]"
            ))
        }
    }
}

/// Parses an `--algorithm` value: `exact` or `tau-leap[:<epsilon>]`
/// (`tauleap` is accepted as a spelling).
fn parse_algorithm(spec: &str) -> Result<SimulationAlgorithm, String> {
    match spec {
        "exact" => Ok(SimulationAlgorithm::Exact),
        "tau-leap" | "tauleap" => Ok(SimulationAlgorithm::TauLeap(TauLeapOptions::default())),
        other => {
            let eps = other
                .strip_prefix("tau-leap:")
                .or_else(|| other.strip_prefix("tauleap:"));
            if let Some(eps) = eps {
                let epsilon: f64 = eps
                    .parse()
                    .map_err(|_| format!("`--algorithm {other}`: bad epsilon `{eps}`"))?;
                if !(epsilon > 0.0 && epsilon < 1.0) {
                    return Err(format!("`--algorithm {other}`: epsilon must lie in (0, 1)"));
                }
                return Ok(SimulationAlgorithm::TauLeap(TauLeapOptions::new(epsilon)));
            }
            Err(format!(
                "`--algorithm {other}`: expected exact or tau-leap[:<epsilon>]"
            ))
        }
    }
}

/// Parses a `--selection` value: `auto`, `linear`, `tree` or
/// `cr`/`composition-rejection`.
fn parse_selection(spec: &str) -> Result<SelectionStrategy, String> {
    match spec {
        "auto" => Ok(SelectionStrategy::Auto),
        "linear" => Ok(SelectionStrategy::LinearScan),
        "tree" => Ok(SelectionStrategy::SumTree),
        "cr" | "composition-rejection" => Ok(SelectionStrategy::CompositionRejection),
        other => Err(format!(
            "`--selection {other}`: expected auto, linear, tree or cr"
        )),
    }
}

/// Parses the argument vector (without the program name).
fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = it.next().ok_or_else(|| USAGE.to_string())?;
    match sub.as_str() {
        "list-scenarios" => {
            if it.next().is_some() {
                return Err("`list-scenarios` takes no arguments".into());
            }
            Ok(Command::ListScenarios)
        }
        "check" => {
            let target = it
                .next()
                .ok_or("`check` needs a model file or scenario name")?
                .clone();
            if it.next().is_some() {
                return Err("`check` takes exactly one argument".into());
            }
            Ok(Command::Check { target })
        }
        "run" => {
            let target = it
                .next()
                .ok_or("`run` needs a model file or scenario name")?
                .clone();
            let mut options = RunOptions::default();
            while let Some(flag) = it.next() {
                let mut value =
                    |what: &str| it.next().ok_or(format!("`{flag}` needs {what}")).cloned();
                match flag.as_str() {
                    "--bound" => {
                        let spec = value("a <coord>@<time> argument")?;
                        let (coord, time) = spec
                            .split_once('@')
                            .ok_or(format!("`--bound {spec}`: expected <coord>@<time>"))?;
                        let time: f64 = time
                            .parse()
                            .map_err(|_| format!("`--bound {spec}`: bad time `{time}`"))?;
                        if !(time.is_finite() && time > 0.0) {
                            return Err(format!("`--bound {spec}`: horizon must be positive"));
                        }
                        options.bound = Some((coord.to_string(), time));
                    }
                    "--grid" => {
                        options.grid = value("an interval count")?
                            .parse()
                            .map_err(|e| format!("`--grid`: {e}"))?;
                        if options.grid == 0 {
                            return Err("`--grid` must be positive".into());
                        }
                    }
                    "--single-start" => options.multi_start = false,
                    "--simulate" => {
                        let scale: usize = value("a population size")?
                            .parse()
                            .map_err(|e| format!("`--simulate`: {e}"))?;
                        if scale == 0 {
                            return Err(
                                "`--simulate`: population size must be at least 1 (got 0)".into()
                            );
                        }
                        options.simulate = Some(scale);
                    }
                    "--propensity" => {
                        options.propensity = parse_propensity(&value("a strategy")?)?;
                    }
                    "--algorithm" => {
                        options.algorithm = Some(parse_algorithm(&value("an algorithm")?)?);
                    }
                    "--selection" => {
                        options.selection = parse_selection(&value("a strategy")?)?;
                    }
                    "--seed" => {
                        options.seed = value("a seed")?
                            .parse()
                            .map_err(|e| format!("`--seed`: {e}"))?;
                    }
                    "--timeout" => {
                        let spec = value("a duration in seconds")?;
                        let secs: f64 = spec
                            .parse()
                            .map_err(|_| format!("`--timeout`: bad duration `{spec}`"))?;
                        if !(secs.is_finite() && secs > 0.0) {
                            return Err(format!(
                                "`--timeout {spec}`: duration must be positive and finite"
                            ));
                        }
                        options.timeout = Some(secs);
                    }
                    "--max-events" => {
                        let spec = value("an event count")?;
                        let cap: u64 = spec
                            .parse()
                            .map_err(|_| format!("`--max-events`: bad event count `{spec}`"))?;
                        if cap == 0 {
                            return Err(
                                "`--max-events`: event count must be at least 1 (got 0)".into()
                            );
                        }
                        options.max_events = Some(cap);
                    }
                    "--metrics" => options.metrics = MetricsMode::Pretty,
                    "--trace" => {
                        let path = value("an output path for the JSONL trace")?;
                        if path.is_empty() || path.starts_with("--") {
                            return Err(format!(
                                "`--trace`: expected an output path, got `{path}`"
                            ));
                        }
                        options.trace = Some(path);
                    }
                    other => {
                        if let Some(mode) = other.strip_prefix("--metrics=") {
                            options.metrics = parse_metrics_mode(mode)?;
                        } else {
                            return Err(format!("unknown option `{other}`\n\n{USAGE}"));
                        }
                    }
                }
            }
            Ok(Command::Run { target, options })
        }
        "serve" => {
            let mut addr = DEFAULT_ADDR.to_string();
            let mut cache_cap = 64usize;
            while let Some(flag) = it.next() {
                let mut value =
                    |what: &str| it.next().ok_or(format!("`{flag}` needs {what}")).cloned();
                match flag.as_str() {
                    "--addr" => addr = value("a host:port address")?,
                    "--cache-cap" => {
                        cache_cap = value("a capacity")?
                            .parse()
                            .map_err(|e| format!("`--cache-cap`: {e}"))?;
                    }
                    other => return Err(format!("unknown option `{other}`\n\n{USAGE}")),
                }
            }
            Ok(Command::Serve { addr, cache_cap })
        }
        "query" => {
            let mut addr = DEFAULT_ADDR.to_string();
            let mut target: Option<String> = None;
            let mut method = "pontryagin".to_string();
            let mut horizon: Option<f64> = None;
            let mut box_overrides: Vec<(String, f64, f64)> = Vec::new();
            let mut stats = false;
            let mut shutdown = false;
            while let Some(arg) = it.next() {
                let mut value =
                    |what: &str| it.next().ok_or(format!("`{arg}` needs {what}")).cloned();
                match arg.as_str() {
                    "--addr" => addr = value("a host:port address")?,
                    "--method" => {
                        method = value("hull or pontryagin")?;
                        if !matches!(method.as_str(), "hull" | "pontryagin") {
                            return Err(format!(
                                "`--method {method}`: expected hull or pontryagin"
                            ));
                        }
                    }
                    "--horizon" => {
                        let spec = value("a horizon")?;
                        let t: f64 = spec
                            .parse()
                            .map_err(|_| format!("`--horizon`: bad horizon `{spec}`"))?;
                        if !(t.is_finite() && t > 0.0) {
                            return Err(format!(
                                "`--horizon {spec}`: horizon must be positive and finite"
                            ));
                        }
                        horizon = Some(t);
                    }
                    "--box" => {
                        let spec = value("a param=lo:hi override")?;
                        let (name, range) = spec
                            .split_once('=')
                            .ok_or(format!("`--box {spec}`: expected param=lo:hi"))?;
                        let (lo, hi) = range
                            .split_once(':')
                            .ok_or(format!("`--box {spec}`: expected param=lo:hi"))?;
                        let lo: f64 = lo
                            .parse()
                            .map_err(|_| format!("`--box {spec}`: bad lower bound `{lo}`"))?;
                        let hi: f64 = hi
                            .parse()
                            .map_err(|_| format!("`--box {spec}`: bad upper bound `{hi}`"))?;
                        box_overrides.push((name.to_string(), lo, hi));
                    }
                    "--stats" => stats = true,
                    "--shutdown" => shutdown = true,
                    other if other.starts_with("--") => {
                        return Err(format!("unknown option `{other}`\n\n{USAGE}"));
                    }
                    other => {
                        if target.replace(other.to_string()).is_some() {
                            return Err("`query` takes at most one target".into());
                        }
                    }
                }
            }
            let request = match (stats, shutdown, target) {
                (true, false, None) => QueryRequest::Stats,
                (false, true, None) => QueryRequest::Shutdown,
                (false, false, Some(target)) => QueryRequest::Bound {
                    target,
                    method,
                    horizon,
                    box_overrides,
                },
                (false, false, None) => {
                    return Err("`query` needs a target, `--stats` or `--shutdown`".into())
                }
                _ => {
                    return Err(
                        "`query` takes a target, `--stats` or `--shutdown` — exactly one".into(),
                    )
                }
            };
            Ok(Command::Query { addr, request })
        }
        "--help" | "-h" | "help" => Err(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// What a target resolved to.
struct LoadedModel {
    model: CompiledModel,
    /// Scenario analysis defaults, when the target came from the registry.
    defaults: Option<(f64, usize)>,
    /// Scenario-declared simulation scale (e.g. `sir_1e6`), used when
    /// `--simulate` is omitted.
    default_scale: Option<usize>,
}

/// Loads a target: an existing file (or anything ending in `.mfu`) compiles
/// from disk, everything else resolves through the scenario registry.
/// `is_file` (not `exists`) so a stray *directory* named like a scenario
/// cannot shadow the registry. Compilation reports stage timings and rule
/// lowering through `obs` when the bundle is enabled.
fn load_model(target: &str, obs: &Obs) -> Result<LoadedModel, String> {
    let path = Path::new(target);
    if path.is_file() || target.ends_with(".mfu") {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{target}`: {e}"))?;
        let model = mfu_lang::compile_observed(&source, obs).map_err(|e| e.to_string())?;
        return Ok(LoadedModel {
            model,
            defaults: None,
            default_scale: None,
        });
    }
    let registry = ScenarioRegistry::with_builtins();
    let scenario = registry.get(target).ok_or_else(|| {
        format!(
            "`{target}` is neither a file nor a known scenario \
             (registered: {})",
            registry.names().join(", ")
        )
    })?;
    let defaults = Some((scenario.horizon(), scenario.objective_coordinate()));
    let default_scale = scenario.default_scale();
    let model = mfu_lang::compile_observed(scenario.source(), obs).map_err(|e| e.to_string())?;
    Ok(LoadedModel {
        model,
        defaults,
        default_scale,
    })
}

/// One-line structural summary of a compiled model.
fn summarize(model: &CompiledModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model `{}`: {} species ({}), {} rules, {}",
        model.name(),
        model.dim(),
        model.species().join(", "),
        model.rules().len(),
        if model.is_conservative() {
            "mass-conserving"
        } else {
            "non-conservative"
        }
    );
    let params = model.params();
    let bounds: Vec<String> = params
        .names()
        .iter()
        .zip(params.lower().iter().zip(params.upper().iter()))
        .map(|(name, (lo, hi))| format!("{name} in [{lo}, {hi}]"))
        .collect();
    let _ = writeln!(out, "params: {}", bounds.join(", "));
    out
}

fn cmd_list_scenarios() -> Result<String, String> {
    let registry = ScenarioRegistry::with_builtins();
    // group related workloads: family first, then name (the registry
    // iterates by name only)
    let mut scenarios: Vec<_> = registry.iter().collect();
    scenarios.sort_by_key(|s| (s.family(), s.name()));

    let mut rows = Vec::with_capacity(scenarios.len() + 1);
    rows.push([
        "FAMILY".to_string(),
        "SCENARIO".to_string(),
        "SPECIES".to_string(),
        "RULES".to_string(),
        "SCALE".to_string(),
        "SUMMARY".to_string(),
    ]);
    for scenario in &scenarios {
        let model = scenario
            .compile()
            .map_err(|e| format!("scenario `{}` failed to compile:\n{e}", scenario.name()))?;
        rows.push([
            scenario.family().to_string(),
            scenario.name().to_string(),
            model.species().len().to_string(),
            model.rules().len().to_string(),
            scenario
                .default_scale()
                .map_or_else(|| "-".to_string(), |n| n.to_string()),
            format!(
                "{} (horizon {}, objective x[{}])",
                scenario.summary(),
                scenario.horizon(),
                scenario.objective_coordinate(),
            ),
        ]);
    }

    let mut widths = [0usize; 5];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        let [family, name, species, rules, scale, summary] = row;
        let _ = writeln!(
            out,
            "{family:<fw$}  {name:<nw$}  {species:>sw$}  {rules:>rw$}  {scale:>cw$}  {summary}",
            fw = widths[0],
            nw = widths[1],
            sw = widths[2],
            rw = widths[3],
            cw = widths[4],
        );
    }
    Ok(out)
}

fn cmd_check(target: &str) -> Result<String, String> {
    let loaded = load_model(target, &Obs::none())?;
    let model = loaded.model;
    let mut out = summarize(&model);
    let name_width = model
        .rules()
        .iter()
        .map(|r| r.name.len())
        .max()
        .unwrap_or(0);
    // Probe every rate at the initial state under the midpoint parameters:
    // the same numeric-health contract (finite, non-negative) the simulation
    // engines enforce at the rate-program boundary during a run.
    let x0 = model.initial_state();
    let theta = model.params().midpoint();
    let mut unhealthy = Vec::new();
    for rule in model.rules() {
        let program = RateProgram::compile(&rule.rate);
        let shape = if program.is_fast_path() {
            "fast path"
        } else {
            "bytecode"
        };
        let health = match program.probe_health(&x0, &theta) {
            None => String::new(),
            Some(value) => {
                unhealthy.push(format!("rule `{}` evaluates to {value}", rule.name));
                format!("  UNHEALTHY ({value})")
            }
        };
        let _ = writeln!(
            out,
            "  rule {:name_width$}  {:9}  reads {:?}{health}",
            rule.name,
            shape,
            program.species_support(),
        );
    }
    if !unhealthy.is_empty() {
        return Err(format!(
            "{out}unhealthy rates at the initial state under midpoint parameters: {}",
            unhealthy.join("; ")
        ));
    }
    let _ = writeln!(out, "ok");
    Ok(out)
}

/// Resolves a `--bound` coordinate spec (species name or index) against the
/// model's species list.
fn resolve_coordinate(model: &CompiledModel, spec: &str) -> Result<usize, String> {
    if let Some(index) = model.species().iter().position(|s| s == spec) {
        return Ok(index);
    }
    if let Ok(index) = spec.parse::<usize>() {
        if index < model.dim() {
            return Ok(index);
        }
        return Err(format!(
            "coordinate {index} out of range for a {}-species model",
            model.dim()
        ));
    }
    Err(format!(
        "`{spec}` is neither a species of `{}` ({}) nor a coordinate index",
        model.name(),
        model.species().join(", ")
    ))
}

/// Builds the observability bundle requested by `--metrics`/`--trace`.
fn build_obs(options: &RunOptions) -> Result<Obs, String> {
    let metrics = if options.metrics == MetricsMode::Off && options.trace.is_none() {
        Metrics::disabled()
    } else {
        Metrics::enabled()
    };
    let tracer = match &options.trace {
        None => Tracer::disabled(),
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("`--trace`: cannot create `{path}`: {e}"))?;
            Tracer::to_writer(Box::new(BufWriter::new(file)))
        }
    };
    Ok(Obs { metrics, tracer })
}

fn cmd_run(target: &str, options: &RunOptions) -> Result<String, String> {
    let obs = build_obs(options)?;
    let loaded = load_model(target, &obs)?;
    let default_scale = loaded.default_scale;
    let model = loaded.model;
    let mut out = summarize(&model);
    obs.metrics.set_label("target", target);
    obs.metrics.set_label("model", model.name());

    let (coordinate, horizon) = match &options.bound {
        Some((spec, time)) => (resolve_coordinate(&model, spec)?, *time),
        None => match loaded.defaults {
            Some((horizon, objective)) => (objective, horizon),
            None => (0, 3.0),
        },
    };

    // conservative models analyse in reduced coordinates, where the last
    // declared species is eliminated; bounding that species needs the
    // full-dimensional drift
    let reduced_dim = model.reduced_initial_state().dim();
    let (drift, x0) = if coordinate < reduced_dim {
        (model.reduced_drift(), model.reduced_initial_state())
    } else {
        (model.drift(), model.initial_state())
    };
    let species = &model.species()[coordinate.min(model.dim() - 1)];

    // `--timeout`/`--max-events` map onto one RunBudget; the Pontryagin
    // sweep only honours the wall clock (it fires no events).
    let mut budget = RunBudget::unlimited();
    if let Some(secs) = options.timeout {
        budget = budget.wall_clock(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(cap) = options.max_events {
        budget = budget.max_events(cap);
    }

    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: options.grid,
        multi_start: options.multi_start,
        budget: RunBudget {
            wall_clock: budget.wall_clock,
            ..RunBudget::unlimited()
        },
        ..Default::default()
    })
    .with_obs(obs.clone());
    let (lo, hi) = obs
        .metrics
        .time(Timer::CoreBound, || {
            solver.coordinate_extremes(&drift, &x0, horizon, coordinate)
        })
        .map_err(|e| format!("Pontryagin bound failed: {e}"))?;
    let _ = writeln!(
        out,
        "imprecise bounds: {species}({horizon}) in [{lo:.6}, {hi:.6}]"
    );

    // `--simulate` wins; a scenario-declared default scale (the
    // `sir_1e6`-style large-N scenarios) kicks in when the flag is absent.
    // A run triggered by the scenario's own scale defaults to τ-leaping —
    // those scales exist because the exact SSA is wall-clock prohibitive
    // there — while explicit `--simulate` keeps the exact default; an
    // explicit `--algorithm` always wins.
    if let Some(scale) = options.simulate.or(default_scale) {
        let algorithm = options.algorithm.unwrap_or(if options.simulate.is_some() {
            SimulationAlgorithm::Exact
        } else {
            SimulationAlgorithm::TauLeap(TauLeapOptions::default())
        });
        let population = model.population_model().map_err(|e| e.to_string())?;
        let simulator = Simulator::new(population, scale)
            .map_err(|e| e.to_string())?
            .with_obs(obs.clone());
        let mut policy = ConstantPolicy::new(model.params().midpoint());
        let sim_options = SimulationOptions::new(horizon)
            .propensity_strategy(options.propensity)
            .selection_strategy(options.selection)
            .algorithm(algorithm)
            .budget(budget);
        let run = obs
            .metrics
            .time(Timer::SimSimulate, || {
                simulator.simulate(
                    &model.initial_counts(scale),
                    &mut policy,
                    &sim_options,
                    options.seed,
                )
            })
            .map_err(|e| e.to_string())?;
        // A tripped budget is not an error: the prefix is reported as usual,
        // the truncation is echoed on stderr, and the exit code stays 0.
        if let mfu_guard::Outcome::Truncated { reason, reached_t } = run.outcome() {
            eprintln!(
                "warning: simulation truncated ({reason}) at t = {reached_t:.6}; \
                 reporting the prefix"
            );
        }
        let end = run.trajectory().last_state();
        let engine = match algorithm {
            SimulationAlgorithm::Exact => "Gillespie",
            SimulationAlgorithm::TauLeap(_) => "tau-leap",
        };
        // The run reports what `Auto` actually resolved to, so the echo
        // names the concrete engine configuration, not the request.
        let resolved_selection = run.resolved_selection();
        let resolved_propensity = run.resolved_propensity();
        obs.metrics.set_label("algorithm", engine);
        obs.metrics
            .set_label("selection", resolved_selection.to_string());
        obs.metrics
            .set_label("propensity", resolved_propensity.to_string());
        let _ = writeln!(
            out,
            "one N = {scale} {engine} run at midpoint parameters \
             (seed {}, algorithm {}, propensity {}, selection {}): {} events, \
             {species}({horizon}) = {:.6}",
            options.seed,
            algorithm,
            resolved_propensity,
            resolved_selection,
            run.events(),
            end[coordinate],
        );
    }

    obs.tracer.flush();
    match options.metrics {
        MetricsMode::Off => {}
        MetricsMode::Pretty => {
            if let Some(snapshot) = obs.metrics.snapshot() {
                eprint!("{}", snapshot.render_pretty());
            }
        }
        MetricsMode::Json => {
            if let Some(snapshot) = obs.metrics.snapshot() {
                let _ = writeln!(out, "{}", snapshot.render_json());
            }
        }
    }
    Ok(out)
}

/// Starts the query service and blocks until a client sends `shutdown`.
///
/// The bound address is echoed (and flushed) *before* the accept loop so
/// scripts can start the server in the background and scrape the port.
fn cmd_serve(addr: &str, cache_cap: usize) -> Result<String, String> {
    use std::io::Write as _;
    let options = mfu_serve::ServiceOptions {
        artifact_cap: cache_cap,
        ..Default::default()
    };
    let service = mfu_serve::QueryService::new(options);
    let server = mfu_serve::Server::bind(addr, service)
        .map_err(|e| format!("`mfu serve`: cannot bind `{addr}`: {e}"))?;
    let bound = server
        .local_addr()
        .map_err(|e| format!("`mfu serve`: {e}"))?;
    println!("listening on {bound}");
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| format!("`mfu serve`: {e}"))?;
    Ok("server stopped\n".to_string())
}

/// Sends one request line to a running server and prints the response.
fn cmd_query(addr: &str, request: &QueryRequest) -> Result<String, String> {
    use mfu_core::json::Json;
    let line = match request {
        QueryRequest::Stats => Json::object([("op", Json::string("stats"))]).render(),
        QueryRequest::Shutdown => Json::object([("op", Json::string("shutdown"))]).render(),
        QueryRequest::Bound {
            target,
            method,
            horizon,
            box_overrides,
        } => {
            let mut entries = vec![("op", Json::string("bound"))];
            // A file target ships its source inline; anything else is a
            // registry scenario name resolved server-side.
            let path = Path::new(target);
            let source;
            if path.is_file() || target.ends_with(".mfu") {
                source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read `{target}`: {e}"))?;
                entries.push(("source", Json::string(&*source)));
            } else {
                entries.push(("model", Json::string(&**target)));
            }
            entries.push(("method", Json::string(&**method)));
            if let Some(t) = horizon {
                entries.push(("horizon", Json::Number(*t)));
            }
            if !box_overrides.is_empty() {
                entries.push((
                    "box",
                    Json::object(
                        box_overrides
                            .iter()
                            .map(|(name, lo, hi)| (name.clone(), Json::numbers([*lo, *hi])))
                            .collect::<Vec<_>>(),
                    ),
                ));
            }
            Json::object(entries.into_iter().map(|(k, v)| (k.to_string(), v))).render()
        }
    };
    let response = mfu_serve::query_line(addr, &line)
        .map_err(|e| format!("`mfu query`: cannot reach `{addr}`: {e}"))?;
    let ok = mfu_core::json::parse(&response)
        .ok()
        .and_then(|json| json.get("ok").and_then(Json::as_bool))
        .unwrap_or(false);
    if !ok {
        return Err(format!("server error: {response}"));
    }
    Ok(format!("{response}\n"))
}

fn dispatch(command: &Command) -> Result<String, String> {
    match command {
        Command::ListScenarios => cmd_list_scenarios(),
        Command::Check { target } => cmd_check(target),
        Command::Run { target, options } => cmd_run(target, options),
        Command::Serve { addr, cache_cap } => cmd_serve(addr, *cache_cap),
        Command::Query { addr, request } => cmd_query(addr, request),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match dispatch(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommands() {
        assert_eq!(
            parse_args(&args("list-scenarios")).unwrap(),
            Command::ListScenarios
        );
        assert_eq!(
            parse_args(&args("check model.mfu")).unwrap(),
            Command::Check {
                target: "model.mfu".into()
            }
        );
        let Command::Run { target, options } = parse_args(&args(
            "run gps --bound Q1@2.5 --grid 40 --simulate 500 --seed 7 --single-start \
             --propensity incremental:64 --selection tree",
        ))
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(target, "gps");
        assert_eq!(options.bound, Some(("Q1".into(), 2.5)));
        assert_eq!(options.grid, 40);
        assert_eq!(options.simulate, Some(500));
        assert_eq!(options.seed, 7);
        assert!(!options.multi_start);
        assert_eq!(
            options.propensity,
            PropensityStrategy::IncrementalTotal { refresh_every: 64 }
        );
        assert_eq!(options.selection, SelectionStrategy::SumTree);
    }

    #[test]
    fn parses_serve_and_query() {
        assert_eq!(
            parse_args(&args("serve")).unwrap(),
            Command::Serve {
                addr: DEFAULT_ADDR.into(),
                cache_cap: 64
            }
        );
        assert_eq!(
            parse_args(&args("serve --addr 127.0.0.1:0 --cache-cap 8")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                cache_cap: 8
            }
        );
        assert_eq!(
            parse_args(&args("query --stats")).unwrap(),
            Command::Query {
                addr: DEFAULT_ADDR.into(),
                request: QueryRequest::Stats
            }
        );
        assert_eq!(
            parse_args(&args("query --addr 127.0.0.1:9999 --shutdown")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:9999".into(),
                request: QueryRequest::Shutdown
            }
        );
        assert_eq!(
            parse_args(&args(
                "query sir --method hull --horizon 1.5 --box contact=2:5"
            ))
            .unwrap(),
            Command::Query {
                addr: DEFAULT_ADDR.into(),
                request: QueryRequest::Bound {
                    target: "sir".into(),
                    method: "hull".into(),
                    horizon: Some(1.5),
                    box_overrides: vec![("contact".into(), 2.0, 5.0)],
                }
            }
        );
    }

    #[test]
    fn rejects_bad_serve_and_query_usage() {
        for line in [
            "serve --cache-cap many",
            "serve --unknown",
            "query",
            "query --stats --shutdown",
            "query sir --stats",
            "query sir --method simplex",
            "query sir --horizon -1",
            "query sir --box contact=2",
            "query sir extra",
        ] {
            assert!(
                parse_args(&args(line)).is_err(),
                "`{line}` should not parse"
            );
        }
    }

    #[test]
    fn parses_strategy_flags() {
        assert_eq!(
            parse_propensity("full-rescan").unwrap(),
            PropensityStrategy::FullRescan
        );
        assert_eq!(
            parse_propensity("dependency-graph").unwrap(),
            PropensityStrategy::DependencyGraph
        );
        assert_eq!(
            parse_propensity("incremental").unwrap(),
            PropensityStrategy::IncrementalTotal { refresh_every: 256 }
        );
        assert!(parse_propensity("incremental:0").is_err());
        assert!(parse_propensity("incremental:x").is_err());
        assert!(parse_propensity("sideways").is_err());
        assert_eq!(parse_selection("auto").unwrap(), SelectionStrategy::Auto);
        assert_eq!(
            parse_selection("linear").unwrap(),
            SelectionStrategy::LinearScan
        );
        assert_eq!(parse_selection("tree").unwrap(), SelectionStrategy::SumTree);
        assert_eq!(
            parse_selection("cr").unwrap(),
            SelectionStrategy::CompositionRejection
        );
        assert!(parse_selection("roulette").is_err());
    }

    #[test]
    fn parses_algorithm_flags() {
        assert_eq!(
            parse_algorithm("exact").unwrap(),
            SimulationAlgorithm::Exact
        );
        assert_eq!(
            parse_algorithm("tau-leap").unwrap(),
            SimulationAlgorithm::TauLeap(TauLeapOptions::default())
        );
        assert_eq!(
            parse_algorithm("tau-leap:0.1").unwrap(),
            SimulationAlgorithm::TauLeap(TauLeapOptions::new(0.1))
        );
        assert_eq!(
            parse_algorithm("tauleap:0.05").unwrap(),
            SimulationAlgorithm::TauLeap(TauLeapOptions::new(0.05))
        );
        // every rejection names the flag so the error is actionable
        for bad in [
            "warp",
            "tau-leap:0",
            "tau-leap:1",
            "tau-leap:-0.2",
            "tau-leap:x",
        ] {
            let err = parse_algorithm(bad).unwrap_err();
            assert!(err.contains("--algorithm"), "`{bad}`: {err}");
        }
        let Command::Run { options, .. } =
            parse_args(&args("run sir --simulate 100 --algorithm tau-leap:0.2")).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(
            options.algorithm,
            Some(SimulationAlgorithm::TauLeap(TauLeapOptions::new(0.2)))
        );
        assert_eq!(
            parse_args(&args("run sir")).map(|command| match command {
                Command::Run { options, .. } => options.algorithm,
                _ => unreachable!(),
            }),
            Ok(None)
        );
    }

    #[test]
    fn budget_flags_parse_and_reject_bad_values_naming_the_flag() {
        let Command::Run { options, .. } =
            parse_args(&args("run sir --timeout 1.5 --max-events 5000")).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(options.timeout, Some(1.5));
        assert_eq!(options.max_events, Some(5000));

        for bad in [
            "--timeout 0",
            "--timeout -1",
            "--timeout nan",
            "--timeout x",
        ] {
            let err = parse_args(&args(&format!("run sir {bad}"))).unwrap_err();
            assert!(err.contains("--timeout"), "`{bad}`: {err}");
        }
        for bad in ["--max-events 0", "--max-events -3", "--max-events x"] {
            let err = parse_args(&args(&format!("run sir {bad}"))).unwrap_err();
            assert!(err.contains("--max-events"), "`{bad}`: {err}");
        }
        // missing values also name the flag
        assert!(parse_args(&args("run sir --timeout"))
            .unwrap_err()
            .contains("--timeout"));
        assert!(parse_args(&args("run sir --max-events"))
            .unwrap_err()
            .contains("--max-events"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("run")).is_err());
        assert!(parse_args(&args("run sir --bound I")).is_err());
        assert!(parse_args(&args("run sir --bound I@abc")).is_err());
        assert!(parse_args(&args("run sir --bound I@-1")).is_err());
        assert!(parse_args(&args("run sir --grid 0")).is_err());
        assert!(parse_args(&args("run sir --what")).is_err());
        assert!(parse_args(&args("run sir --propensity sideways")).is_err());
        assert!(parse_args(&args("run sir --selection roulette")).is_err());
        assert!(parse_args(&args("run sir --algorithm warp")).is_err());
        assert!(parse_args(&args("check")).is_err());
        assert!(parse_args(&args("check a b")).is_err());
    }

    #[test]
    fn parses_metrics_and_trace_flags() {
        let Command::Run { options, .. } = parse_args(&args("run sir")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(options.metrics, MetricsMode::Off);
        assert_eq!(options.trace, None);

        let Command::Run { options, .. } = parse_args(&args("run sir --metrics")).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(options.metrics, MetricsMode::Pretty);

        let Command::Run { options, .. } =
            parse_args(&args("run sir --metrics=json --trace out.jsonl")).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(options.metrics, MetricsMode::Json);
        assert_eq!(options.trace.as_deref(), Some("out.jsonl"));

        assert_eq!(parse_metrics_mode("pretty").unwrap(), MetricsMode::Pretty);
        assert_eq!(parse_metrics_mode("json").unwrap(), MetricsMode::Json);
    }

    #[test]
    fn metrics_and_trace_errors_name_the_flag() {
        // usage errors (exit 2) must name the offending flag
        let err = parse_args(&args("run sir --metrics=csv")).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
        assert!(err.contains("pretty or json"), "{err}");

        let err = parse_args(&args("run sir --trace")).unwrap_err();
        assert!(err.contains("--trace"), "{err}");

        // `--trace --metrics` swallows no flag: the value is rejected
        let err = parse_args(&args("run sir --trace --metrics")).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
    }

    #[test]
    fn simulate_zero_is_a_parse_time_usage_error_naming_the_flag() {
        // regression: `--simulate 0` used to pass parsing and only fail
        // deep inside Simulator::new with the analysis exit code 1
        let err = parse_args(&args("run sir --simulate 0")).unwrap_err();
        assert!(err.contains("--simulate"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn unknown_targets_list_the_registry() {
        let err = load_model("no_such_scenario", &Obs::none()).err().unwrap();
        assert!(err.contains("sir"), "{err}");
        assert!(err.contains("gps"), "{err}");
    }

    #[test]
    fn coordinates_resolve_by_name_and_index() {
        let model = load_model("sir", &Obs::none()).unwrap().model;
        assert_eq!(resolve_coordinate(&model, "I").unwrap(), 1);
        assert_eq!(resolve_coordinate(&model, "2").unwrap(), 2);
        assert!(resolve_coordinate(&model, "9").is_err());
        assert!(resolve_coordinate(&model, "Z").is_err());
    }

    #[test]
    fn check_reports_lowering_shapes() {
        let report = cmd_check("gps").unwrap();
        assert!(report.contains("model `gps`"), "{report}");
        assert!(report.contains("non-conservative"), "{report}");
        assert!(report.contains("serve1"), "{report}");
        assert!(report.contains("bytecode"), "{report}");
        assert!(report.contains("reads [1, 3]"), "{report}");
        assert!(report.ends_with("ok\n"), "{report}");

        let report = cmd_check("sir").unwrap();
        assert!(report.contains("mass-conserving"), "{report}");
        assert!(report.contains("fast path"), "{report}");
    }

    #[test]
    fn list_scenarios_names_everything() {
        let listing = cmd_list_scenarios().unwrap();
        for name in [
            "sir",
            "sis",
            "seir",
            "botnet",
            "load_balancer",
            "gps",
            "pod_choices_d2",
            "csma",
            "ttl_cache",
            "gossip",
            "bike_city_4",
        ] {
            assert!(listing.contains(name), "missing `{name}` in {listing}");
        }
    }

    #[test]
    fn list_scenarios_is_grouped_by_family_with_shape_columns() {
        let listing = cmd_list_scenarios().unwrap();
        let mut lines = listing.lines();
        let header = lines.next().unwrap();
        for column in ["FAMILY", "SCENARIO", "SPECIES", "RULES", "SCALE", "SUMMARY"] {
            assert!(header.contains(column), "missing `{column}` in {header}");
        }
        // rows are sorted by (family, name)
        let keys: Vec<(String, String)> = lines
            .map(|l| {
                let mut cells = l.split_whitespace();
                (
                    cells.next().unwrap().to_string(),
                    cells.next().unwrap().to_string(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "rows are not family-then-name sorted");
        // spot-check one row's shape columns: gossip is 3 species, 3 rules,
        // default scale 10000
        let gossip = listing.lines().find(|l| l.contains(" gossip ")).unwrap();
        let cells: Vec<&str> = gossip.split_whitespace().collect();
        assert_eq!(&cells[..5], &["broadcast", "gossip", "3", "3", "10000"]);
        // scale-free scenarios print a dash
        let seir = listing.lines().find(|l| l.contains(" seir ")).unwrap();
        assert_eq!(seir.split_whitespace().nth(4), Some("-"));
    }
}
