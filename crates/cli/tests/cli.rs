//! End-to-end tests of the `mfu` binary: the acceptance criterion of the
//! CLI is that at least the `sir` and `gps` scenarios run from the command
//! line, plus `check` and `list-scenarios` round trips and the exit-code
//! contract (0 ok / 1 model or analysis error / 2 usage error).

use std::process::{Command, Output};

fn mfu(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mfu"))
        .args(args)
        .output()
        .expect("mfu binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn run_sir_bounds_the_infected_fraction() {
    // small grid keeps the test quick; the bound itself is checked in the
    // analysis suites — here we check the CLI plumbing end to end
    let out = mfu(&["run", "sir", "--bound", "I@1", "--grid", "40"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("model `sir`"), "{text}");
    assert!(text.contains("imprecise bounds: I(1)"), "{text}");
}

#[test]
fn run_gps_bounds_and_simulates_the_guarded_model() {
    let out = mfu(&[
        "run",
        "gps",
        "--bound",
        "Q1@1",
        "--grid",
        "40",
        "--simulate",
        "400",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("model `gps`"), "{text}");
    assert!(text.contains("imprecise bounds: Q1(1)"), "{text}");
    assert!(text.contains("Gillespie run"), "{text}");
    assert!(text.contains("events"), "{text}");
}

#[test]
fn check_compiles_a_model_file_from_disk() {
    let dir = std::env::temp_dir().join("mfu-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("decay.mfu");
    std::fs::write(
        &path,
        "model decay;\nspecies X;\nparam r in [0.5, 2];\n\
         rule die: X -> 0 @ when X > 0 { r * X } else { 0 };\ninit X = 1;\n",
    )
    .unwrap();
    let out = mfu(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("model `decay`"), "{text}");
    assert!(text.contains("ok"), "{text}");
}

#[test]
fn check_prints_caret_diagnostics_and_fails() {
    let dir = std::env::temp_dir().join("mfu-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.mfu");
    std::fs::write(
        &path,
        "model broken;\nspecies X;\nparam r in [0.5, 2];\n\
         rule die: X -> 0 @ oops * X;\ninit X = 1;\n",
    )
    .unwrap();
    let out = mfu(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = stderr(&out);
    assert!(text.contains("unknown identifier `oops`"), "{text}");
    assert!(text.contains('^'), "{text}");
}

#[test]
fn list_scenarios_prints_the_registry() {
    let out = mfu(&["list-scenarios"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in [
        "sir",
        "gps",
        "gps_poisson",
        "botnet",
        "load_balancer",
        "pod_choices_d2",
        "pod_choices_d3",
        "csma",
        "ttl_cache",
        "gossip",
        "bike_city_4",
    ] {
        assert!(text.contains(name), "missing `{name}`:\n{text}");
    }
}

#[test]
fn list_scenarios_is_family_sorted_with_scale_column() {
    let out = mfu(&["list-scenarios"]);
    assert!(out.status.success());
    let text = stdout(&out);
    let mut lines = text.lines();
    let header = lines.next().expect("a header line");
    for column in ["FAMILY", "SCENARIO", "SPECIES", "RULES", "SCALE"] {
        assert!(header.contains(column), "missing `{column}`:\n{text}");
    }
    // family-then-name sorted: the epidemic block precedes queueing, and
    // names are sorted inside a family
    let families: Vec<&str> = lines
        .clone()
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    let mut sorted = families.clone();
    sorted.sort();
    assert_eq!(families, sorted, "families out of order:\n{text}");
    // the fleet rows carry shape and scale columns
    let csma = lines.find(|l| l.contains(" csma ")).expect("csma row");
    let cells: Vec<&str> = csma.split_whitespace().collect();
    assert_eq!(&cells[..5], &["wireless", "csma", "3", "4", "500"]);
}

#[test]
fn usage_errors_exit_with_2() {
    assert_eq!(mfu(&[]).status.code(), Some(2));
    assert_eq!(mfu(&["run"]).status.code(), Some(2));
    assert_eq!(
        mfu(&["run", "sir", "--bound", "nope"]).status.code(),
        Some(2)
    );
    assert_eq!(
        mfu(&["run", "sir", "--selection", "roulette"])
            .status
            .code(),
        Some(2)
    );
    let out = mfu(&["run", "no_such_model"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("neither a file nor a known scenario"));
}

#[test]
fn simulate_zero_is_rejected_at_parse_time_with_exit_2() {
    // regression: used to exit 1 from deep inside Simulator::new
    let out = mfu(&["run", "sir", "--simulate", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let text = stderr(&out);
    assert!(text.contains("--simulate"), "{text}");
    assert!(text.contains("at least 1"), "{text}");
}

#[test]
fn algorithm_parse_errors_exit_2_naming_the_flag() {
    for bad in ["warp", "tau-leap:0", "tau-leap:2", "tau-leap:x"] {
        let out = mfu(&["run", "sir", "--algorithm", bad, "--simulate", "50"]);
        assert_eq!(out.status.code(), Some(2), "`{bad}` accepted");
        let text = stderr(&out);
        assert!(text.contains("--algorithm"), "`{bad}`: {text}");
    }
    // missing value is also a usage error naming the flag
    let out = mfu(&["run", "sir", "--algorithm"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--algorithm"));
}

#[test]
fn run_simulates_with_tau_leaping() {
    // the sir_1e6 scenario declares its scale; --simulate overrides it so
    // the debug-mode test stays fast, and τ-leaping is echoed in the run
    // line
    let out = mfu(&[
        "run",
        "sir_1e6",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--algorithm",
        "tau-leap:0.05",
        "--simulate",
        "5000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("model `sir_1e6`"), "{text}");
    assert!(text.contains("tau-leap run"), "{text}");
    assert!(text.contains("algorithm tau-leap:0.05"), "{text}");
}

#[test]
fn scenario_declared_scale_defaults_to_tau_leaping() {
    // without --simulate, sir_1e6 simulates at its declared N = 10⁶ —
    // which must default to the τ-leap engine (an exact run at that scale
    // is exactly what the scenario exists to avoid)
    let out = mfu(&["run", "sir_1e6", "--bound", "I@1", "--grid", "30"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("N = 1000000 tau-leap run"), "{text}");
    assert!(text.contains("algorithm tau-leap:0.03"), "{text}");
}

#[test]
fn auto_strategies_echo_what_they_resolved_to() {
    // `--selection auto` on the 3-transition SIR resolves to the linear
    // scan; the echo line must name the resolved engine, not `auto`
    let out = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "200",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("selection linear"), "{text}");
    assert!(!text.contains("selection auto"), "{text}");
}

#[test]
fn metrics_json_prints_a_machine_readable_last_line() {
    let out = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "200",
        "--metrics=json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let last = text.lines().last().unwrap();
    assert!(last.starts_with("{\"counters\":"), "{last}");
    assert!(last.contains("\"sim_events_fired\":"), "{last}");
    assert!(last.contains("\"sim_runs\":1"), "{last}");
    assert!(last.contains("\"core_rk4_steps\":"), "{last}");
    assert!(last.contains("\"lang_rules_lowered\":3"), "{last}");
    assert!(last.contains("\"sim_simulate_ns\":"), "{last}");
    assert!(last.contains("\"selection\":\"linear\""), "{last}");
    assert!(last.contains("\"model\":\"sir\""), "{last}");
}

#[test]
fn metrics_pretty_reports_on_stderr_and_keeps_stdout_clean() {
    let out = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "100",
        "--metrics",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("sim_events_fired"), "{err}");
    assert!(err.contains("core_rk4_steps"), "{err}");
    let text = stdout(&out);
    assert!(!text.contains("sim_events_fired"), "{text}");
}

#[test]
fn trace_writes_structured_jsonl_events() {
    let dir = std::env::temp_dir().join("mfu-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run-trace.jsonl");
    let out = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "200",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let trace = std::fs::read_to_string(&path).unwrap();
    for line in trace.lines() {
        assert!(line.starts_with("{\"ev\":\""), "not an event line: {line}");
        assert!(line.ends_with('}'), "truncated line: {line}");
    }
    assert!(trace.contains("\"ev\":\"rule_lowered\""), "{trace}");
    assert!(trace.contains("\"ev\":\"model_compiled\""), "{trace}");
    assert!(trace.contains("\"ev\":\"pontryagin_solve\""), "{trace}");
    assert!(trace.contains("\"ev\":\"sim_run\""), "{trace}");
    assert!(trace.contains("\"algorithm\":\"exact\""), "{trace}");
}

#[test]
fn metrics_and_trace_usage_errors_exit_2_naming_the_flag() {
    let out = mfu(&["run", "sir", "--metrics=csv"]);
    assert_eq!(out.status.code(), Some(2));
    let text = stderr(&out);
    assert!(text.contains("--metrics"), "{text}");
    assert!(text.contains("pretty or json"), "{text}");

    let out = mfu(&["run", "sir", "--trace"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--trace"));
}

#[test]
fn budget_flag_usage_errors_exit_2_naming_the_flag() {
    for bad in [
        ["--timeout", "0"],
        ["--timeout", "-2"],
        ["--timeout", "soon"],
        ["--max-events", "0"],
        ["--max-events", "many"],
    ] {
        let out = mfu(&["run", "sir", bad[0], bad[1]]);
        assert_eq!(out.status.code(), Some(2), "`{bad:?}` accepted");
        assert!(stderr(&out).contains(bad[0]), "`{bad:?}`: {}", stderr(&out));
    }
}

#[test]
fn truncated_run_exits_0_and_echoes_the_reason_on_stderr() {
    let out = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "300",
        "--max-events",
        "50",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("50 events"), "{text}");
    let err = stderr(&out);
    assert!(err.contains("truncated"), "{err}");
    assert!(err.contains("event budget exhausted"), "{err}");
}

#[test]
fn generous_budgets_leave_the_run_untouched() {
    let base = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "200",
    ]);
    let budgeted = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "200",
        "--timeout",
        "3600",
        "--max-events",
        "100000000",
    ]);
    assert!(base.status.success());
    assert!(budgeted.status.success(), "stderr: {}", stderr(&budgeted));
    assert_eq!(stdout(&base), stdout(&budgeted));
    assert!(
        !stderr(&budgeted).contains("truncated"),
        "{}",
        stderr(&budgeted)
    );
}

#[test]
fn run_simulates_with_explicit_strategies() {
    // exercise the --propensity/--selection plumbing end to end on a small
    // scenario (cheap Pontryagin grid keeps the test fast)
    let out = mfu(&[
        "run",
        "sir",
        "--bound",
        "I@1",
        "--grid",
        "30",
        "--simulate",
        "300",
        "--propensity",
        "incremental:128",
        "--selection",
        "tree",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("propensity incremental:128"), "{text}");
    assert!(text.contains("selection tree"), "{text}");
}
