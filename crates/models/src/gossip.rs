//! Rumour spreading with stifling — the epidemic-broadcast member of the
//! Benaïm–Le Boudec mean-field interaction family.
//!
//! `X_U` is the fraction of peers that have not heard the rumour, `X_A`
//! the fraction actively spreading it and `X_R` the fraction of stiflers.
//! Spreaders push the rumour to uninformed peers at an imprecise fan-out
//! rate `ϑ ∈ [push_min, push_max]`; a spreader contacting an
//! already-informed peer (active or stifler) turns stifler — the classic
//! Daley–Kendall mechanism — and spreaders also retire spontaneously out
//! of fatigue. This is the hand-coded twin of the registry's `gossip`
//! scenario: the acceptance suite checks the two backends rate for rate,
//! bit for bit.

use mfu_core::drift::FnDrift;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_ctmc::Result;
use mfu_num::StateVec;
use serde::{Deserialize, Serialize};

/// Parameters of the gossip/rumour-spreading model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipModel {
    /// Lower bound of the imprecise fan-out (push) rate.
    pub push_min: f64,
    /// Upper bound of the imprecise fan-out (push) rate.
    pub push_max: f64,
    /// Contact rate with already-informed peers (stifling intensity).
    pub stifle: f64,
    /// Spontaneous fatigue rate of active spreaders.
    pub cool: f64,
    /// Initial fraction of active spreaders (everyone else starts
    /// uninformed).
    pub initial_active: f64,
}

impl GossipModel {
    /// The registry configuration: fan-out imprecise in `[1, 4]`, unit
    /// stifling contact rate, mild fatigue, 5 % of the overlay seeded.
    pub fn broadcast() -> Self {
        GossipModel {
            push_min: 1.0,
            push_max: 4.0,
            stifle: 1.0,
            cool: 0.2,
            initial_active: 0.05,
        }
    }

    /// The uncertainty set `Θ = [push_min, push_max]`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configured bounds are not a valid interval.
    pub fn param_space(&self) -> Result<ParamSpace> {
        ParamSpace::new(vec![("push", Interval::new(self.push_min, self.push_max)?)])
    }

    /// The three-dimensional population model on `(X_U, X_A, X_R)`.
    ///
    /// The rate closures mirror the DSL twin's evaluation order factor by
    /// factor (ϑ first, then the species in source order), so the two
    /// backends agree bit for bit.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter bounds are invalid.
    pub fn population_model(&self) -> Result<PopulationModel> {
        let stifle = self.stifle;
        let cool = self.cool;
        let params = self.param_space()?;
        PopulationModel::builder(3, params)
            .variable_names(vec!["U", "A", "R"])
            .transition(
                TransitionClass::new(
                    "spread",
                    [-1.0, 1.0, 0.0],
                    move |x: &StateVec, theta: &[f64]| theta[0] * x[1] * x[0],
                )
                .with_species_support(vec![0, 1]),
            )
            .transition(
                TransitionClass::new(
                    "stifled",
                    [0.0, -1.0, 1.0],
                    move |x: &StateVec, _theta: &[f64]| stifle * x[1] * (x[1] + x[2]),
                )
                .with_species_support(vec![1, 2]),
            )
            .transition(
                TransitionClass::new(
                    "fatigue",
                    [0.0, -1.0, 1.0],
                    move |x: &StateVec, _theta: &[f64]| cool * x[1],
                )
                .with_species_support(vec![1]),
            )
            .build()
    }

    /// The three-dimensional mean-field drift on `(X_U, X_A, X_R)`.
    ///
    /// # Panics
    ///
    /// Panics if the configured push bounds do not form a valid interval
    /// (use [`GossipModel::param_space`] to validate beforehand).
    pub fn drift(&self) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let stifle = self.stifle;
        let cool = self.cool;
        let params = self.param_space().expect("invalid push-rate interval");
        FnDrift::new(
            3,
            params,
            move |x: &StateVec, theta: &[f64], dx: &mut StateVec| {
                let spread = theta[0] * x[1] * x[0];
                let retire = stifle * x[1] * (x[1] + x[2]) + cool * x[1];
                dx[0] = -spread;
                dx[1] = spread - retire;
                dx[2] = retire;
            },
        )
    }

    /// Initial condition on the simplex `(X_U, X_A, X_R)`.
    pub fn initial_state(&self) -> StateVec {
        StateVec::from([1.0 - self.initial_active, self.initial_active, 0.0])
    }

    /// Integer initial counts for an overlay of `scale` peers, rounding the
    /// seeded fraction and assigning the remainder to the uninformed pool.
    pub fn initial_counts(&self, scale: usize) -> Vec<i64> {
        let active = (self.initial_active * scale as f64).round() as i64;
        vec![scale as i64 - active, active, 0]
    }

    /// The same model expressed in the `mfu-lang` DSL — the
    /// cross-validation hook: compiling the returned source must reproduce
    /// [`GossipModel::population_model`] rate for rate, bit for bit (the
    /// registry's `gossip` scenario is this source at the
    /// [`GossipModel::broadcast`] configuration).
    pub fn dsl_source(&self) -> String {
        format!(
            "model gossip;\n\
             species U, A, R;\n\
             param push in [{}, {}];\n\
             const stifle = {};\n\
             const cool = {};\n\
             rule spread:  U -> A @ push * A * U;\n\
             rule stifled: A -> R @ stifle * A * (A + R);\n\
             rule fatigue: A -> R @ cool * A;\n\
             init U = {}, A = {}, R = 0;\n",
            self.push_min,
            self.push_max,
            self.stifle,
            self.cool,
            1.0 - self.initial_active,
            self.initial_active,
        )
    }
}

impl Default for GossipModel {
    fn default() -> Self {
        GossipModel::broadcast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_core::drift::ImpreciseDrift;

    #[test]
    fn broadcast_configuration() {
        let gossip = GossipModel::broadcast();
        assert_eq!(gossip.initial_state().as_slice(), &[0.95, 0.05, 0.0]);
        assert_eq!(gossip.initial_counts(10_000), vec![9_500, 500, 0]);
        assert_eq!(GossipModel::default(), gossip);
        assert_eq!(gossip.param_space().unwrap().dim(), 1);
    }

    #[test]
    fn drift_conserves_the_overlay() {
        let gossip = GossipModel::broadcast();
        let drift = gossip.drift();
        for theta in [[1.0], [2.5], [4.0]] {
            let dx = drift.drift(&gossip.initial_state(), &theta);
            let total: f64 = (0..3).map(|k| dx[k]).sum();
            assert!(total.abs() < 1e-15, "mass leak {total:e} at ϑ = {theta:?}");
            // seeded overlay, nobody informed yet: the rumour must grow
            assert!(dx[0] < 0.0);
        }
    }

    #[test]
    fn population_model_matches_drift() {
        let gossip = GossipModel::broadcast();
        let model = gossip.population_model().unwrap();
        let drift = gossip.drift();
        let x = StateVec::from([0.6, 0.3, 0.1]);
        for theta in [[1.0], [2.0], [4.0]] {
            let a = model.drift(&x, &theta).unwrap();
            let b = drift.drift(&x, &theta);
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-15, "coordinate {k}");
            }
        }
    }

    #[test]
    fn rumour_dies_without_spreaders() {
        let gossip = GossipModel::broadcast();
        let model = gossip.population_model().unwrap();
        let silent = StateVec::from([1.0, 0.0, 0.0]);
        for t in model.transitions() {
            assert_eq!(t.rate(&silent, &[4.0]), 0.0, "`{}`", t.name());
        }
    }

    #[test]
    fn invalid_intervals_are_reported() {
        let bad = GossipModel {
            push_min: 5.0,
            push_max: 1.0,
            ..GossipModel::broadcast()
        };
        assert!(bad.param_space().is_err());
        assert!(bad.population_model().is_err());
    }
}
