//! A susceptible–exposed–infected–recovered (SEIR) epidemic with an imprecise
//! contact rate.
//!
//! The SEIR model extends the paper's SIR case study with a latency
//! compartment: newly infected nodes are first *exposed* (infected but not
//! yet infectious) and become infectious at rate `σ`. It exercises the
//! library on a three-dimensional reduced state, which matters for the
//! differential-hull and Pontryagin analyses whose cost grows with the
//! dimension.

use mfu_core::drift::FnDrift;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_ctmc::Result;
use mfu_num::StateVec;
use serde::{Deserialize, Serialize};

/// Parameters of the SEIR model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeirModel {
    /// External infection rate `a` (susceptible nodes exposed by the environment).
    pub external_infection: f64,
    /// Latency rate `σ` (exposed → infectious).
    pub latency: f64,
    /// Recovery rate `b`.
    pub recovery: f64,
    /// Immunity-loss rate `c`.
    pub immunity_loss: f64,
    /// Lower bound of the imprecise contact rate `ϑ`.
    pub contact_min: f64,
    /// Upper bound of the imprecise contact rate `ϑ`.
    pub contact_max: f64,
    /// Initial susceptible fraction.
    pub initial_susceptible: f64,
    /// Initial exposed fraction.
    pub initial_exposed: f64,
    /// Initial infected fraction.
    pub initial_infected: f64,
}

impl SeirModel {
    /// A configuration mirroring the paper's SIR parameters with a latency
    /// stage of mean 1/2 time unit.
    pub fn sir_like() -> Self {
        SeirModel {
            external_infection: 0.1,
            latency: 2.0,
            recovery: 5.0,
            immunity_loss: 1.0,
            contact_min: 1.0,
            contact_max: 10.0,
            initial_susceptible: 0.7,
            initial_exposed: 0.0,
            initial_infected: 0.3,
        }
    }

    /// The uncertainty set `Θ`.
    ///
    /// # Errors
    ///
    /// Returns an error if the contact bounds are not a valid interval.
    pub fn param_space(&self) -> Result<ParamSpace> {
        ParamSpace::new(vec![(
            "contact",
            Interval::new(self.contact_min, self.contact_max)?,
        )])
    }

    /// The four-dimensional population model on `(x_S, x_E, x_I, x_R)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the contact bounds are invalid.
    pub fn population_model(&self) -> Result<PopulationModel> {
        let a = self.external_infection;
        let sigma = self.latency;
        let b = self.recovery;
        let c = self.immunity_loss;
        let params = self.param_space()?;
        PopulationModel::builder(4, params)
            .variable_names(vec!["S", "E", "I", "R"])
            .transition(
                TransitionClass::new(
                    "expose",
                    [-1.0, 1.0, 0.0, 0.0],
                    move |x: &StateVec, th: &[f64]| (a + th[0] * x[2]).max(0.0) * x[0].max(0.0),
                )
                .with_species_support(vec![0, 2]),
            )
            .transition(
                TransitionClass::new(
                    "become_infectious",
                    [0.0, -1.0, 1.0, 0.0],
                    move |x: &StateVec, _| sigma * x[1].max(0.0),
                )
                .with_species_support(vec![1]),
            )
            .transition(
                TransitionClass::new("recover", [0.0, 0.0, -1.0, 1.0], move |x: &StateVec, _| {
                    b * x[2].max(0.0)
                })
                .with_species_support(vec![2]),
            )
            .transition(
                TransitionClass::new(
                    "lose_immunity",
                    [1.0, 0.0, 0.0, -1.0],
                    move |x: &StateVec, _| c * x[3].max(0.0),
                )
                .with_species_support(vec![3]),
            )
            .build()
    }

    /// The reduced three-dimensional drift on `(x_S, x_E, x_I)` obtained by
    /// substituting `x_R = 1 - x_S - x_E - x_I`.
    ///
    /// # Panics
    ///
    /// Panics if the contact bounds are invalid (use
    /// [`SeirModel::param_space`] to validate beforehand).
    pub fn reduced_drift(&self) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let a = self.external_infection;
        let sigma = self.latency;
        let b = self.recovery;
        let c = self.immunity_loss;
        let params = self.param_space().expect("invalid contact interval");
        FnDrift::new(
            3,
            params,
            move |x: &StateVec, theta: &[f64], dx: &mut StateVec| {
                let (s, e, i) = (x[0], x[1], x[2]);
                let r = 1.0 - s - e - i;
                dx[0] = c * r - (a + theta[0] * i) * s;
                dx[1] = (a + theta[0] * i) * s - sigma * e;
                dx[2] = sigma * e - b * i;
            },
        )
    }

    /// The same model expressed in the `mfu-lang` DSL.
    ///
    /// Cross-validation hook for the DSL round-trip tests: compiling the
    /// returned source must reproduce [`SeirModel::population_model`] and
    /// [`SeirModel::reduced_drift`] for the configured parameters.
    pub fn dsl_source(&self) -> String {
        format!(
            "model seir;\n\
             species S, E, I, R;\n\
             param contact in [{}, {}];\n\
             const a = {};\n\
             const sigma = {};\n\
             const b = {};\n\
             const c = {};\n\
             rule expose:     S -> E @ (a + contact * I) * S;\n\
             rule infectious: E -> I @ sigma * E;\n\
             rule recover:    I -> R @ b * I;\n\
             rule wane:       R -> S @ c * R;\n\
             init S = {}, E = {}, I = {}, R = {};\n",
            self.contact_min,
            self.contact_max,
            self.external_infection,
            self.latency,
            self.recovery,
            self.immunity_loss,
            self.initial_susceptible,
            self.initial_exposed,
            self.initial_infected,
            crate::sir::zero_snapped(
                1.0 - self.initial_susceptible - self.initial_exposed - self.initial_infected,
            ),
        )
    }

    /// Initial condition in the reduced coordinates `(x_S, x_E, x_I)`.
    pub fn reduced_initial_state(&self) -> StateVec {
        StateVec::from([
            self.initial_susceptible,
            self.initial_exposed,
            self.initial_infected,
        ])
    }

    /// Initial condition on the full simplex `(x_S, x_E, x_I, x_R)`.
    pub fn full_initial_state(&self) -> StateVec {
        StateVec::from([
            self.initial_susceptible,
            self.initial_exposed,
            self.initial_infected,
            1.0 - self.initial_susceptible - self.initial_exposed - self.initial_infected,
        ])
    }

    /// Integer initial counts at population size `scale`.
    pub fn initial_counts(&self, scale: usize) -> Vec<i64> {
        let s = (self.initial_susceptible * scale as f64).round() as i64;
        let e = (self.initial_exposed * scale as f64).round() as i64;
        let i = (self.initial_infected * scale as f64).round() as i64;
        vec![s, e, i, (scale as i64 - s - e - i).max(0)]
    }
}

impl Default for SeirModel {
    fn default() -> Self {
        SeirModel::sir_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_core::drift::ImpreciseDrift;

    #[test]
    fn population_drift_conserves_mass() {
        let seir = SeirModel::sir_like();
        let model = seir.population_model().unwrap();
        let x = seir.full_initial_state();
        for theta in [1.0, 5.0, 10.0] {
            let drift = model.drift(&x, &[theta]).unwrap();
            assert!(drift.sum().abs() < 1e-12);
        }
    }

    #[test]
    fn reduced_drift_matches_full_drift() {
        let seir = SeirModel::sir_like();
        let model = seir.population_model().unwrap();
        let reduced = seir.reduced_drift();
        for &(s, e, i) in &[(0.7, 0.0, 0.3), (0.5, 0.1, 0.2), (0.3, 0.2, 0.1)] {
            let full_state = StateVec::from([s, e, i, 1.0 - s - e - i]);
            let reduced_state = StateVec::from([s, e, i]);
            for theta in [1.0, 4.0, 10.0] {
                let full = model.drift(&full_state, &[theta]).unwrap();
                let red = reduced.drift(&reduced_state, &[theta]);
                for k in 0..3 {
                    assert!((full[k] - red[k]).abs() < 1e-12, "coordinate {k}");
                }
            }
        }
    }

    #[test]
    fn latency_delays_the_infection_peak() {
        // With a latency stage, new infections first pile up in E, so at the
        // initial instant the infected fraction can only decrease (recovery
        // dominates) while the exposed fraction grows.
        let seir = SeirModel::sir_like();
        let drift = seir.reduced_drift();
        let dx = drift.drift(&seir.reduced_initial_state(), &[10.0]);
        assert!(dx[1] > 0.0, "exposed fraction should grow initially");
        assert!(
            dx[2] < 0.0,
            "infectious fraction should dip before the exposed convert"
        );
    }

    #[test]
    fn initial_counts_sum_to_scale() {
        let seir = SeirModel::sir_like();
        for scale in [10usize, 123, 1000] {
            let counts = seir.initial_counts(scale);
            assert_eq!(counts.iter().sum::<i64>(), scale as i64);
        }
        assert_eq!(SeirModel::default(), seir);
    }

    #[test]
    fn invalid_interval_is_reported() {
        let bad = SeirModel {
            contact_min: 3.0,
            contact_max: 1.0,
            ..SeirModel::sir_like()
        };
        assert!(bad.param_space().is_err());
        assert!(bad.population_model().is_err());
    }

    #[test]
    fn dsl_source_reflects_the_configuration() {
        let source = SeirModel::sir_like().dsl_source();
        assert!(source.contains("const sigma = 2;"));
        assert!(source.contains("init S = 0.7, E = 0, I = 0.3, R = 0;"));
    }
}
