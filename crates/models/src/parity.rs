//! Cross-backend parity checks between population models.
//!
//! The hand-coded models of this crate exist twice: as native Rust closures
//! (this crate) and as DSL sources (`dsl_source()` hooks, compiled by
//! `mfu-lang` to flat bytecode rate programs). The two representations must
//! agree *exactly* — the acceptance suite simulates both with the same seed
//! and compares trajectories bit for bit. This module provides the
//! rate-level comparison those tests (and future backends) build on.

use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::{CtmcError, Result};
use mfu_num::StateVec;

/// The largest absolute rate divergence between two population models over
/// a set of sample states, evaluated transition by transition at every
/// vertex of the (shared) parameter box.
///
/// Returns `0.0` exactly when every transition rate matches bit for bit on
/// the sampled points — the expected outcome for a native model and its DSL
/// twin, whose bytecode lowering preserves evaluation order.
///
/// # Errors
///
/// Returns an error if the models differ in dimension, number of
/// transitions, transition names/jump vectors, or parameter-space shape.
pub fn max_rate_divergence(
    a: &PopulationModel,
    b: &PopulationModel,
    samples: &[StateVec],
) -> Result<f64> {
    if a.dim() != b.dim() {
        return Err(CtmcError::DimensionMismatch {
            expected: a.dim(),
            found: b.dim(),
        });
    }
    if a.transitions().len() != b.transitions().len() {
        return Err(CtmcError::invalid_model(format!(
            "transition counts differ: {} vs {}",
            a.transitions().len(),
            b.transitions().len()
        )));
    }
    if a.params().dim() != b.params().dim() {
        return Err(CtmcError::DimensionMismatch {
            expected: a.params().dim(),
            found: b.params().dim(),
        });
    }
    for (ta, tb) in a.transitions().iter().zip(b.transitions()) {
        if ta.change().as_slice() != tb.change().as_slice() {
            return Err(CtmcError::invalid_model(format!(
                "jump vectors differ for `{}`/`{}`",
                ta.name(),
                tb.name()
            )));
        }
    }

    let mut worst = 0.0_f64;
    for x in samples {
        if x.dim() != a.dim() {
            return Err(CtmcError::DimensionMismatch {
                expected: a.dim(),
                found: x.dim(),
            });
        }
        for theta in a.params().vertices() {
            for (ta, tb) in a.transitions().iter().zip(b.transitions()) {
                let ra = ta.rate(x, &theta);
                let rb = tb.rate(x, &theta);
                if !ra.is_finite() || !rb.is_finite() {
                    return Err(CtmcError::InvalidRate {
                        transition: ta.name().to_string(),
                        rate: if ra.is_finite() { rb } else { ra },
                    });
                }
                worst = worst.max((ra - rb).abs());
            }
        }
    }
    Ok(worst)
}

/// A deterministic low-discrepancy-ish sample of the simplex-ish cube
/// `[0, 1]^dim` for parity sweeps: `points` states spread with a Weyl
/// sequence (no RNG dependency).
pub fn sample_states(dim: usize, points: usize) -> Vec<StateVec> {
    const ALPHA: f64 = 0.618_033_988_749_894_9; // 1/φ
    (0..points)
        .map(|p| {
            (0..dim)
                .map(|i| ((p + 1) as f64 * ALPHA * (i + 1) as f64).fract())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sir::SirModel;

    #[test]
    fn a_model_is_parity_equal_to_itself() {
        let model = SirModel::paper().population_model().unwrap();
        let samples = sample_states(3, 16);
        let divergence = max_rate_divergence(&model, &model, &samples).unwrap();
        assert_eq!(divergence, 0.0);
    }

    #[test]
    fn divergence_is_detected() {
        let a = SirModel::paper().population_model().unwrap();
        let b = SirModel {
            recovery: 5.5,
            ..SirModel::paper()
        }
        .population_model()
        .unwrap();
        let samples = sample_states(3, 16);
        let divergence = max_rate_divergence(&a, &b, &samples).unwrap();
        assert!(divergence > 0.0);
    }

    #[test]
    fn shape_mismatches_error() {
        let sir = SirModel::paper().population_model().unwrap();
        let sis = crate::sis::SisModel::supercritical()
            .population_model()
            .unwrap();
        assert!(max_rate_divergence(&sir, &sis, &sample_states(3, 4)).is_err());
        // wrong sample dimension
        assert!(max_rate_divergence(&sir, &sir, &sample_states(2, 4)).is_err());
    }

    #[test]
    fn sample_states_cover_the_cube() {
        let samples = sample_states(3, 64);
        assert_eq!(samples.len(), 64);
        for x in &samples {
            assert_eq!(x.dim(), 3);
            for &v in x.as_slice() {
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn native_models_report_their_annotated_supports() {
        let model = SirModel::paper().population_model().unwrap();
        let supports: Vec<_> = model
            .transitions()
            .iter()
            .map(|t| t.species_support().map(<[usize]>::to_vec))
            .collect();
        assert_eq!(
            supports,
            vec![Some(vec![0, 1]), Some(vec![1]), Some(vec![2])]
        );
    }
}
