//! The single-station bike-sharing model of Sections II–III of the paper.
//!
//! A station with `N` racks; `X_B(t)` is the fraction of occupied racks.
//! Customers pick up a bike at imprecise rate `ϑ_a(t)` (per rack, scaled by
//! `N`), bikers return one at imprecise rate `ϑ_r(t)`, both only when the
//! corresponding resource is available. This is the paper's running example
//! for imprecise versus uncertain parameters.

use mfu_core::drift::FnDrift;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_ctmc::Result;
use mfu_num::StateVec;
use serde::{Deserialize, Serialize};

/// Parameters of the single-station bike-sharing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BikeStationModel {
    /// Lower bound of the customer (pick-up) arrival rate `ϑ_a`.
    pub pickup_min: f64,
    /// Upper bound of the customer (pick-up) arrival rate `ϑ_a`.
    pub pickup_max: f64,
    /// Lower bound of the bike-return rate `ϑ_r`.
    pub return_min: f64,
    /// Upper bound of the bike-return rate `ϑ_r`.
    pub return_max: f64,
    /// Initial fraction of occupied racks.
    pub initial_occupancy: f64,
}

impl BikeStationModel {
    /// A representative configuration: both rates uncertain within ±50 % of 1,
    /// the station starting half full.
    pub fn symmetric() -> Self {
        BikeStationModel {
            pickup_min: 0.5,
            pickup_max: 1.5,
            return_min: 0.5,
            return_max: 1.5,
            initial_occupancy: 0.5,
        }
    }

    /// The uncertainty set `Θ = [ϑ_a^min, ϑ_a^max] × [ϑ_r^min, ϑ_r^max]`.
    ///
    /// # Errors
    ///
    /// Returns an error if either interval is invalid.
    pub fn param_space(&self) -> Result<ParamSpace> {
        ParamSpace::new(vec![
            ("pickup", Interval::new(self.pickup_min, self.pickup_max)?),
            ("return", Interval::new(self.return_min, self.return_max)?),
        ])
    }

    /// The one-dimensional population model on the occupancy fraction.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter bounds are invalid.
    pub fn population_model(&self) -> Result<PopulationModel> {
        let params = self.param_space()?;
        PopulationModel::builder(1, params)
            .variable_names(vec!["occupancy"])
            .transition(TransitionClass::new(
                "pickup",
                [-1.0],
                |x: &StateVec, theta: &[f64]| {
                    if x[0] > 0.0 {
                        theta[0]
                    } else {
                        0.0
                    }
                },
            ))
            .transition(TransitionClass::new(
                "return",
                [1.0],
                |x: &StateVec, theta: &[f64]| {
                    if x[0] < 1.0 {
                        theta[1]
                    } else {
                        0.0
                    }
                },
            ))
            .build()
    }

    /// The one-dimensional mean-field drift.
    ///
    /// The drift is discontinuous at the boundaries of `[0, 1]` (rates switch
    /// off when the station is empty or full), exactly the situation covered
    /// by the differential-inclusion limit.
    ///
    /// # Panics
    ///
    /// Panics if the configured intervals are invalid (use
    /// [`BikeStationModel::param_space`] to validate beforehand).
    pub fn drift(&self) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let params = self.param_space().expect("invalid rate intervals");
        FnDrift::new(
            1,
            params,
            |x: &StateVec, theta: &[f64], dx: &mut StateVec| {
                let pickup = if x[0] > 0.0 { theta[0] } else { 0.0 };
                let giveback = if x[0] < 1.0 { theta[1] } else { 0.0 };
                dx[0] = giveback - pickup;
            },
        )
    }

    /// Initial occupancy as a one-dimensional state.
    pub fn initial_state(&self) -> StateVec {
        StateVec::from([self.initial_occupancy])
    }

    /// Integer initial counts (occupied racks) for a station with `scale` racks.
    pub fn initial_counts(&self, scale: usize) -> Vec<i64> {
        vec![(self.initial_occupancy * scale as f64).round() as i64]
    }
}

impl Default for BikeStationModel {
    fn default() -> Self {
        BikeStationModel::symmetric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_core::drift::ImpreciseDrift;

    #[test]
    fn symmetric_configuration() {
        let bike = BikeStationModel::symmetric();
        assert_eq!(bike.initial_state().as_slice(), &[0.5]);
        assert_eq!(bike.initial_counts(40), vec![20]);
        assert_eq!(BikeStationModel::default(), bike);
        let space = bike.param_space().unwrap();
        assert_eq!(space.dim(), 2);
    }

    #[test]
    fn drift_balances_pickups_and_returns() {
        let bike = BikeStationModel::symmetric();
        let drift = bike.drift();
        let interior = StateVec::from([0.4]);
        assert!((drift.drift(&interior, &[1.0, 1.0])[0]).abs() < 1e-12);
        assert!((drift.drift(&interior, &[0.5, 1.5])[0] - 1.0).abs() < 1e-12);
        // boundary behaviour: empty station cannot lose bikes, full cannot gain
        assert!(drift.drift(&StateVec::from([0.0]), &[1.5, 0.5])[0] > 0.0);
        assert!(drift.drift(&StateVec::from([1.0]), &[0.5, 1.5])[0] < 0.0);
    }

    #[test]
    fn population_model_matches_drift_in_the_interior() {
        let bike = BikeStationModel::symmetric();
        let model = bike.population_model().unwrap();
        let drift = bike.drift();
        let x = StateVec::from([0.3]);
        for theta in [[0.5, 0.5], [1.5, 0.5], [1.0, 1.3]] {
            let a = model.drift(&x, &theta).unwrap()[0];
            let b = drift.drift(&x, &theta)[0];
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_intervals_are_reported() {
        let bad = BikeStationModel {
            pickup_min: 2.0,
            pickup_max: 1.0,
            ..BikeStationModel::symmetric()
        };
        assert!(bad.param_space().is_err());
        assert!(bad.population_model().is_err());
    }
}
