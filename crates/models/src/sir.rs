//! The SIR epidemic model of Section V of the paper.
//!
//! A population of `N` nodes, each susceptible (S), infected (I) or recovered
//! (R). A susceptible node is infected from an external source at rate `a` or
//! by meeting an infected node at imprecise contact rate `ϑ ∈ [ϑ^min, ϑ^max]`;
//! an infected node recovers at rate `b`; a recovered node becomes
//! susceptible again at rate `c`. The transitions of the scaled process are
//!
//! * `(X_S, X_I, X_R) → (X_S - 1/N, X_I + 1/N, X_R)` at rate `N(a X_S + ϑ X_S X_I)`
//! * `(X_S, X_I, X_R) → (X_S, X_I - 1/N, X_R + 1/N)` at rate `N b X_I`
//! * `(X_S, X_I, X_R) → (X_S + 1/N, X_I, X_R - 1/N)` at rate `N c X_R`
//!
//! Because `X_S + X_I + X_R = 1`, the mean-field limit is usually studied in
//! the reduced coordinates `(x_S, x_I)` of Equation (11):
//!
//! ```text
//! f_S = c - (a + c)·x_S - c·x_I - ϑ·x_S·x_I
//! f_I = a·x_S + ϑ·x_S·x_I - b·x_I
//! ```
//!
//! The paper's experiments use `a = 0.1`, `b = 5`, `c = 1`,
//! `ϑ ∈ [1, 10]` and the initial condition `(0.7, 0.3, 0.0)`.

use mfu_core::drift::FnDrift;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_ctmc::Result;
use mfu_num::StateVec;
use serde::{Deserialize, Serialize};

/// Parameters of the SIR model (Section V of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SirModel {
    /// External infection rate `a`.
    pub external_infection: f64,
    /// Recovery rate `b`.
    pub recovery: f64,
    /// Immunity-loss rate `c`.
    pub immunity_loss: f64,
    /// Lower bound of the imprecise contact rate `ϑ`.
    pub contact_min: f64,
    /// Upper bound of the imprecise contact rate `ϑ`.
    pub contact_max: f64,
    /// Initial susceptible fraction.
    pub initial_susceptible: f64,
    /// Initial infected fraction.
    pub initial_infected: f64,
}

impl SirModel {
    /// The exact configuration of Section V: `a = 0.1`, `b = 5`, `c = 1`,
    /// `ϑ ∈ [1, 10]`, `x(0) = (0.7, 0.3, 0)`.
    pub fn paper() -> Self {
        SirModel {
            external_infection: 0.1,
            recovery: 5.0,
            immunity_loss: 1.0,
            contact_min: 1.0,
            contact_max: 10.0,
            initial_susceptible: 0.7,
            initial_infected: 0.3,
        }
    }

    /// The paper's configuration with a different upper contact rate, as used
    /// in the differential-hull comparison (Figures 4 and 5 sweep
    /// `ϑ^max ∈ {2, …, 10}` with `ϑ^min = 1`).
    pub fn paper_with_contact_max(contact_max: f64) -> Self {
        SirModel {
            contact_max,
            ..SirModel::paper()
        }
    }

    /// The uncertainty set `Θ` (a single imprecise contact rate).
    ///
    /// # Errors
    ///
    /// Returns an error if the configured bounds are not a valid interval.
    pub fn param_space(&self) -> Result<ParamSpace> {
        ParamSpace::new(vec![(
            "contact",
            Interval::new(self.contact_min, self.contact_max)?,
        )])
    }

    /// The three-dimensional population model on `(X_S, X_I, X_R)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameter bounds are invalid.
    pub fn population_model(&self) -> Result<PopulationModel> {
        let a = self.external_infection;
        let b = self.recovery;
        let c = self.immunity_loss;
        let params = self.param_space()?;
        PopulationModel::builder(3, params)
            .variable_names(vec!["S", "I", "R"])
            .transition(
                TransitionClass::new(
                    "infection",
                    [-1.0, 1.0, 0.0],
                    move |x: &StateVec, theta: &[f64]| {
                        (a + theta[0] * x[1]).max(0.0) * x[0].max(0.0)
                    },
                )
                .with_species_support(vec![0, 1]),
            )
            .transition(
                TransitionClass::new(
                    "recovery",
                    [0.0, -1.0, 1.0],
                    move |x: &StateVec, _theta: &[f64]| b * x[1].max(0.0),
                )
                .with_species_support(vec![1]),
            )
            .transition(
                TransitionClass::new(
                    "immunity_loss",
                    [1.0, 0.0, -1.0],
                    move |x: &StateVec, _theta: &[f64]| c * x[2].max(0.0),
                )
                .with_species_support(vec![2]),
            )
            .build()
    }

    /// The reduced two-dimensional drift `(f_S, f_I)` of Equation (11).
    ///
    /// # Panics
    ///
    /// Panics if the configured contact bounds do not form a valid interval
    /// (use [`SirModel::param_space`] to validate beforehand).
    pub fn reduced_drift(&self) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let a = self.external_infection;
        let b = self.recovery;
        let c = self.immunity_loss;
        let params = self.param_space().expect("invalid contact-rate interval");
        FnDrift::new(
            2,
            params,
            move |x: &StateVec, theta: &[f64], dx: &mut StateVec| {
                let (s, i) = (x[0], x[1]);
                dx[0] = c - (a + c) * s - c * i - theta[0] * s * i;
                dx[1] = a * s + theta[0] * s * i - b * i;
            },
        )
    }

    /// Initial condition in the reduced coordinates `(x_S, x_I)`.
    pub fn reduced_initial_state(&self) -> StateVec {
        StateVec::from([self.initial_susceptible, self.initial_infected])
    }

    /// Initial condition on the full simplex `(x_S, x_I, x_R)`.
    pub fn full_initial_state(&self) -> StateVec {
        StateVec::from([
            self.initial_susceptible,
            self.initial_infected,
            1.0 - self.initial_susceptible - self.initial_infected,
        ])
    }

    /// The same model expressed in the `mfu-lang` DSL.
    ///
    /// This is the cross-validation hook used by the DSL round-trip tests:
    /// compiling the returned source must reproduce
    /// [`SirModel::population_model`] and [`SirModel::reduced_drift`]
    /// exactly (up to floating-point rounding) for the configured
    /// parameters.
    pub fn dsl_source(&self) -> String {
        format!(
            "model sir;\n\
             species S, I, R;\n\
             param contact in [{}, {}];\n\
             const a = {};\n\
             const b = {};\n\
             const c = {};\n\
             rule infect:  S -> I @ (a + contact * I) * S;\n\
             rule recover: I -> R @ b * I;\n\
             rule wane:    R -> S @ c * R;\n\
             init S = {}, I = {}, R = {};\n",
            self.contact_min,
            self.contact_max,
            self.external_infection,
            self.recovery,
            self.immunity_loss,
            self.initial_susceptible,
            self.initial_infected,
            zero_snapped(1.0 - self.initial_susceptible - self.initial_infected),
        )
    }

    /// Integer initial counts for a population of size `scale`, rounding the
    /// susceptible and infected fractions and assigning the remainder to the
    /// recovered compartment.
    pub fn initial_counts(&self, scale: usize) -> Vec<i64> {
        let susceptible = (self.initial_susceptible * scale as f64).round() as i64;
        let infected = (self.initial_infected * scale as f64).round() as i64;
        let recovered = scale as i64 - susceptible - infected;
        vec![susceptible, infected, recovered.max(0)]
    }
}

impl Default for SirModel {
    fn default() -> Self {
        SirModel::paper()
    }
}

/// Clamps a remainder fraction to `[0, ∞)` and snaps rounding residue
/// (|v| < 1e-12) to an exact zero, so generated DSL sources stay readable.
pub(crate) fn zero_snapped(v: f64) -> f64 {
    let v = v.max(0.0);
    if v < 1e-12 {
        0.0
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_core::drift::ImpreciseDrift;

    #[test]
    fn paper_parameters_match_section_v() {
        let sir = SirModel::paper();
        assert_eq!(sir.external_infection, 0.1);
        assert_eq!(sir.recovery, 5.0);
        assert_eq!(sir.immunity_loss, 1.0);
        assert_eq!(sir.contact_min, 1.0);
        assert_eq!(sir.contact_max, 10.0);
        assert_eq!(sir.reduced_initial_state().as_slice(), &[0.7, 0.3]);
        let full = sir.full_initial_state();
        assert_eq!(full.as_slice()[..2], [0.7, 0.3]);
        assert!(full[2].abs() < 1e-12);
        assert_eq!(SirModel::default(), SirModel::paper());
    }

    #[test]
    fn contact_max_override() {
        let sir = SirModel::paper_with_contact_max(5.0);
        assert_eq!(sir.contact_max, 5.0);
        assert_eq!(sir.contact_min, 1.0);
        let space = sir.param_space().unwrap();
        assert_eq!(space.upper(), vec![5.0]);
    }

    #[test]
    fn population_drift_conserves_mass() {
        let sir = SirModel::paper();
        let model = sir.population_model().unwrap();
        let x = sir.full_initial_state();
        for theta in [1.0, 5.0, 10.0] {
            let drift = model.drift(&x, &[theta]).unwrap();
            assert!(
                drift.sum().abs() < 1e-12,
                "mass not conserved for ϑ = {theta}"
            );
        }
    }

    #[test]
    fn reduced_drift_matches_full_drift() {
        let sir = SirModel::paper();
        let model = sir.population_model().unwrap();
        let reduced = sir.reduced_drift();
        // compare on several interior points of the simplex
        for &(s, i) in &[(0.7, 0.3), (0.5, 0.2), (0.9, 0.05), (0.3, 0.1)] {
            let full_state = StateVec::from([s, i, 1.0 - s - i]);
            let reduced_state = StateVec::from([s, i]);
            for theta in [1.0, 3.7, 10.0] {
                let full = model.drift(&full_state, &[theta]).unwrap();
                let red = reduced.drift(&reduced_state, &[theta]);
                assert!(
                    (full[0] - red[0]).abs() < 1e-12,
                    "f_S mismatch at ({s}, {i}), ϑ = {theta}"
                );
                assert!(
                    (full[1] - red[1]).abs() < 1e-12,
                    "f_I mismatch at ({s}, {i}), ϑ = {theta}"
                );
            }
        }
    }

    #[test]
    fn reduced_drift_matches_equation_11_by_hand() {
        let sir = SirModel::paper();
        let drift = sir.reduced_drift();
        let x = StateVec::from([0.7, 0.3]);
        let dx = drift.drift(&x, &[2.0]);
        // f_S = 1 - 1.1*0.7 - 1*0.3 - 2*0.7*0.3 = 1 - 0.77 - 0.3 - 0.42 = -0.49
        // f_I = 0.1*0.7 + 2*0.7*0.3 - 5*0.3 = 0.07 + 0.42 - 1.5 = -1.01
        assert!((dx[0] + 0.49).abs() < 1e-12);
        assert!((dx[1] + 1.01).abs() < 1e-12);
    }

    #[test]
    fn initial_counts_sum_to_scale() {
        let sir = SirModel::paper();
        for scale in [10usize, 100, 1000, 9999] {
            let counts = sir.initial_counts(scale);
            assert_eq!(counts.iter().sum::<i64>(), scale as i64);
            assert!(counts.iter().all(|&c| c >= 0));
        }
    }

    #[test]
    fn infection_rate_is_increasing_in_theta() {
        // The paper highlights that f_I is increasing in ϑ pointwise even
        // though x_I(t) is not monotone in ϑ.
        let sir = SirModel::paper();
        let drift = sir.reduced_drift();
        let x = StateVec::from([0.6, 0.2]);
        let low = drift.drift(&x, &[1.0])[1];
        let high = drift.drift(&x, &[10.0])[1];
        assert!(high > low);
    }

    #[test]
    fn invalid_contact_interval_is_reported() {
        let sir = SirModel {
            contact_min: 5.0,
            contact_max: 1.0,
            ..SirModel::paper()
        };
        assert!(sir.param_space().is_err());
        assert!(sir.population_model().is_err());
    }

    #[test]
    fn dsl_source_reflects_the_configuration() {
        let source = SirModel::paper().dsl_source();
        assert!(source.contains("param contact in [1, 10];"));
        assert!(source.contains("const b = 5;"));
        assert!(source.contains("init S = 0.7, I = 0.3, R = 0;"));
        let widened = SirModel::paper_with_contact_max(7.5).dsl_source();
        assert!(widened.contains("param contact in [1, 7.5];"));
    }
}
