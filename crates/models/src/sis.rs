//! A susceptible–infected–susceptible (SIS) epidemic with an imprecise
//! contact rate.
//!
//! The SIS model is the one-dimensional cousin of the paper's SIR case study:
//! infected nodes recover directly to the susceptible state, so the infected
//! fraction `x_I` fully describes the system. It is used by the examples and
//! tests as a model whose mean field has a closed-form fixed point
//! `x_I^* = 1 - b/ϑ` (when `ϑ > b`), making analytic cross-checks easy.

use mfu_core::drift::FnDrift;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_ctmc::Result;
use mfu_num::StateVec;
use serde::{Deserialize, Serialize};

/// Parameters of the SIS model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SisModel {
    /// Recovery rate `b`.
    pub recovery: f64,
    /// Lower bound of the imprecise contact rate `ϑ`.
    pub contact_min: f64,
    /// Upper bound of the imprecise contact rate `ϑ`.
    pub contact_max: f64,
    /// Initial infected fraction.
    pub initial_infected: f64,
}

impl SisModel {
    /// A supercritical configuration (`ϑ > b` for every admissible `ϑ`), so
    /// the epidemic persists whatever the environment does.
    pub fn supercritical() -> Self {
        SisModel {
            recovery: 1.0,
            contact_min: 2.0,
            contact_max: 4.0,
            initial_infected: 0.2,
        }
    }

    /// The uncertainty set `Θ`.
    ///
    /// # Errors
    ///
    /// Returns an error if the contact bounds are not a valid interval.
    pub fn param_space(&self) -> Result<ParamSpace> {
        ParamSpace::new(vec![(
            "contact",
            Interval::new(self.contact_min, self.contact_max)?,
        )])
    }

    /// The one-dimensional population model on the infected fraction.
    ///
    /// # Errors
    ///
    /// Returns an error if the contact bounds are invalid.
    pub fn population_model(&self) -> Result<PopulationModel> {
        let b = self.recovery;
        let params = self.param_space()?;
        PopulationModel::builder(1, params)
            .variable_names(vec!["I"])
            .transition(
                TransitionClass::new("infect", [1.0], |x: &StateVec, th: &[f64]| {
                    th[0] * x[0].max(0.0) * (1.0 - x[0]).max(0.0)
                })
                .with_species_support(vec![0]),
            )
            .transition(
                TransitionClass::new("recover", [-1.0], move |x: &StateVec, _| b * x[0].max(0.0))
                    .with_species_support(vec![0]),
            )
            .build()
    }

    /// The one-dimensional mean-field drift `ẋ_I = ϑ x_I (1 - x_I) - b x_I`.
    ///
    /// # Panics
    ///
    /// Panics if the contact bounds are invalid (use [`SisModel::param_space`]
    /// to validate beforehand).
    pub fn drift(&self) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let b = self.recovery;
        let params = self.param_space().expect("invalid contact interval");
        FnDrift::new(
            1,
            params,
            move |x: &StateVec, theta: &[f64], dx: &mut StateVec| {
                dx[0] = theta[0] * x[0] * (1.0 - x[0]) - b * x[0];
            },
        )
    }

    /// The endemic fixed point `1 - b/ϑ` for a fixed contact rate (clamped at 0).
    pub fn endemic_level(&self, contact: f64) -> f64 {
        (1.0 - self.recovery / contact).max(0.0)
    }

    /// The same model expressed in the `mfu-lang` DSL.
    ///
    /// The infected fraction is declared first so the DSL's reduced drift is
    /// one-dimensional on `x_I` with `x_S = 1 − x_I`, matching
    /// [`SisModel::drift`]. Cross-validated by the DSL round-trip tests.
    pub fn dsl_source(&self) -> String {
        format!(
            "model sis;\n\
             species I, S;\n\
             param contact in [{}, {}];\n\
             const b = {};\n\
             rule infect:  S -> I @ contact * S * I;\n\
             rule recover: I -> S @ b * I;\n\
             init I = {}, S = {};\n",
            self.contact_min,
            self.contact_max,
            self.recovery,
            self.initial_infected,
            crate::sir::zero_snapped(1.0 - self.initial_infected),
        )
    }

    /// Initial infected fraction as a state vector.
    pub fn initial_state(&self) -> StateVec {
        StateVec::from([self.initial_infected])
    }

    /// Integer initial counts (infected nodes) at population size `scale`.
    pub fn initial_counts(&self, scale: usize) -> Vec<i64> {
        vec![(self.initial_infected * scale as f64).round() as i64]
    }
}

impl Default for SisModel {
    fn default() -> Self {
        SisModel::supercritical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_core::drift::ImpreciseDrift;
    use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
    use mfu_num::ode::{equilibrium, EquilibriumOptions, FnSystem};

    #[test]
    fn drift_matches_population_model() {
        let sis = SisModel::supercritical();
        let drift = sis.drift();
        let model = sis.population_model().unwrap();
        let x = StateVec::from([0.3]);
        for theta in [2.0, 3.0, 4.0] {
            let a = drift.drift(&x, &[theta])[0];
            let b = model.drift(&x, &[theta]).unwrap()[0];
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn endemic_level_matches_numerical_fixed_point() {
        let sis = SisModel::supercritical();
        for theta in [2.0, 3.0, 4.0] {
            let drift = sis.drift();
            let system = FnSystem::new(1, move |_t, x: &StateVec, dx: &mut StateVec| {
                drift.drift_into(x, &[theta], dx);
            });
            let fp =
                equilibrium(&system, sis.initial_state(), &EquilibriumOptions::default()).unwrap();
            assert!(
                (fp[0] - sis.endemic_level(theta)).abs() < 1e-6,
                "ϑ = {theta}"
            );
        }
    }

    #[test]
    fn subcritical_rate_gives_extinction_level_zero() {
        let sis = SisModel {
            recovery: 2.0,
            contact_min: 0.5,
            contact_max: 1.0,
            initial_infected: 0.3,
        };
        assert_eq!(sis.endemic_level(1.0), 0.0);
    }

    #[test]
    fn imprecise_bounds_straddle_the_endemic_levels() {
        // The reachable interval of x_I at a long horizon must contain the
        // endemic levels of both extreme contact rates.
        let sis = SisModel::supercritical();
        let drift = sis.drift();
        let solver = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 150,
            ..Default::default()
        });
        let (lo, hi) = solver
            .coordinate_extremes(&drift, &sis.initial_state(), 8.0, 0)
            .unwrap();
        assert!(lo <= sis.endemic_level(sis.contact_min) + 1e-3);
        assert!(hi >= sis.endemic_level(sis.contact_max) - 1e-3);
    }

    #[test]
    fn initial_counts_round_to_population() {
        let sis = SisModel::supercritical();
        assert_eq!(sis.initial_counts(100), vec![20]);
        assert_eq!(SisModel::default(), sis);
    }

    #[test]
    fn invalid_interval_is_reported() {
        let bad = SisModel {
            contact_min: 5.0,
            contact_max: 1.0,
            ..SisModel::supercritical()
        };
        assert!(bad.param_space().is_err());
        assert!(bad.population_model().is_err());
    }

    #[test]
    fn dsl_source_reflects_the_configuration() {
        let source = SisModel::supercritical().dsl_source();
        assert!(source.contains("param contact in [2, 4];"));
        assert!(source.contains("init I = 0.2, S = 0.8;"));
    }
}
