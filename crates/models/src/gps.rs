//! The closed generalized-processor-sharing (GPS) queueing network of
//! Section VI of the paper.
//!
//! `N` applications per class (two classes) share one machine. Each
//! application cycles between *thinking* and *having one job queued at the
//! machine*; the machine splits its capacity between the queued jobs with GPS
//! weights `φ_1, φ_2`. Job sizes of class `i` are exponential with mean
//! `1/µ_i`. Job creation follows one of two scenarios:
//!
//! * **Poisson** — an application of class `i` waits an exponential time of
//!   mean `1/λ'_i` and then submits a job;
//! * **MAP** (Markov arrival process) — an application first waits an
//!   exponential time of mean `1/a_i` to become *active*, then submits after
//!   a further exponential time of mean `1/λ_i`.
//!
//! The job-creation rates `λ_i` (and the matched `λ'_i`) are *imprecise*,
//! varying in `[λ_i^min, λ_i^max]`. The state is expressed in per-class
//! fractions; the machine capacity is taken equal to the per-class population
//! (one capacity unit per application of each class), which leaves the
//! mean-field drift independent of `N`:
//!
//! ```text
//! service_i(q) = µ_i · φ_i · q_i / (φ_1 q_1 + φ_2 q_2)
//!
//! Poisson:  q̇_i = λ'_i (1 - q_i) - service_i(q)
//! MAP:      ḋ_i = a_i (1 - d_i - q_i) - λ_i d_i
//!           q̇_i = λ_i d_i - service_i(q)
//! ```
//!
//! The paper's configuration is `µ = (5, 1)`, `φ = (1, 1)`,
//! `λ_1 ∈ [1, 7]`, `λ_2 ∈ [2, 3]`, `a = (1, 2)`, `Q_i(0) = 0.1`, with
//! `λ'_i = 1/(1/a_i + 1/λ_i)` so that the mean submission intervals of the two
//! scenarios match.

use mfu_core::drift::FnDrift;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_ctmc::Result;
use mfu_num::StateVec;
use serde::{Deserialize, Serialize};

/// Parameters of the two-class GPS model (Section VI of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsModel {
    /// Service rates `µ_i` (inverse mean job sizes).
    pub service_rates: [f64; 2],
    /// GPS weights `φ_i`.
    pub weights: [f64; 2],
    /// Lower bounds of the imprecise job-creation rates `λ_i`.
    pub lambda_min: [f64; 2],
    /// Upper bounds of the imprecise job-creation rates `λ_i`.
    pub lambda_max: [f64; 2],
    /// Activation rates `a_i` of the MAP scenario.
    pub activation_rates: [f64; 2],
    /// Machine capacity per application of each class (`C / N_i`). The paper
    /// does not report its value of `C`; `1.0` means the machine can serve
    /// one mean-size class-`i` job per `1/µ_i` time units per application.
    pub capacity: f64,
    /// Initial queued fraction per class.
    pub initial_queue: [f64; 2],
}

impl GpsModel {
    /// The exact configuration of Section VI-C: `µ = (5, 1)`, `φ = (1, 1)`,
    /// `λ_1 ∈ [1, 7]`, `λ_2 ∈ [2, 3]`, `a = (1, 2)`, `Q(0) = (0.1, 0.1)`.
    pub fn paper() -> Self {
        GpsModel {
            service_rates: [5.0, 1.0],
            weights: [1.0, 1.0],
            lambda_min: [1.0, 2.0],
            lambda_max: [7.0, 3.0],
            activation_rates: [1.0, 2.0],
            capacity: 1.0,
            initial_queue: [0.1, 0.1],
        }
    }

    /// The paper configuration with a different machine capacity per
    /// application (`C / N_i`). Smaller capacities congest the machine and
    /// make the GPS weights a genuine trade-off.
    pub fn paper_with_capacity(capacity: f64) -> Self {
        GpsModel {
            capacity,
            ..GpsModel::paper()
        }
    }

    /// The paper configuration with different GPS weights (used by the robust
    /// tuning experiment, which sweeps `φ_1` with `φ_2 = 1`).
    pub fn paper_with_weights(phi1: f64, phi2: f64) -> Self {
        GpsModel {
            weights: [phi1, phi2],
            ..GpsModel::paper()
        }
    }

    /// Poisson-equivalent creation-rate bounds `λ'_i = 1/(1/a_i + 1/λ_i)`,
    /// matching the mean submission interval of the MAP scenario.
    pub fn poisson_rates(&self) -> ([f64; 2], [f64; 2]) {
        let convert = |a: f64, lambda: f64| 1.0 / (1.0 / a + 1.0 / lambda);
        (
            [
                convert(self.activation_rates[0], self.lambda_min[0]),
                convert(self.activation_rates[1], self.lambda_min[1]),
            ],
            [
                convert(self.activation_rates[0], self.lambda_max[0]),
                convert(self.activation_rates[1], self.lambda_max[1]),
            ],
        )
    }

    /// GPS service term `service_i(q)` shared by both scenarios.
    fn service(
        weights: [f64; 2],
        service_rates: [f64; 2],
        capacity: f64,
        q1: f64,
        q2: f64,
        class: usize,
    ) -> f64 {
        let denominator = weights[0] * q1.max(0.0) + weights[1] * q2.max(0.0);
        if denominator <= 1e-12 {
            return 0.0;
        }
        let q = if class == 0 { q1 } else { q2 };
        capacity * service_rates[class] * weights[class] * q.max(0.0) / denominator
    }

    /// The parameter space of the Poisson scenario (`λ'_1`, `λ'_2`).
    ///
    /// # Errors
    ///
    /// Returns an error if the configured rate bounds are not valid intervals.
    pub fn poisson_param_space(&self) -> Result<ParamSpace> {
        let (lo, hi) = self.poisson_rates();
        ParamSpace::new(vec![
            ("lambda1", Interval::new(lo[0], hi[0])?),
            ("lambda2", Interval::new(lo[1], hi[1])?),
        ])
    }

    /// The parameter space of the MAP scenario (`λ_1`, `λ_2`).
    ///
    /// # Errors
    ///
    /// Returns an error if the configured rate bounds are not valid intervals.
    pub fn map_param_space(&self) -> Result<ParamSpace> {
        ParamSpace::new(vec![
            (
                "lambda1",
                Interval::new(self.lambda_min[0], self.lambda_max[0])?,
            ),
            (
                "lambda2",
                Interval::new(self.lambda_min[1], self.lambda_max[1])?,
            ),
        ])
    }

    /// The two-dimensional mean-field drift of the Poisson scenario on
    /// `(q_1, q_2)`.
    ///
    /// # Panics
    ///
    /// Panics if the configured rate bounds are invalid (use
    /// [`GpsModel::poisson_param_space`] to validate beforehand).
    pub fn poisson_drift(&self) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let weights = self.weights;
        let service_rates = self.service_rates;
        let capacity = self.capacity;
        let params = self.poisson_param_space().expect("invalid λ' intervals");
        FnDrift::new(
            2,
            params,
            move |x: &StateVec, theta: &[f64], dx: &mut StateVec| {
                let (q1, q2) = (x[0], x[1]);
                dx[0] = theta[0] * (1.0 - q1)
                    - Self::service(weights, service_rates, capacity, q1, q2, 0);
                dx[1] = theta[1] * (1.0 - q2)
                    - Self::service(weights, service_rates, capacity, q1, q2, 1);
            },
        )
    }

    /// The four-dimensional mean-field drift of the MAP scenario on
    /// `(d_1, q_1, d_2, q_2)` (the idle fractions are `1 - d_i - q_i`).
    ///
    /// # Panics
    ///
    /// Panics if the configured rate bounds are invalid (use
    /// [`GpsModel::map_param_space`] to validate beforehand).
    pub fn map_drift(&self) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let weights = self.weights;
        let service_rates = self.service_rates;
        let capacity = self.capacity;
        let activation = self.activation_rates;
        let params = self.map_param_space().expect("invalid λ intervals");
        FnDrift::new(
            4,
            params,
            move |x: &StateVec, theta: &[f64], dx: &mut StateVec| {
                let (d1, q1, d2, q2) = (x[0], x[1], x[2], x[3]);
                let e1 = (1.0 - d1 - q1).max(0.0);
                let e2 = (1.0 - d2 - q2).max(0.0);
                let s1 = Self::service(weights, service_rates, capacity, q1, q2, 0);
                let s2 = Self::service(weights, service_rates, capacity, q1, q2, 1);
                dx[0] = activation[0] * e1 - theta[0] * d1;
                dx[1] = theta[0] * d1 - s1;
                dx[2] = activation[1] * e2 - theta[1] * d2;
                dx[3] = theta[1] * d2 - s2;
            },
        )
    }

    /// Initial state of the Poisson scenario, `(q_1, q_2)`.
    pub fn poisson_initial_state(&self) -> StateVec {
        StateVec::from([self.initial_queue[0], self.initial_queue[1]])
    }

    /// Initial state of the MAP scenario, `(d_1, q_1, d_2, q_2)`; the
    /// applications that are not queued initially are all active.
    pub fn map_initial_state(&self) -> StateVec {
        StateVec::from([
            1.0 - self.initial_queue[0],
            self.initial_queue[0],
            1.0 - self.initial_queue[1],
            self.initial_queue[1],
        ])
    }

    /// The Poisson-scenario population model (per-class scale `N`).
    ///
    /// # Errors
    ///
    /// Returns an error if the rate bounds are invalid.
    pub fn poisson_population_model(&self) -> Result<PopulationModel> {
        let weights = self.weights;
        let service_rates = self.service_rates;
        let capacity = self.capacity;
        let params = self.poisson_param_space()?;
        PopulationModel::builder(2, params)
            .variable_names(vec!["Q1", "Q2"])
            .transition(
                TransitionClass::new("create1", [1.0, 0.0], |x: &StateVec, th: &[f64]| {
                    th[0] * (1.0 - x[0]).max(0.0)
                })
                .with_species_support(vec![0]),
            )
            .transition(
                TransitionClass::new("create2", [0.0, 1.0], |x: &StateVec, th: &[f64]| {
                    th[1] * (1.0 - x[1]).max(0.0)
                })
                .with_species_support(vec![1]),
            )
            .transition(
                TransitionClass::new("serve1", [-1.0, 0.0], move |x: &StateVec, _| {
                    Self::service(weights, service_rates, capacity, x[0], x[1], 0)
                })
                .with_species_support(vec![0, 1]),
            )
            .transition(
                TransitionClass::new("serve2", [0.0, -1.0], move |x: &StateVec, _| {
                    Self::service(weights, service_rates, capacity, x[0], x[1], 1)
                })
                .with_species_support(vec![0, 1]),
            )
            .build()
    }

    /// The MAP-scenario population model on `(D_1, Q_1, D_2, Q_2)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the rate bounds are invalid.
    pub fn map_population_model(&self) -> Result<PopulationModel> {
        let weights = self.weights;
        let service_rates = self.service_rates;
        let capacity = self.capacity;
        let activation = self.activation_rates;
        let params = self.map_param_space()?;
        PopulationModel::builder(4, params)
            .variable_names(vec!["D1", "Q1", "D2", "Q2"])
            .transition(
                TransitionClass::new("activate1", [1.0, 0.0, 0.0, 0.0], move |x: &StateVec, _| {
                    activation[0] * (1.0 - x[0] - x[1]).max(0.0)
                })
                .with_species_support(vec![0, 1]),
            )
            .transition(
                TransitionClass::new(
                    "create1",
                    [-1.0, 1.0, 0.0, 0.0],
                    |x: &StateVec, th: &[f64]| th[0] * x[0].max(0.0),
                )
                .with_species_support(vec![0]),
            )
            .transition(
                TransitionClass::new("serve1", [0.0, -1.0, 0.0, 0.0], move |x: &StateVec, _| {
                    Self::service(weights, service_rates, capacity, x[1], x[3], 0)
                })
                .with_species_support(vec![1, 3]),
            )
            .transition(
                TransitionClass::new("activate2", [0.0, 0.0, 1.0, 0.0], move |x: &StateVec, _| {
                    activation[1] * (1.0 - x[2] - x[3]).max(0.0)
                })
                .with_species_support(vec![2, 3]),
            )
            .transition(
                TransitionClass::new(
                    "create2",
                    [0.0, 0.0, -1.0, 1.0],
                    |x: &StateVec, th: &[f64]| th[1] * x[2].max(0.0),
                )
                .with_species_support(vec![2]),
            )
            .transition(
                TransitionClass::new("serve2", [0.0, 0.0, 0.0, -1.0], move |x: &StateVec, _| {
                    Self::service(weights, service_rates, capacity, x[1], x[3], 1)
                })
                .with_species_support(vec![1, 3]),
            )
            .build()
    }

    /// The MAP scenario expressed in the `mfu-lang` DSL.
    ///
    /// Cross-validation hook for the DSL parity tests: compiling the
    /// returned source must reproduce [`GpsModel::map_population_model`]
    /// and [`GpsModel::map_drift`] *exactly* (rates bit-identical) for the
    /// configured parameters. The source leans on the PR 3 language
    /// additions: the shared `let load` subexpression and the
    /// `when load > eps { … } else { 0 }` empty-queue guard mirror the
    /// private `GpsModel::service` helper operation for operation, and the
    /// MAP phases
    /// are ordinary species (`D1`, `D2`) with the thinking populations
    /// implicit — which is why the model is intentionally
    /// non-conservative.
    pub fn dsl_source(&self) -> String {
        format!(
            "model gps;\n\
             species D1, Q1, D2, Q2;\n\
             param lambda1 in [{l1_lo}, {l1_hi}];\n\
             param lambda2 in [{l2_lo}, {l2_hi}];\n\
             const a1 = {a1};\n\
             const a2 = {a2};\n\
             const mu1 = {mu1};\n\
             const mu2 = {mu2};\n\
             const phi1 = {phi1};\n\
             const phi2 = {phi2};\n\
             const cap = {cap};\n\
             const eps = 1e-12;\n\
             let load = phi1 * max(Q1, 0) + phi2 * max(Q2, 0);\n\
             rule activate1: 0 -> D1  @ a1 * max(1 - D1 - Q1, 0);\n\
             rule create1:   D1 -> Q1 @ lambda1 * max(D1, 0);\n\
             rule serve1:    Q1 -> 0  @ when load > eps {{ cap * mu1 * phi1 * max(Q1, 0) / load }} else {{ 0 }};\n\
             rule activate2: 0 -> D2  @ a2 * max(1 - D2 - Q2, 0);\n\
             rule create2:   D2 -> Q2 @ lambda2 * max(D2, 0);\n\
             rule serve2:    Q2 -> 0  @ when load > eps {{ cap * mu2 * phi2 * max(Q2, 0) / load }} else {{ 0 }};\n\
             init D1 = {d1}, Q1 = {q1}, D2 = {d2}, Q2 = {q2};\n",
            l1_lo = self.lambda_min[0],
            l1_hi = self.lambda_max[0],
            l2_lo = self.lambda_min[1],
            l2_hi = self.lambda_max[1],
            a1 = self.activation_rates[0],
            a2 = self.activation_rates[1],
            mu1 = self.service_rates[0],
            mu2 = self.service_rates[1],
            phi1 = self.weights[0],
            phi2 = self.weights[1],
            cap = self.capacity,
            d1 = 1.0 - self.initial_queue[0],
            q1 = self.initial_queue[0],
            d2 = 1.0 - self.initial_queue[1],
            q2 = self.initial_queue[1],
        )
    }

    /// The Poisson scenario expressed in the `mfu-lang` DSL (on `(Q1, Q2)`,
    /// with the mean-matched creation-rate intervals of
    /// [`GpsModel::poisson_rates`]).
    ///
    /// Same contract as [`GpsModel::dsl_source`] against
    /// [`GpsModel::poisson_population_model`] / [`GpsModel::poisson_drift`].
    pub fn poisson_dsl_source(&self) -> String {
        let (lo, hi) = self.poisson_rates();
        format!(
            "model gps_poisson;\n\
             species Q1, Q2;\n\
             param lambda1 in [{l1_lo}, {l1_hi}];\n\
             param lambda2 in [{l2_lo}, {l2_hi}];\n\
             const mu1 = {mu1};\n\
             const mu2 = {mu2};\n\
             const phi1 = {phi1};\n\
             const phi2 = {phi2};\n\
             const cap = {cap};\n\
             const eps = 1e-12;\n\
             let load = phi1 * max(Q1, 0) + phi2 * max(Q2, 0);\n\
             rule create1: 0 -> Q1 @ lambda1 * max(1 - Q1, 0);\n\
             rule create2: 0 -> Q2 @ lambda2 * max(1 - Q2, 0);\n\
             rule serve1:  Q1 -> 0 @ when load > eps {{ cap * mu1 * phi1 * max(Q1, 0) / load }} else {{ 0 }};\n\
             rule serve2:  Q2 -> 0 @ when load > eps {{ cap * mu2 * phi2 * max(Q2, 0) / load }} else {{ 0 }};\n\
             init Q1 = {q1}, Q2 = {q2};\n",
            l1_lo = lo[0],
            l1_hi = hi[0],
            l2_lo = lo[1],
            l2_hi = hi[1],
            mu1 = self.service_rates[0],
            mu2 = self.service_rates[1],
            phi1 = self.weights[0],
            phi2 = self.weights[1],
            cap = self.capacity,
            q1 = self.initial_queue[0],
            q2 = self.initial_queue[1],
        )
    }

    /// Integer initial counts of the Poisson population model at per-class scale `scale`.
    pub fn poisson_initial_counts(&self, scale: usize) -> Vec<i64> {
        vec![
            (self.initial_queue[0] * scale as f64).round() as i64,
            (self.initial_queue[1] * scale as f64).round() as i64,
        ]
    }

    /// Integer initial counts of the MAP population model at per-class scale `scale`.
    pub fn map_initial_counts(&self, scale: usize) -> Vec<i64> {
        let q1 = (self.initial_queue[0] * scale as f64).round() as i64;
        let q2 = (self.initial_queue[1] * scale as f64).round() as i64;
        vec![scale as i64 - q1, q1, scale as i64 - q2, q2]
    }
}

impl Default for GpsModel {
    fn default() -> Self {
        GpsModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_core::drift::ImpreciseDrift;

    #[test]
    fn paper_parameters_match_section_vi() {
        let gps = GpsModel::paper();
        assert_eq!(gps.service_rates, [5.0, 1.0]);
        assert_eq!(gps.weights, [1.0, 1.0]);
        assert_eq!(gps.lambda_min, [1.0, 2.0]);
        assert_eq!(gps.lambda_max, [7.0, 3.0]);
        assert_eq!(gps.activation_rates, [1.0, 2.0]);
        assert_eq!(gps.capacity, 1.0);
        assert_eq!(gps.initial_queue, [0.1, 0.1]);
        assert_eq!(GpsModel::default(), gps);
    }

    #[test]
    fn poisson_rates_match_mean_intervals() {
        let gps = GpsModel::paper();
        let (lo, hi) = gps.poisson_rates();
        // λ'_1 bounds: 1/(1 + 1/1) = 0.5 and 1/(1 + 1/7) = 0.875
        assert!((lo[0] - 0.5).abs() < 1e-12);
        assert!((hi[0] - 0.875).abs() < 1e-12);
        // λ'_2 bounds: 1/(0.5 + 0.5) = 1 and 1/(0.5 + 1/3) = 1.2
        assert!((lo[1] - 1.0).abs() < 1e-12);
        assert!((hi[1] - 1.2).abs() < 1e-12);
    }

    #[test]
    fn custom_weights_are_applied() {
        let gps = GpsModel::paper_with_weights(9.0, 1.0);
        assert_eq!(gps.weights, [9.0, 1.0]);
        // higher weight gives class 1 a larger share of the machine
        let balanced = GpsModel::paper();
        let x = StateVec::from([0.2, 0.2]);
        let fast = gps.poisson_drift().drift(&x, &[0.875, 1.2]);
        let fair = balanced.poisson_drift().drift(&x, &[0.875, 1.2]);
        assert!(
            fast[0] < fair[0],
            "class 1 should drain faster with a larger weight"
        );
        assert!(
            fast[1] > fair[1],
            "class 2 should drain slower with a smaller share"
        );
    }

    #[test]
    fn service_conserves_capacity() {
        // The total service rate weighted by mean job size (Σ service_i / µ_i)
        // equals the machine capacity 1 whenever some job is queued.
        let gps = GpsModel::paper();
        for (q1, q2) in [(0.1, 0.1), (0.5, 0.01), (0.0, 0.4), (0.9, 0.9)] {
            let s1 = GpsModel::service(gps.weights, gps.service_rates, gps.capacity, q1, q2, 0);
            let s2 = GpsModel::service(gps.weights, gps.service_rates, gps.capacity, q1, q2, 1);
            let used = s1 / gps.service_rates[0] + s2 / gps.service_rates[1];
            assert!(
                (used - gps.capacity).abs() < 1e-9,
                "capacity {used} at ({q1}, {q2})"
            );
        }
        // no jobs, no service
        assert_eq!(
            GpsModel::service(gps.weights, gps.service_rates, gps.capacity, 0.0, 0.0, 0),
            0.0
        );
    }

    #[test]
    fn poisson_drift_matches_population_model() {
        let gps = GpsModel::paper();
        let drift = gps.poisson_drift();
        let model = gps.poisson_population_model().unwrap();
        let x = StateVec::from([0.2, 0.3]);
        for theta in [[0.5, 1.0], [0.875, 1.2], [0.7, 1.1]] {
            let a = drift.drift(&x, &theta);
            let b = model.drift(&x, &theta).unwrap();
            for i in 0..2 {
                assert!((a[i] - b[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn map_drift_matches_population_model() {
        let gps = GpsModel::paper();
        let drift = gps.map_drift();
        let model = gps.map_population_model().unwrap();
        let x = StateVec::from([0.5, 0.2, 0.4, 0.3]);
        for theta in [[1.0, 2.0], [7.0, 3.0], [4.0, 2.5]] {
            let a = drift.drift(&x, &theta);
            let b = model.drift(&x, &theta).unwrap();
            for i in 0..4 {
                assert!((a[i] - b[i]).abs() < 1e-12, "coordinate {i}");
            }
        }
    }

    #[test]
    fn initial_states_and_counts_are_consistent() {
        let gps = GpsModel::paper();
        assert_eq!(gps.poisson_initial_state().as_slice(), &[0.1, 0.1]);
        assert_eq!(gps.map_initial_state().as_slice(), &[0.9, 0.1, 0.9, 0.1]);
        assert_eq!(gps.poisson_initial_counts(100), vec![10, 10]);
        assert_eq!(gps.map_initial_counts(100), vec![90, 10, 90, 10]);
        // per-class totals conserved in the MAP counts
        let counts = gps.map_initial_counts(50);
        assert_eq!(counts[0] + counts[1], 50);
        assert_eq!(counts[2] + counts[3], 50);
    }

    #[test]
    fn map_dynamics_conserve_per_class_mass() {
        // d_i + q_i + e_i = 1 is invariant: the drift of d_i + q_i must equal
        // minus the drift of e_i, i.e. activation minus service.
        let gps = GpsModel::paper();
        let drift = gps.map_drift();
        let x = StateVec::from([0.6, 0.2, 0.5, 0.3]);
        let dx = drift.drift(&x, &[3.0, 2.5]);
        let e1_change = -(dx[0] + dx[1]);
        let expected_e1 =
            GpsModel::service(gps.weights, gps.service_rates, gps.capacity, 0.2, 0.3, 0)
                - gps.activation_rates[0] * (1.0 - 0.6 - 0.2);
        assert!((e1_change - expected_e1).abs() < 1e-12);
    }

    #[test]
    fn dsl_sources_reflect_the_configuration() {
        let source = GpsModel::paper().dsl_source();
        assert!(source.contains("param lambda1 in [1, 7];"));
        assert!(source.contains("param lambda2 in [2, 3];"));
        assert!(source.contains("const mu1 = 5;"));
        assert!(source.contains("let load = phi1 * max(Q1, 0) + phi2 * max(Q2, 0);"));
        assert!(source.contains("when load > eps"));
        assert!(source.contains("init D1 = 0.9, Q1 = 0.1, D2 = 0.9, Q2 = 0.1;"));

        let weighted = GpsModel::paper_with_weights(9.0, 1.0).dsl_source();
        assert!(weighted.contains("const phi1 = 9;"));

        let poisson = GpsModel::paper().poisson_dsl_source();
        // the mean-matched λ' bounds print exactly as computed
        let (lo, hi) = GpsModel::paper().poisson_rates();
        assert!(poisson.contains(&format!("param lambda1 in [{}, {}];", lo[0], hi[0])));
        assert!(poisson.contains(&format!("param lambda2 in [{}, {}];", lo[1], hi[1])));
        assert!(poisson.contains("rule create1: 0 -> Q1 @ lambda1 * max(1 - Q1, 0);"));
    }

    #[test]
    fn native_transitions_annotate_their_supports() {
        let map = GpsModel::paper().map_population_model().unwrap();
        let supports: Vec<_> = map
            .transitions()
            .iter()
            .map(|t| t.species_support().map(<[usize]>::to_vec))
            .collect();
        assert_eq!(
            supports,
            vec![
                Some(vec![0, 1]),
                Some(vec![0]),
                Some(vec![1, 3]),
                Some(vec![2, 3]),
                Some(vec![2]),
                Some(vec![1, 3]),
            ]
        );
        let poisson = GpsModel::paper().poisson_population_model().unwrap();
        let supports: Vec<_> = poisson
            .transitions()
            .iter()
            .map(|t| t.species_support().map(<[usize]>::to_vec))
            .collect();
        assert_eq!(
            supports,
            vec![
                Some(vec![0]),
                Some(vec![1]),
                Some(vec![0, 1]),
                Some(vec![0, 1]),
            ]
        );
    }

    #[test]
    fn invalid_rate_bounds_are_reported() {
        let bad = GpsModel {
            lambda_min: [8.0, 2.0],
            ..GpsModel::paper()
        };
        assert!(bad.map_param_space().is_err());
        assert!(bad.poisson_param_space().is_err());
        assert!(bad.map_population_model().is_err());
        assert!(bad.poisson_population_model().is_err());
    }
}
