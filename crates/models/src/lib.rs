//! Model library for the reproduction of Bortolussi & Gast (DSN 2016).
//!
//! Each model is provided in two synchronised forms:
//!
//! * a [`PopulationModel`](mfu_ctmc::population::PopulationModel) built from
//!   transition classes — the finite-`N` stochastic system consumed by the
//!   simulator and by the exact finite-chain expansion;
//! * an [`ImpreciseDrift`](mfu_core::drift::ImpreciseDrift) in reduced
//!   coordinates — the mean-field limit consumed by the differential-hull,
//!   Pontryagin and Birkhoff analyses.
//!
//! The models are:
//!
//! * [`sir`] — the SIR epidemic of Section V with external infections,
//!   recovery, loss of immunity and an imprecise contact rate;
//! * [`bike`] — the single-station bike-sharing example of Sections II–III;
//! * [`gps`] — the closed two-class generalized-processor-sharing queueing
//!   network of Section VI, with Poisson and Markov-arrival-process (MAP)
//!   job-creation scenarios;
//! * [`sis`] and [`seir`] — additional epidemic variants used by the examples
//!   and tests to exercise the library beyond the paper's two case studies;
//! * [`gossip`] — rumour spreading with stifling (epidemic broadcast), the
//!   hand-coded twin of the registry's Benaïm–Le Boudec interaction fleet
//!   member of the same name.
//!
//! # Example
//!
//! Build the paper's SIR model and evaluate its reduced drift:
//!
//! ```
//! use mfu_core::drift::ImpreciseDrift;
//! use mfu_models::sir::SirModel;
//! use mfu_num::StateVec;
//!
//! let sir = SirModel::paper();
//! let drift = sir.reduced_drift();
//! let x0 = sir.reduced_initial_state();
//! let dx = drift.drift(&x0, &[2.0]);
//! assert_eq!(dx.dim(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bike;
pub mod gossip;
pub mod gps;
pub mod parity;
pub mod seir;
pub mod sir;
pub mod sis;
