//! Parser and validation error-case tests: each rejected source must
//! produce a diagnostic whose span points at the exact offending text.

use mfu_lang::{compile, LangError};

/// Compiles expecting failure and returns (message, highlighted source slice,
/// line, column).
fn diag(source: &str) -> (String, String, usize, usize) {
    let err = compile(source).expect_err("source should be rejected");
    let d = err
        .diagnostic()
        .unwrap_or_else(|| panic!("error should carry a diagnostic, got {err:?}"))
        .clone();
    let highlighted = source[d.span.start..d.span.end.min(source.len())].to_string();
    (d.message, highlighted, d.position.line, d.position.col)
}

#[test]
fn unbound_identifier_in_rate_is_pinpointed() {
    let source = "model m;\nspecies S, I;\nparam k in [1, 2];\nrule infect: S -> I @ beta * S * I;\ninit S = 0.5, I = 0.5;";
    let (message, highlighted, line, col) = diag(source);
    assert!(message.contains("unknown identifier `beta`"), "{message}");
    assert_eq!(highlighted, "beta");
    assert_eq!(line, 4);
    assert_eq!(col, 23);
}

#[test]
fn inverted_interval_is_pinpointed() {
    let source =
        "model m;\nspecies X;\nparam rate in [5, 2];\nrule decay: X -> 0 @ rate * X;\ninit X = 1;";
    let (message, highlighted, line, _) = diag(source);
    assert!(message.contains("inverted"), "{message}");
    assert_eq!(highlighted, "[5, 2]");
    assert_eq!(line, 3);
}

#[test]
fn bad_stoichiometry_species_is_pinpointed() {
    let source =
        "model m;\nspecies X;\nparam r in [0, 1];\nrule grow: X -> X + Q @ r * X;\ninit X = 1;";
    let (message, highlighted, line, col) = diag(source);
    assert!(message.contains("not a declared species"), "{message}");
    assert_eq!(highlighted, "Q");
    assert_eq!(line, 4);
    assert_eq!(col, 21);
}

#[test]
fn fractional_multiplicity_is_pinpointed() {
    let source = "model m;\nspecies X, Y;\nparam r in [0, 1];\nrule split: X -> 2.5 Y @ r * X;\ninit X = 1, Y = 0;";
    let (message, highlighted, _, _) = diag(source);
    assert!(message.contains("positive integer"), "{message}");
    assert_eq!(highlighted, "2.5");
}

#[test]
fn missing_semicolon_is_a_parse_error_at_the_next_token() {
    let source = "model m;\nspecies X\nparam r in [0, 1];";
    let err = compile(source).unwrap_err();
    assert!(matches!(err, LangError::Parse(_)));
    let d = err.diagnostic().unwrap();
    assert_eq!(
        d.position.line, 3,
        "error should point at the token after the missing `;`"
    );
}

#[test]
fn rate_referencing_rule_name_is_unbound() {
    // rule names live in their own namespace; using one as a value is an
    // unknown-identifier error, not a silent binding.
    let source = "model m;\nspecies X;\nparam r in [0, 1];\nrule decay: X -> 0 @ r * X;\nrule echo: X -> 0 @ decay * X;\ninit X = 1;";
    let (message, highlighted, _, _) = diag(source);
    assert!(message.contains("unknown identifier `decay`"), "{message}");
    assert_eq!(highlighted, "decay");
}

#[test]
fn rendered_diagnostic_contains_caret_under_the_span() {
    let source = "model m;\nspecies X;\nparam r in [0, 1];\nrule g: X -> 0 @ nope;\ninit X = 1;";
    let err = compile(source).unwrap_err();
    let rendered = err.to_string();
    let lines: Vec<&str> = rendered.lines().collect();
    // the caret line must align under `nope` in the quoted source line
    let quoted = lines
        .iter()
        .position(|l| l.contains("rule g"))
        .expect("quoted source line");
    let caret_line = lines[quoted + 1];
    let source_line = lines[quoted];
    let caret_at = caret_line.find('^').expect("caret");
    assert_eq!(&source_line[caret_at..caret_at + 4], "nope");
    assert!(caret_line.contains("^^^^"));
}

#[test]
fn unclosed_when_branch_points_at_the_stray_token() {
    // the missing `}` is detected at the `;` that ends the rule
    let source = "model m;\nspecies Q;\nparam mu in [1, 2];\nrule serve: Q -> 0 @ when Q > 0 { mu / Q ;\ninit Q = 1;";
    let (message, highlighted, line, _) = diag(source);
    assert!(message.contains("`}`"), "{message}");
    assert!(message.contains("close the `when` branch"), "{message}");
    assert_eq!(highlighted, ";");
    assert_eq!(line, 4);
}

#[test]
fn when_without_else_is_pinpointed() {
    let source = "model m;\nspecies Q;\nparam mu in [1, 2];\nrule serve: Q -> 0 @ when Q > 0 { mu / Q };\ninit Q = 1;";
    let (message, highlighted, line, _) = diag(source);
    assert!(message.contains("`else`"), "{message}");
    assert_eq!(highlighted, ";");
    assert_eq!(line, 4);
}

#[test]
fn numeric_condition_type_error_is_pinpointed() {
    // `when Q { … }`: the condition is a number, not a comparison
    let source = "model m;\nspecies Q;\nparam mu in [1, 2];\nrule serve: Q -> 0 @ when Q { mu } else { 0 };\ninit Q = 1;";
    let (message, highlighted, line, col) = diag(source);
    assert!(message.contains("type error"), "{message}");
    assert!(message.contains("comparison"), "{message}");
    assert_eq!(highlighted, "Q");
    assert_eq!(line, 4);
    assert_eq!(col, 27);
}

#[test]
fn comparison_outside_a_guard_is_pinpointed_with_indicator_hint() {
    let source = "model m;\nspecies Q;\nparam mu in [1, 2];\nrule serve: Q -> 0 @ (Q > 0) * mu;\ninit Q = 1;";
    let (message, highlighted, _, _) = diag(source);
    assert!(message.contains("type error"), "{message}");
    assert!(message.contains("indicator"), "{message}");
    assert_eq!(highlighted, "(Q > 0)");
}

#[test]
fn chained_comparison_is_pinpointed_at_the_second_operator() {
    let source = "model m;\nspecies Q;\nparam mu in [1, 2];\nrule serve: Q -> 0 @ when 0 < Q < 1 { mu } else { 0 };\ninit Q = 1;";
    let (message, highlighted, line, _) = diag(source);
    assert!(message.contains("chained"), "{message}");
    assert_eq!(highlighted, "<");
    assert_eq!(line, 4);
}

#[test]
fn unknown_identifier_inside_a_guard_branch_is_pinpointed() {
    let source = "model m;\nspecies Q;\nparam mu in [1, 2];\nrule serve: Q -> 0 @ when Q > 0 { mu * rho } else { 0 };\ninit Q = 1;";
    let (message, highlighted, line, _) = diag(source);
    assert!(message.contains("unknown identifier `rho`"), "{message}");
    assert_eq!(highlighted, "rho");
    assert_eq!(line, 4);
}

#[test]
fn let_cycle_free_unknown_reference_is_pinpointed() {
    // a let referencing a later let is simply unknown at resolution time
    let source = "model m;\nspecies Q;\nparam mu in [1, 2];\nlet a = b + 1;\nlet b = Q;\nrule g: Q -> 0 @ mu * a;\ninit Q = 1;";
    let (message, highlighted, line, _) = diag(source);
    assert!(message.contains("unknown identifier `b`"), "{message}");
    assert_eq!(highlighted, "b");
    assert_eq!(line, 4);
}

#[test]
fn duplicate_init_and_missing_init_are_pinpointed() {
    let twice = "model m;\nspecies X, Y;\nparam r in [0,1];\nrule g: X -> Y @ r;\ninit X = 1, Y = 0, X = 2;";
    let (message, highlighted, _, _) = diag(twice);
    assert!(message.contains("initialised twice"), "{message}");
    assert_eq!(highlighted, "X");

    let missing = "model m;\nspecies X, Y;\nparam r in [0,1];\nrule g: X -> Y @ r;\ninit X = 1;";
    let (message, highlighted, line, _) = diag(missing);
    assert!(message.contains("never initialised"), "{message}");
    assert_eq!(highlighted, "Y");
    assert_eq!(line, 2, "span should point at the declaration of Y");
}
