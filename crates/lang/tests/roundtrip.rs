//! Round-trip property tests: models written in the DSL must agree with
//! the hand-coded `mfu-models` versions — transition rates, full drifts
//! and reduced drifts — on randomly sampled states and parameters.
//!
//! The DSL sources come from the `dsl_source()` cross-validation hooks on
//! the hand-coded models, so the two representations are generated from
//! the *same* configured parameters.

use mfu_core::drift::ImpreciseDrift;
use mfu_models::seir::SeirModel;
use mfu_models::sir::SirModel;
use mfu_models::sis::SisModel;
use mfu_num::StateVec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DSL SIR == hand-coded SIR: full population drift, per-transition
    /// rates and total exit rate, on simplex states and admissible ϑ.
    #[test]
    fn sir_population_model_round_trips(s in 0.0..1.0f64, i in 0.0..1.0f64, pick in 0.0..1.0f64) {
        let i = i * (1.0 - s);
        let sir = SirModel::paper();
        let hand = sir.population_model().unwrap();
        let dsl = mfu_lang::compile(&sir.dsl_source()).unwrap().population_model().unwrap();
        let theta = [sir.contact_min + pick * (sir.contact_max - sir.contact_min)];
        let x = StateVec::from([s, i, 1.0 - s - i]);

        let a = hand.drift(&x, &theta).unwrap();
        let b = dsl.drift(&x, &theta).unwrap();
        for k in 0..3 {
            prop_assert!((a[k] - b[k]).abs() < 1e-12, "drift coordinate {k}: {} vs {}", a[k], b[k]);
        }
        prop_assert!((hand.total_rate(&x, &theta).unwrap() - dsl.total_rate(&x, &theta).unwrap()).abs() < 1e-12);
        for (ht, dt) in hand.transitions().iter().zip(dsl.transitions().iter()) {
            prop_assert!((ht.rate(&x, &theta) - dt.rate(&x, &theta)).abs() < 1e-12, "transition {}", ht.name());
            prop_assert_eq!(ht.change().as_slice(), dt.change().as_slice());
        }
    }

    /// DSL SIR reduced drift == Equation (11) on the reduced simplex.
    #[test]
    fn sir_reduced_drift_round_trips(s in 0.0..1.0f64, i in 0.0..1.0f64, pick in 0.0..1.0f64) {
        let i = i * (1.0 - s);
        let sir = SirModel::paper();
        let hand = sir.reduced_drift();
        let dsl_model = mfu_lang::compile(&sir.dsl_source()).unwrap();
        let dsl = dsl_model.reduced_drift();
        prop_assert_eq!(dsl.dim(), 2);
        let theta = [sir.contact_min + pick * (sir.contact_max - sir.contact_min)];
        let x = StateVec::from([s, i]);
        let a = hand.drift(&x, &theta);
        let b = dsl.drift(&x, &theta);
        prop_assert!((a[0] - b[0]).abs() < 1e-12, "f_S: {} vs {}", a[0], b[0]);
        prop_assert!((a[1] - b[1]).abs() < 1e-12, "f_I: {} vs {}", a[1], b[1]);
    }

    /// DSL SIS reduced drift == the hand-coded one-dimensional drift.
    #[test]
    fn sis_drift_round_trips(i in 0.0..1.0f64, pick in 0.0..1.0f64) {
        let sis = SisModel::supercritical();
        let hand = sis.drift();
        let dsl_model = mfu_lang::compile(&sis.dsl_source()).unwrap();
        let dsl = dsl_model.reduced_drift();
        prop_assert_eq!(dsl.dim(), 1);
        let theta = [sis.contact_min + pick * (sis.contact_max - sis.contact_min)];
        let x = StateVec::from([i]);
        let a = hand.drift(&x, &theta)[0];
        let b = dsl.drift(&x, &theta)[0];
        prop_assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    /// DSL SEIR == hand-coded SEIR, full and reduced.
    #[test]
    fn seir_drifts_round_trip(
        s in 0.0..1.0f64,
        e in 0.0..1.0f64,
        i in 0.0..1.0f64,
        pick in 0.0..1.0f64,
    ) {
        let e = e * (1.0 - s);
        let i = i * (1.0 - s - e);
        let seir = SeirModel::sir_like();
        let theta = [seir.contact_min + pick * (seir.contact_max - seir.contact_min)];
        let dsl_model = mfu_lang::compile(&seir.dsl_source()).unwrap();

        let full_state = StateVec::from([s, e, i, 1.0 - s - e - i]);
        let hand_full = seir.population_model().unwrap().drift(&full_state, &theta).unwrap();
        let dsl_full = dsl_model.population_model().unwrap().drift(&full_state, &theta).unwrap();
        for k in 0..4 {
            prop_assert!((hand_full[k] - dsl_full[k]).abs() < 1e-12, "full coordinate {k}");
        }

        let reduced_state = StateVec::from([s, e, i]);
        let hand_red = seir.reduced_drift().drift(&reduced_state, &theta);
        let dsl_red = dsl_model.reduced_drift().drift(&reduced_state, &theta);
        for k in 0..3 {
            prop_assert!((hand_red[k] - dsl_red[k]).abs() < 1e-12, "reduced coordinate {k}");
        }
    }

    /// The DSL initial conditions and counts match the hand-coded helpers
    /// (the generated source snaps the ~1e-17 rounding residue of
    /// `1 - S0 - I0` to an exact zero, hence the tolerance).
    #[test]
    fn sir_initial_conditions_round_trip(scale in 10usize..5000) {
        let sir = SirModel::paper();
        let dsl_model = mfu_lang::compile(&sir.dsl_source()).unwrap();
        prop_assert!(dsl_model.initial_state().distance_inf(&sir.full_initial_state()) < 1e-12);
        prop_assert!(
            dsl_model.reduced_initial_state().distance_inf(&sir.reduced_initial_state()) < 1e-12
        );
        prop_assert_eq!(dsl_model.initial_counts(scale), sir.initial_counts(scale));
    }
}
