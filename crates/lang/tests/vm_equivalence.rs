//! Property tests: the bytecode VM is observationally equivalent to the
//! tree-walking interpreter.
//!
//! Two regimes are checked over randomly generated expressions:
//!
//! * expressions without `^` must evaluate **bit-identically** — the
//!   lowering preserves the tree's exact operation order, and the whole
//!   workspace relies on that for bit-exact DSL-vs-native trajectory
//!   comparisons; this regime includes the PR 3 comparison and guarded
//!   `Select` shapes (the VM evaluates both branches and selects
//!   branch-free, the tree only the taken branch — the selected value is
//!   identical);
//! * expressions with `^` may differ by an ulp where the power-by-constant
//!   strength reduction (`x^2 → x·x`) replaces `powf`, so they are compared
//!   with a tight relative tolerance.
//!
//! On top of the random sweep, every rule of every registry scenario must
//! lower to a program that matches its tree bit for bit across random
//! states and parameters, and the `DslDrift` one-pass VM evaluation must
//! reproduce the rule-by-rule tree evaluation of the drift exactly.

use mfu_core::drift::ImpreciseDrift;
use mfu_lang::ast::CmpOp;
use mfu_lang::expr::{Builtin, CompiledExpr};
use mfu_lang::scenarios::ScenarioRegistry;
use mfu_lang::vm::{ProgramSet, RateProgram};
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::StateVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch widths exercised by the batched-vs-scalar property suite: 1 (the
/// overhead-gated degenerate batch), small odd widths that defeat any
/// accidental power-of-two assumptions, and one slab-tier-crossing width.
const BATCH_WIDTHS: [usize; 5] = [1, 2, 3, 7, 64];

const DIM: usize = 3;
const PARAMS: usize = 2;

/// Draws a random expression of the given depth budget. `allow_pow` gates
/// the `^` operator (whose strength reduction is allowed to differ from
/// `powf` by an ulp).
fn random_expr(rng: &mut StdRng, depth: usize, allow_pow: bool) -> CompiledExpr {
    let leaf = depth == 0 || rng.gen::<u32>() % 4 == 0;
    if leaf {
        match rng.gen::<u32>() % 3 {
            0 => CompiledExpr::Const(0.1 + 1.9 * rng.gen::<f64>()),
            1 => CompiledExpr::Species((rng.gen::<u32>() as usize) % DIM),
            _ => CompiledExpr::Param((rng.gen::<u32>() as usize) % PARAMS),
        }
    } else {
        let kind = rng.gen::<u32>() % if allow_pow { 11 } else { 10 };
        let a = Box::new(random_expr(rng, depth - 1, allow_pow));
        let b = Box::new(random_expr(rng, depth.saturating_sub(2), allow_pow));
        match kind {
            0 => CompiledExpr::Add(a, b),
            1 => CompiledExpr::Sub(a, b),
            2 => CompiledExpr::Mul(a, b),
            3 => CompiledExpr::Div(a, b),
            4 => CompiledExpr::Neg(a),
            5 => CompiledExpr::Call1(Builtin::Abs, a),
            6 => CompiledExpr::Call2(Builtin::Max, a, b),
            7 => CompiledExpr::Call2(Builtin::Min, a, b),
            8 => CompiledExpr::Cmp(random_cmp(rng), a, b),
            9 => {
                // a guarded selection whose condition is itself a random
                // comparison — the PR 3 `when … { } else { }` shape
                let cond = Box::new(CompiledExpr::Cmp(
                    random_cmp(rng),
                    Box::new(random_expr(rng, depth.saturating_sub(2), allow_pow)),
                    Box::new(random_expr(rng, depth.saturating_sub(2), allow_pow)),
                ));
                CompiledExpr::Select(cond, a, b)
            }
            _ => {
                // integer exponents hit the strength reduction, fractional
                // ones keep powf
                let exponent = if rng.gen::<bool>() {
                    CompiledExpr::Const((rng.gen::<u32>() % 5) as f64)
                } else {
                    CompiledExpr::Const(0.25 + rng.gen::<f64>())
                };
                CompiledExpr::Pow(a, Box::new(exponent))
            }
        }
    }
}

fn random_cmp(rng: &mut StdRng) -> CmpOp {
    match rng.gen::<u32>() % 6 {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        _ => CmpOp::Ne,
    }
}

fn random_point(rng: &mut StdRng) -> (StateVec, Vec<f64>) {
    let x: StateVec = (0..DIM).map(|_| 0.05 + rng.gen::<f64>()).collect();
    let theta: Vec<f64> = (0..PARAMS).map(|_| 0.1 + 2.0 * rng.gen::<f64>()).collect();
    (x, theta)
}

#[test]
fn vm_matches_tree_bit_for_bit_without_pow() {
    let mut rng = StdRng::seed_from_u64(0xB17C0DE);
    for case in 0..300 {
        let expr = random_expr(&mut rng, 6, false);
        let program = RateProgram::compile(&expr);
        for _ in 0..16 {
            let (x, theta) = random_point(&mut rng);
            let tree = expr.eval(&x, &theta);
            let vm = program.eval(&x, &theta);
            assert_eq!(
                tree.to_bits(),
                vm.to_bits(),
                "case {case}: tree {tree} != vm {vm} for {expr:?}"
            );
        }
    }
}

#[test]
fn vm_matches_tree_within_ulps_with_pow() {
    let mut rng = StdRng::seed_from_u64(0x9E37);
    for case in 0..300 {
        let expr = random_expr(&mut rng, 6, true);
        let program = RateProgram::compile(&expr);
        for _ in 0..16 {
            let (x, theta) = random_point(&mut rng);
            let tree = expr.eval(&x, &theta);
            let vm = program.eval(&x, &theta);
            if !tree.is_finite() {
                assert!(
                    !vm.is_finite(),
                    "case {case}: tree non-finite but vm = {vm}"
                );
                continue;
            }
            let tolerance = 1e-12 * tree.abs().max(1.0);
            assert!(
                (tree - vm).abs() <= tolerance,
                "case {case}: tree {tree} vs vm {vm} for {expr:?}"
            );
        }
    }
}

#[test]
fn vm_support_matches_tree_references() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..200 {
        let expr = random_expr(&mut rng, 5, true);
        let program = RateProgram::compile(&expr);
        assert_eq!(
            !program.species_support().is_empty(),
            expr.references_species(),
            "support/references mismatch for {expr:?}"
        );
        for &i in program.species_support() {
            assert!(i < DIM);
        }
    }
}

#[test]
fn every_scenario_rule_lowers_to_an_exact_program() {
    let registry = ScenarioRegistry::with_builtins();
    let mut rng = StdRng::seed_from_u64(7);
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        let dim = model.dim();
        let box_dim = model.params().dim();
        for rule in model.rules() {
            let program = RateProgram::compile(&rule.rate);
            for _ in 0..64 {
                let x: StateVec = (0..dim).map(|_| rng.gen::<f64>()).collect();
                let theta: Vec<f64> = (0..box_dim).map(|_| 0.2 + 4.0 * rng.gen::<f64>()).collect();
                let tree = rule.rate.eval(&x, &theta);
                let vm = program.eval(&x, &theta);
                assert_eq!(
                    tree.to_bits(),
                    vm.to_bits(),
                    "scenario `{}`, rule `{}`",
                    scenario.name(),
                    rule.name
                );
            }
        }
    }
}

/// Draws `width` lane-varying points as SoA batches (states + per-lane
/// thetas), returning the AoS originals for the scalar reference.
#[allow(clippy::type_complexity)]
fn random_lanes(
    rng: &mut StdRng,
    width: usize,
) -> (Vec<StateVec>, Vec<Vec<f64>>, SoaBatch, SoaBatch) {
    let mut states = Vec::with_capacity(width);
    let mut thetas = Vec::with_capacity(width);
    for _ in 0..width {
        let (x, theta) = random_point(rng);
        states.push(x);
        thetas.push(theta);
    }
    let x_batch = SoaBatch::from_lanes(&states.iter().map(StateVec::as_slice).collect::<Vec<_>>());
    let theta_batch = SoaBatch::from_lanes(&thetas);
    (states, thetas, x_batch, theta_batch)
}

#[test]
fn batched_lanes_match_scalar_eval_bit_for_bit_per_lane_thetas() {
    // `allow_pow = true` is fine here: scalar and batched run the *same
    // lowered program*, so even the strength-reduced ops must agree bit for
    // bit — the ulp tolerance is only between program and tree.
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    for case in 0..200 {
        let expr = random_expr(&mut rng, 6, true);
        let program = RateProgram::compile(&expr);
        for width in BATCH_WIDTHS {
            let (states, thetas, x_batch, theta_batch) = random_lanes(&mut rng, width);
            let mut out = vec![0.0_f64; width];
            program.eval_batch_into(&x_batch, BatchTheta::PerLane(&theta_batch), &mut out);
            for l in 0..width {
                let scalar = program.eval(&states[l], &thetas[l]);
                assert_eq!(
                    scalar.to_bits(),
                    out[l].to_bits(),
                    "case {case}, width {width}, lane {l}: scalar {scalar} != batched {} for {expr:?}",
                    out[l]
                );
            }
        }
    }
}

#[test]
fn batched_lanes_match_scalar_eval_bit_for_bit_shared_theta() {
    let mut rng = StdRng::seed_from_u64(0x5AA5);
    for case in 0..200 {
        let expr = random_expr(&mut rng, 6, true);
        let program = RateProgram::compile(&expr);
        for width in BATCH_WIDTHS {
            let (states, _, x_batch, _) = random_lanes(&mut rng, width);
            let (_, shared_theta) = random_point(&mut rng);
            let mut out = vec![0.0_f64; width];
            program.eval_batch_into(&x_batch, BatchTheta::Shared(&shared_theta), &mut out);
            for l in 0..width {
                let scalar = program.eval(&states[l], &shared_theta);
                assert_eq!(
                    scalar.to_bits(),
                    out[l].to_bits(),
                    "case {case}, width {width}, lane {l} for {expr:?}"
                );
            }
        }
    }
}

#[test]
fn batched_select_propagates_nan_payloads_like_scalar() {
    // when x₀ > x₁ { x₀ } else { x₁ } — lowered to a branch-free Select.
    // Lanes feed distinct NaN payloads through both branches; the batched
    // conditional move must carry the exact bit pattern the scalar Select
    // picks, lane by lane.
    let expr = CompiledExpr::Select(
        Box::new(CompiledExpr::Cmp(
            CmpOp::Gt,
            Box::new(CompiledExpr::Species(0)),
            Box::new(CompiledExpr::Species(1)),
        )),
        Box::new(CompiledExpr::Species(0)),
        Box::new(CompiledExpr::Species(1)),
    );
    let program = RateProgram::compile(&expr);
    let payload = |tag: u64| f64::from_bits(f64::NAN.to_bits() ^ tag);
    // one NaN lane per operand side, one all-NaN lane, one finite control
    let states = [
        StateVec::from([payload(0x11), 2.0, 0.0]),
        StateVec::from([2.0, payload(0x22), 0.0]),
        StateVec::from([payload(0x33), payload(0x44), 0.0]),
        StateVec::from([1.0, 2.0, 0.0]),
    ];
    let x_batch = SoaBatch::from_lanes(&states.iter().map(StateVec::as_slice).collect::<Vec<_>>());
    let theta: Vec<f64> = vec![0.0, 0.0];
    let mut out = vec![0.0_f64; states.len()];
    program.eval_batch_into(&x_batch, BatchTheta::Shared(&theta), &mut out);
    for (l, x) in states.iter().enumerate() {
        let scalar = program.eval(x, &theta);
        assert_eq!(
            scalar.to_bits(),
            out[l].to_bits(),
            "lane {l}: scalar bits {:#x} != batched bits {:#x}",
            scalar.to_bits(),
            out[l].to_bits()
        );
    }
    // the comparison with a NaN operand is false, so the else-branch payload
    // must come through verbatim on the NaN lanes
    assert_eq!(out[1].to_bits(), payload(0x22).to_bits());
    assert_eq!(out[2].to_bits(), payload(0x44).to_bits());
    assert_eq!(out[3], 2.0);
}

#[test]
fn program_set_batch_rows_match_scalar_eval_into_across_registry() {
    let registry = ScenarioRegistry::with_builtins();
    let mut rng = StdRng::seed_from_u64(0x0B5E55ED);
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        let set = ProgramSet::new(
            model
                .rules()
                .iter()
                .map(|rule| RateProgram::compile(&rule.rate))
                .collect(),
        );
        let dim = model.dim();
        let box_dim = model.params().dim();
        for width in BATCH_WIDTHS {
            let states: Vec<StateVec> = (0..width)
                .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
                .collect();
            let thetas: Vec<Vec<f64>> = (0..width)
                .map(|_| (0..box_dim).map(|_| 0.2 + 4.0 * rng.gen::<f64>()).collect())
                .collect();
            let x_batch =
                SoaBatch::from_lanes(&states.iter().map(StateVec::as_slice).collect::<Vec<_>>());
            let theta_batch = SoaBatch::from_lanes(&thetas);
            let mut batched = vec![0.0_f64; set.len() * width];
            set.eval_batch_into(&x_batch, BatchTheta::PerLane(&theta_batch), &mut batched);
            let mut scalar = vec![0.0_f64; set.len()];
            for l in 0..width {
                set.eval_into(&states[l], &thetas[l], &mut scalar);
                for k in 0..set.len() {
                    assert_eq!(
                        scalar[k].to_bits(),
                        batched[k * width + l].to_bits(),
                        "scenario `{}`, rule {k}, width {width}, lane {l}",
                        scenario.name()
                    );
                }
            }
        }
    }
}

#[test]
fn dsl_drift_one_pass_vm_matches_rule_by_rule_trees() {
    let registry = ScenarioRegistry::with_builtins();
    let mut rng = StdRng::seed_from_u64(99);
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        for drift in [model.drift(), model.reduced_drift()] {
            let dim = drift.dim();
            let box_dim = model.params().dim();
            let mut out = StateVec::zeros(dim);
            for _ in 0..32 {
                let x: StateVec = (0..dim).map(|_| rng.gen::<f64>()).collect();
                let theta: Vec<f64> = (0..box_dim).map(|_| 0.2 + 4.0 * rng.gen::<f64>()).collect();
                drift.drift_into(&x, &theta, &mut out);
                // reference: accumulate rule-by-rule with the tree interpreter
                let mut expected = StateVec::zeros(dim);
                for rule in drift.rules() {
                    let r = rule.rate.eval(&x, &theta);
                    if r != 0.0 {
                        for (o, c) in expected.as_mut_slice().iter_mut().zip(rule.change.iter()) {
                            *o += r * c;
                        }
                    }
                }
                for k in 0..dim {
                    assert_eq!(
                        expected[k].to_bits(),
                        out[k].to_bits(),
                        "scenario `{}` (reduced: {}) coordinate {k}",
                        scenario.name(),
                        drift.is_reduced()
                    );
                }
            }
        }
    }
}
