//! Hand-written lexer for the model language.
//!
//! Whitespace separates tokens; `//` and `#` start line comments. Numbers
//! are unsigned decimal literals with optional fraction and exponent (`12`,
//! `0.5`, `1e-3`); a leading `-` is lexed as a separate [`TokenKind::Minus`]
//! and handled by the expression parser as unary negation.

use crate::diagnostics::{Diagnostic, LangError, Span};
use crate::token::{Token, TokenKind};

/// Tokenises `source`, appending a synthetic [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on the first unrecognised character or
/// malformed number literal, with a span pointing at it.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LangError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'#' => pos = skip_line(bytes, pos),
            b'/' if bytes.get(pos + 1) == Some(&b'/') => pos = skip_line(bytes, pos),
            b'-' if bytes.get(pos + 1) == Some(&b'>') => {
                tokens.push(Token {
                    kind: TokenKind::Arrow,
                    span: Span::new(pos, pos + 2),
                });
                pos += 2;
            }
            b'<' | b'>' | b'=' | b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                let kind = match b {
                    b'<' => TokenKind::Le,
                    b'>' => TokenKind::Ge,
                    b'=' => TokenKind::EqEq,
                    _ => TokenKind::Neq,
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(pos, pos + 2),
                });
                pos += 2;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let word = &source[start..pos];
                let kind = match word {
                    "model" => TokenKind::KwModel,
                    "species" => TokenKind::KwSpecies,
                    "param" => TokenKind::KwParam,
                    "const" => TokenKind::KwConst,
                    "rule" => TokenKind::KwRule,
                    "init" => TokenKind::KwInit,
                    "in" => TokenKind::KwIn,
                    "let" => TokenKind::KwLet,
                    "when" => TokenKind::KwWhen,
                    "else" => TokenKind::KwElse,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, pos),
                });
            }
            b'0'..=b'9' | b'.' => {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                if pos < bytes.len() && bytes[pos] == b'.' {
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                if pos < bytes.len() && (bytes[pos] == b'e' || bytes[pos] == b'E') {
                    let mut exp_end = pos + 1;
                    if exp_end < bytes.len() && (bytes[exp_end] == b'+' || bytes[exp_end] == b'-') {
                        exp_end += 1;
                    }
                    let digits_start = exp_end;
                    while exp_end < bytes.len() && bytes[exp_end].is_ascii_digit() {
                        exp_end += 1;
                    }
                    if exp_end > digits_start {
                        pos = exp_end;
                    }
                }
                let span = Span::new(start, pos);
                let text = &source[start..pos];
                let value: f64 = text.parse().map_err(|_| {
                    LangError::Lex(Diagnostic::new(
                        format!("malformed number literal `{text}`"),
                        span,
                        source,
                    ))
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(value),
                    span,
                });
            }
            _ => {
                let kind = match b {
                    b';' => TokenKind::Semi,
                    b':' => TokenKind::Colon,
                    b',' => TokenKind::Comma,
                    b'=' => TokenKind::Equals,
                    b'@' => TokenKind::At,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'*' => TokenKind::Star,
                    b'/' => TokenKind::Slash,
                    b'^' => TokenKind::Caret,
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'<' => TokenKind::Lt,
                    b'>' => TokenKind::Gt,
                    _ => {
                        // decode the full (possibly multi-byte) character so
                        // the message and span cover it exactly
                        let ch = source[pos..]
                            .chars()
                            .next()
                            .expect("pos is a char boundary");
                        return Err(LangError::Lex(Diagnostic::new(
                            format!("unexpected character `{ch}`"),
                            Span::new(pos, pos + ch.len_utf8()),
                            source,
                        )));
                    }
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(pos, pos + 1),
                });
                pos += 1;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(tokens)
}

fn skip_line(bytes: &[u8], mut pos: usize) -> usize {
    while pos < bytes.len() && bytes[pos] != b'\n' {
        pos += 1;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_punctuation_and_identifiers() {
        let ks = kinds("model m; rule r: S + I -> 2 I @ beta * S;");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwModel,
                TokenKind::Ident("m".into()),
                TokenKind::Semi,
                TokenKind::KwRule,
                TokenKind::Ident("r".into()),
                TokenKind::Colon,
                TokenKind::Ident("S".into()),
                TokenKind::Plus,
                TokenKind::Ident("I".into()),
                TokenKind::Arrow,
                TokenKind::Number(2.0),
                TokenKind::Ident("I".into()),
                TokenKind::At,
                TokenKind::Ident("beta".into()),
                TokenKind::Star,
                TokenKind::Ident("S".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_with_fraction_and_exponent() {
        assert_eq!(
            kinds("0.5 12 1e-3 2.5E2"),
            vec![
                TokenKind::Number(0.5),
                TokenKind::Number(12.0),
                TokenKind::Number(1e-3),
                TokenKind::Number(250.0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("# a comment\nconst a = 1; // trailing\nconst b = 2;");
        assert_eq!(
            ks.iter()
                .filter(|k| matches!(k, TokenKind::KwConst))
                .count(),
            2
        );
    }

    #[test]
    fn spans_point_into_the_source() {
        let source = "param beta in [1, 10];";
        let tokens = tokenize(source).unwrap();
        let beta = &tokens[1];
        assert_eq!(&source[beta.span.start..beta.span.end], "beta");
    }

    #[test]
    fn unexpected_character_is_a_lex_error() {
        let err = tokenize("species S?").unwrap_err();
        match err {
            LangError::Lex(d) => {
                assert!(d.message.contains('?'));
                assert_eq!(d.position.line, 1);
                assert_eq!(d.position.col, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_ascii_character_is_reported_whole() {
        let source = "rule g: X -> 0 @ β * X;";
        let err = tokenize(source).unwrap_err();
        match err {
            LangError::Lex(d) => {
                assert!(d.message.contains('β'), "message: {}", d.message);
                assert_eq!(&source[d.span.start..d.span.end], "β");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn comparison_operators_and_braces() {
        assert_eq!(
            kinds("< <= > >= == != { }"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Neq,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn guard_keywords_are_lexed() {
        assert_eq!(
            kinds("when Q > 0 { 1 } else { 0 }")[..3],
            [
                TokenKind::KwWhen,
                TokenKind::Ident("Q".into()),
                TokenKind::Gt,
            ]
        );
        assert_eq!(kinds("let x = 1;")[0], TokenKind::KwLet);
        assert!(kinds("else").contains(&TokenKind::KwElse));
    }

    #[test]
    fn bare_bang_is_a_lex_error() {
        let err = tokenize("rule g: X -> 0 @ !X;").unwrap_err();
        match err {
            LangError::Lex(d) => assert!(d.message.contains('!')),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn minus_before_digit_stays_separate() {
        assert_eq!(
            kinds("-3"),
            vec![TokenKind::Minus, TokenKind::Number(3.0), TokenKind::Eof]
        );
    }
}
