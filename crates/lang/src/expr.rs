//! Compiled arithmetic expressions.
//!
//! [`crate::validate`] resolves every identifier of an AST expression to a
//! species index, a parameter index or an inlined constant, producing a
//! [`CompiledExpr`] that evaluates over `(state, params)` without any name
//! lookup. The representation is a small tree of [`CompiledExpr`] nodes —
//! cheap to clone into the `Send + Sync` rate closures of
//! [`mfu_ctmc::transition::TransitionClass`].

use mfu_num::StateVec;

use crate::ast::CmpOp;

/// Builtin functions callable from rate expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `min(a, b)` — pointwise minimum.
    Min,
    /// `max(a, b)` — pointwise maximum.
    Max,
    /// `abs(x)` — absolute value.
    Abs,
    /// `exp(x)` — natural exponential.
    Exp,
    /// `log(x)` — natural logarithm.
    Log,
    /// `sqrt(x)` — square root.
    Sqrt,
    /// `pow(a, b)` — `a` raised to `b` (same as `a ^ b`).
    Pow,
}

impl Builtin {
    /// Looks a builtin up by its surface name.
    pub fn by_name(name: &str) -> Option<(Builtin, usize)> {
        match name {
            "min" => Some((Builtin::Min, 2)),
            "max" => Some((Builtin::Max, 2)),
            "abs" => Some((Builtin::Abs, 1)),
            "exp" => Some((Builtin::Exp, 1)),
            "log" => Some((Builtin::Log, 1)),
            "sqrt" => Some((Builtin::Sqrt, 1)),
            "pow" => Some((Builtin::Pow, 2)),
            _ => None,
        }
    }
}

/// A name-free expression over `(state, params)`.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// A literal or folded constant.
    Const(f64),
    /// The value of state coordinate `i` (a species fraction).
    Species(usize),
    /// The value of parameter coordinate `j`.
    Param(usize),
    /// Negation.
    Neg(Box<CompiledExpr>),
    /// Sum.
    Add(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Difference.
    Sub(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Product.
    Mul(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Quotient.
    Div(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Power.
    Pow(Box<CompiledExpr>, Box<CompiledExpr>),
    /// Builtin call with one argument.
    Call1(Builtin, Box<CompiledExpr>),
    /// Builtin call with two arguments.
    Call2(Builtin, Box<CompiledExpr>, Box<CompiledExpr>),
    /// Comparison: `1.0` when it holds, `0.0` otherwise.
    Cmp(CmpOp, Box<CompiledExpr>, Box<CompiledExpr>),
    /// Guarded selection `when cond { then } else { els }`: evaluates
    /// `then` when the condition is non-zero, `els` otherwise. The tree
    /// interpreter only evaluates the taken branch; the VM lowering
    /// evaluates both and selects branch-free — the *selected* value is
    /// identical either way.
    Select(Box<CompiledExpr>, Box<CompiledExpr>, Box<CompiledExpr>),
}

impl CompiledExpr {
    /// Evaluates the expression at a state and parameter vector.
    ///
    /// Out-of-range indices cannot occur on expressions produced by
    /// [`crate::validate`], whose symbol tables guarantee the invariant.
    pub fn eval(&self, x: &StateVec, theta: &[f64]) -> f64 {
        match self {
            CompiledExpr::Const(v) => *v,
            CompiledExpr::Species(i) => x[*i],
            CompiledExpr::Param(j) => theta[*j],
            CompiledExpr::Neg(e) => -e.eval(x, theta),
            CompiledExpr::Add(a, b) => a.eval(x, theta) + b.eval(x, theta),
            CompiledExpr::Sub(a, b) => a.eval(x, theta) - b.eval(x, theta),
            CompiledExpr::Mul(a, b) => a.eval(x, theta) * b.eval(x, theta),
            CompiledExpr::Div(a, b) => a.eval(x, theta) / b.eval(x, theta),
            CompiledExpr::Pow(a, b) => eval_pow(a.eval(x, theta), b, x, theta),
            CompiledExpr::Call1(f, a) => {
                let a = a.eval(x, theta);
                match f {
                    Builtin::Abs => a.abs(),
                    Builtin::Exp => a.exp(),
                    Builtin::Log => a.ln(),
                    Builtin::Sqrt => a.sqrt(),
                    // arity is fixed at resolution time
                    Builtin::Min | Builtin::Max | Builtin::Pow => {
                        unreachable!("binary builtin with one argument")
                    }
                }
            }
            CompiledExpr::Call2(Builtin::Pow, a, b) => eval_pow(a.eval(x, theta), b, x, theta),
            CompiledExpr::Call2(f, a, b) => {
                let a = a.eval(x, theta);
                let b = b.eval(x, theta);
                match f {
                    Builtin::Min => a.min(b),
                    Builtin::Max => a.max(b),
                    Builtin::Pow => unreachable!("pow handled above"),
                    Builtin::Abs | Builtin::Exp | Builtin::Log | Builtin::Sqrt => {
                        unreachable!("unary builtin with two arguments")
                    }
                }
            }
            CompiledExpr::Cmp(op, a, b) => {
                if op.holds(a.eval(x, theta), b.eval(x, theta)) {
                    1.0
                } else {
                    0.0
                }
            }
            CompiledExpr::Select(cond, then, els) => {
                if cond.eval(x, theta) != 0.0 {
                    then.eval(x, theta)
                } else {
                    els.eval(x, theta)
                }
            }
        }
    }

    /// Returns the constant value when the expression references neither
    /// species nor parameters.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            CompiledExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns a copy of the expression with every reference to species
    /// `index` replaced by `replacement`.
    ///
    /// Used by the reduced-drift compilation to eliminate the conserved
    /// species at compile time (`x_last → total − Σ x_i`), so reduced
    /// rates evaluate directly on the reduced state without reconstructing
    /// the full state vector per call.
    pub fn substitute_species(&self, index: usize, replacement: &CompiledExpr) -> CompiledExpr {
        use CompiledExpr as E;
        let sub = |e: &E| Box::new(e.substitute_species(index, replacement));
        match self {
            E::Species(i) if *i == index => replacement.clone(),
            E::Const(_) | E::Species(_) | E::Param(_) => self.clone(),
            E::Neg(a) => E::Neg(sub(a)),
            E::Add(a, b) => E::Add(sub(a), sub(b)),
            E::Sub(a, b) => E::Sub(sub(a), sub(b)),
            E::Mul(a, b) => E::Mul(sub(a), sub(b)),
            E::Div(a, b) => E::Div(sub(a), sub(b)),
            E::Pow(a, b) => E::Pow(sub(a), sub(b)),
            E::Call1(f, a) => E::Call1(*f, sub(a)),
            E::Call2(f, a, b) => E::Call2(*f, sub(a), sub(b)),
            E::Cmp(op, a, b) => E::Cmp(*op, sub(a), sub(b)),
            E::Select(c, t, e) => E::Select(sub(c), sub(t), sub(e)),
        }
    }

    /// Returns `true` when any node references a species coordinate.
    pub fn references_species(&self) -> bool {
        match self {
            CompiledExpr::Species(_) => true,
            CompiledExpr::Const(_) | CompiledExpr::Param(_) => false,
            CompiledExpr::Neg(e) | CompiledExpr::Call1(_, e) => e.references_species(),
            CompiledExpr::Add(a, b)
            | CompiledExpr::Sub(a, b)
            | CompiledExpr::Mul(a, b)
            | CompiledExpr::Div(a, b)
            | CompiledExpr::Pow(a, b)
            | CompiledExpr::Cmp(_, a, b)
            | CompiledExpr::Call2(_, a, b) => a.references_species() || b.references_species(),
            CompiledExpr::Select(c, t, e) => {
                c.references_species() || t.references_species() || e.references_species()
            }
        }
    }
}

/// Exponent ceiling of the `x ^ n` strength reduction shared by the tree
/// interpreter, the constant folder and the VM lowering: an integer
/// constant exponent in `2..=MAX_UNROLLED_POW` evaluates as left-to-right
/// repeated multiplication in *every* engine, so `^` keeps the bit-exact
/// lowering contract (a lone `powf` call in one engine would drift by an
/// ulp from the unrolled products the VM emits). Exponents `0` and `1` are
/// exact under IEEE `pow` anyway; anything larger or fractional uses
/// `powf` everywhere.
pub(crate) const MAX_UNROLLED_POW: f64 = 4.0;

/// `base ^ n` by left-to-right repeated multiplication — the shared
/// reduction for integer `n` in `2..=MAX_UNROLLED_POW` (callers check the
/// range; the VM's `PowInt` op runs this exact loop per lane).
#[inline]
pub(crate) fn unrolled_pow(base: f64, n: u16) -> f64 {
    let mut acc = base;
    for _ in 1..n {
        acc *= base;
    }
    acc
}

/// `true` when the exponent takes the unrolled-multiplication path.
#[inline]
pub(crate) fn unrolls(n: f64) -> bool {
    n.fract() == 0.0 && (2.0..=MAX_UNROLLED_POW).contains(&n)
}

/// Evaluates `base ^ exponent` with the shared strength reduction: a
/// small-integer constant exponent multiplies out exactly like the VM's
/// `PowInt`; everything else goes through `powf`.
#[inline]
fn eval_pow(base: f64, exponent: &CompiledExpr, x: &StateVec, theta: &[f64]) -> f64 {
    if let CompiledExpr::Const(n) = exponent {
        if unrolls(*n) {
            return unrolled_pow(base, *n as u16);
        }
    }
    base.powf(exponent.eval(x, theta))
}

/// Folds `a ^ b` for constants with the same reduction as [`eval_pow`].
fn fold_pow(a: f64, b: f64) -> f64 {
    if unrolls(b) {
        unrolled_pow(a, b as u16)
    } else {
        a.powf(b)
    }
}

/// Folds constant subtrees bottom-up. Folding performs exactly the
/// operation the interpreter would have executed at run time, so it never
/// changes a result; a `Select` with a constant condition reduces to its
/// taken branch, and a constant comparison reduces to its `0`/`1`
/// indicator value.
///
/// This is the *single* folding implementation of the crate, shared by
/// [`crate::validate`] (after name resolution) and by the VM lowering in
/// [`crate::vm`] — one place to define guard/comparison semantics, so the
/// two stages can never disagree and break the bit-exactness contract
/// between the tree interpreter and the bytecode engine.
pub(crate) fn fold_constants(expr: &CompiledExpr) -> CompiledExpr {
    use CompiledExpr as E;
    let both = |a: &E, b: &E| -> (E, E) { (fold_constants(a), fold_constants(b)) };
    match expr {
        E::Const(_) | E::Species(_) | E::Param(_) => expr.clone(),
        E::Neg(a) => match fold_constants(a) {
            E::Const(v) => E::Const(-v),
            a => E::Neg(Box::new(a)),
        },
        E::Add(a, b) => match both(a, b) {
            (E::Const(a), E::Const(b)) => E::Const(a + b),
            (a, b) => E::Add(Box::new(a), Box::new(b)),
        },
        E::Sub(a, b) => match both(a, b) {
            (E::Const(a), E::Const(b)) => E::Const(a - b),
            (a, b) => E::Sub(Box::new(a), Box::new(b)),
        },
        E::Mul(a, b) => match both(a, b) {
            (E::Const(a), E::Const(b)) => E::Const(a * b),
            (a, b) => E::Mul(Box::new(a), Box::new(b)),
        },
        E::Div(a, b) => match both(a, b) {
            (E::Const(a), E::Const(b)) => E::Const(a / b),
            (a, b) => E::Div(Box::new(a), Box::new(b)),
        },
        E::Pow(a, b) => match both(a, b) {
            (E::Const(a), E::Const(b)) => E::Const(fold_pow(a, b)),
            (a, b) => E::Pow(Box::new(a), Box::new(b)),
        },
        E::Call1(f, a) => match fold_constants(a) {
            E::Const(v) => E::Const(match f {
                Builtin::Abs => v.abs(),
                Builtin::Exp => v.exp(),
                Builtin::Log => v.ln(),
                Builtin::Sqrt => v.sqrt(),
                _ => unreachable!("binary builtin with one argument"),
            }),
            a => E::Call1(*f, Box::new(a)),
        },
        E::Call2(f, a, b) => match both(a, b) {
            (E::Const(a), E::Const(b)) => E::Const(match f {
                Builtin::Min => a.min(b),
                Builtin::Max => a.max(b),
                Builtin::Pow => fold_pow(a, b),
                _ => unreachable!("unary builtin with two arguments"),
            }),
            (a, b) => E::Call2(*f, Box::new(a), Box::new(b)),
        },
        E::Cmp(op, a, b) => match both(a, b) {
            (E::Const(a), E::Const(b)) => E::Const(f64::from(op.holds(a, b))),
            (a, b) => E::Cmp(*op, Box::new(a), Box::new(b)),
        },
        E::Select(c, t, e) => match fold_constants(c) {
            // a constant condition picks its branch exactly as the
            // interpreter would
            E::Const(v) => {
                if v != 0.0 {
                    fold_constants(t)
                } else {
                    fold_constants(e)
                }
            }
            c => E::Select(
                Box::new(c),
                Box::new(fold_constants(t)),
                Box::new(fold_constants(e)),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> StateVec {
        StateVec::from([0.7, 0.3])
    }

    #[test]
    fn evaluates_arithmetic() {
        // (a + theta0 * I) * S  with a = 0.1, at (S, I) = (0.7, 0.3), theta0 = 2
        let expr = CompiledExpr::Mul(
            Box::new(CompiledExpr::Add(
                Box::new(CompiledExpr::Const(0.1)),
                Box::new(CompiledExpr::Mul(
                    Box::new(CompiledExpr::Param(0)),
                    Box::new(CompiledExpr::Species(1)),
                )),
            )),
            Box::new(CompiledExpr::Species(0)),
        );
        assert!((expr.eval(&x(), &[2.0]) - 0.49).abs() < 1e-12);
    }

    #[test]
    fn evaluates_builtins_and_powers() {
        let e = CompiledExpr::Call2(
            Builtin::Max,
            Box::new(CompiledExpr::Const(0.0)),
            Box::new(CompiledExpr::Sub(
                Box::new(CompiledExpr::Species(0)),
                Box::new(CompiledExpr::Const(1.0)),
            )),
        );
        assert_eq!(e.eval(&x(), &[]), 0.0);
        let p = CompiledExpr::Pow(
            Box::new(CompiledExpr::Species(1)),
            Box::new(CompiledExpr::Const(2.0)),
        );
        assert!((p.eval(&x(), &[]) - 0.09).abs() < 1e-12);
        let s = CompiledExpr::Call1(Builtin::Sqrt, Box::new(CompiledExpr::Const(9.0)));
        assert_eq!(s.eval(&x(), &[]), 3.0);
    }

    #[test]
    fn substitution_replaces_only_the_target_species() {
        // (theta0 * S1) + S0  with S1 := 1 − S0
        let expr = CompiledExpr::Add(
            Box::new(CompiledExpr::Mul(
                Box::new(CompiledExpr::Param(0)),
                Box::new(CompiledExpr::Species(1)),
            )),
            Box::new(CompiledExpr::Species(0)),
        );
        let replacement = CompiledExpr::Sub(
            Box::new(CompiledExpr::Const(1.0)),
            Box::new(CompiledExpr::Species(0)),
        );
        let reduced = expr.substitute_species(1, &replacement);
        let x_red = StateVec::from([0.7]);
        // theta0 * (1 − 0.7) + 0.7 = 2 * 0.3 + 0.7
        assert!((reduced.eval(&x_red, &[2.0]) - 1.3).abs() < 1e-12);
        // the original is untouched
        assert!((expr.eval(&StateVec::from([0.7, 0.3]), &[2.0]) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn comparisons_evaluate_to_indicators() {
        let gt = CompiledExpr::Cmp(
            CmpOp::Gt,
            Box::new(CompiledExpr::Species(0)),
            Box::new(CompiledExpr::Const(0.5)),
        );
        assert_eq!(gt.eval(&x(), &[]), 1.0); // 0.7 > 0.5
        let le = CompiledExpr::Cmp(
            CmpOp::Le,
            Box::new(CompiledExpr::Species(1)),
            Box::new(CompiledExpr::Const(0.1)),
        );
        assert_eq!(le.eval(&x(), &[]), 0.0); // 0.3 <= 0.1 fails
        assert!(CmpOp::Ne.holds(f64::NAN, 1.0));
        assert!(!CmpOp::Eq.holds(f64::NAN, f64::NAN));
        assert_eq!(CmpOp::Ge.symbol(), ">=");
    }

    #[test]
    fn select_takes_the_guarded_branch() {
        // when S > 0 { 1 / S } else { 0 }
        let guarded = |s: f64| {
            let e = CompiledExpr::Select(
                Box::new(CompiledExpr::Cmp(
                    CmpOp::Gt,
                    Box::new(CompiledExpr::Species(0)),
                    Box::new(CompiledExpr::Const(0.0)),
                )),
                Box::new(CompiledExpr::Div(
                    Box::new(CompiledExpr::Const(1.0)),
                    Box::new(CompiledExpr::Species(0)),
                )),
                Box::new(CompiledExpr::Const(0.0)),
            );
            e.eval(&StateVec::from([s, 0.0]), &[])
        };
        assert_eq!(guarded(0.5), 2.0);
        assert_eq!(guarded(0.0), 0.0); // no division by zero leaks out
                                       // substitution and reference detection reach into all three slots
        let sel = CompiledExpr::Select(
            Box::new(CompiledExpr::Cmp(
                CmpOp::Lt,
                Box::new(CompiledExpr::Species(1)),
                Box::new(CompiledExpr::Const(1.0)),
            )),
            Box::new(CompiledExpr::Param(0)),
            Box::new(CompiledExpr::Const(0.0)),
        );
        assert!(sel.references_species());
        let substituted = sel.substitute_species(1, &CompiledExpr::Const(2.0));
        assert!(!substituted.references_species());
        assert_eq!(substituted.eval(&x(), &[9.0]), 0.0); // 2.0 < 1.0 fails
    }

    #[test]
    fn species_reference_detection() {
        assert!(CompiledExpr::Species(0).references_species());
        assert!(!CompiledExpr::Param(0).references_species());
        let nested = CompiledExpr::Neg(Box::new(CompiledExpr::Mul(
            Box::new(CompiledExpr::Const(2.0)),
            Box::new(CompiledExpr::Species(1)),
        )));
        assert!(nested.references_species());
        assert_eq!(CompiledExpr::Const(4.0).as_const(), Some(4.0));
        assert_eq!(CompiledExpr::Param(0).as_const(), None);
    }
}
