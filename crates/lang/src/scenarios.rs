//! Scenario registry: named, ready-to-compile DSL models.
//!
//! The registry ships the paper's case studies re-expressed in the DSL —
//! the SIR epidemic of Section V, the GPS/MAP queueing network of Section
//! VI (guarded service rates, MAP phase species and a shared `let`
//! subexpression), plus the SIS/SEIR variants of `mfu-models` — and two
//! scenarios that exist only here:
//!
//! * **botnet** — malware propagation in a machine fleet with an imprecise
//!   scanning rate: susceptible machines are compromised by active bots,
//!   dwell in a dormant state, get detected and patched, and patched
//!   machines eventually re-enter the vulnerable pool;
//! * **load_balancer** — a closed two-server system where an imprecise
//!   routing fraction splits dispatched jobs between a fast and a slow
//!   server.
//!
//! Each scenario records a recommended analysis horizon, an objective
//! coordinate (in reduced coordinates), a workload *family* tag and — where
//! a realistic population size exists — a default simulation scale, so
//! examples, tests and benches can drive every scenario through the same
//! pipeline and `mfu list-scenarios` can group them sensibly.
//!
//! # The Benaïm–Le Boudec interaction fleet
//!
//! The registry also ships the mean-field interaction models people
//! actually run at scale (see PAPERS.md): power-of-`d`-choices load
//! balancing ([`pod_choices_source`], registered for `d ∈ {2, 3}`),
//! CSMA/WiFi backoff ([`CSMA_SOURCE`]), TTL cache eviction
//! ([`TTL_CACHE_SOURCE`]), gossip/epidemic broadcast ([`GOSSIP_SOURCE`])
//! and a generated multi-station bike-sharing network
//! ([`bike_city_source`]) next to the paper's single-station `bike`. Each
//! carries at least one interval-valued parameter, so the differential
//! hull and Pontryagin bounds are non-trivial on every member, and a
//! `default_scale` documenting the population size the workload is
//! normally run at. `docs/SCENARIOS.md` catalogues the full fleet and the
//! cross-scenario accuracy/cost matrix.
//!
//! # Generated scenario families
//!
//! Beyond the hand-written sources, [`ring_source`] and [`grid_source`]
//! generate parametric migration networks — a closed cycle of `sites`
//! species and a `width × height` lattice with bidirectional hops — that
//! lower to tens or hundreds of mass-action rules. They exist to exercise
//! the simulator's large-`K` machinery (sparse dependency graphs,
//! tree-based and composition-rejection transition selection) at sizes the
//! paper's case studies never reach; [`ring_scenario`] / [`grid_scenario`]
//! wrap them with analysis defaults, and `ring_48` / `grid_6x6` instances
//! ship in [`ScenarioRegistry::with_builtins`] so every registry-driven
//! suite and bench covers them.

use std::collections::BTreeMap;

use crate::compile::CompiledModel;
use crate::diagnostics::LangError;

/// A named DSL model with analysis defaults.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    summary: String,
    source: String,
    horizon: f64,
    objective: usize,
    /// Recommended simulation scale `N` (None for scale-free scenarios).
    default_scale: Option<usize>,
    /// Workload family (`epidemic`, `queueing`, `mobility`, …).
    family: String,
}

impl Scenario {
    /// Creates a scenario from a DSL source.
    ///
    /// `objective` is the index (in *reduced* coordinates) of the state
    /// variable that examples and benches bound by default; `horizon` the
    /// recommended analysis horizon.
    pub fn new(
        name: impl Into<String>,
        summary: impl Into<String>,
        source: impl Into<String>,
        horizon: f64,
        objective: usize,
    ) -> Self {
        Scenario {
            name: name.into(),
            summary: summary.into(),
            source: source.into(),
            horizon,
            objective,
            default_scale: None,
            family: "custom".into(),
        }
    }

    /// Tags the scenario with a workload family (`epidemic`, `queueing`,
    /// `mobility`, `synthetic`, …). Families group related scenarios in
    /// `mfu list-scenarios` and the cross-scenario matrix; unset scenarios
    /// report `"custom"`.
    #[must_use]
    pub fn with_family(mut self, family: impl Into<String>) -> Self {
        self.family = family.into();
        self
    }

    /// Records a recommended simulation scale `N` — the population size
    /// the scenario is meant to be simulated at. Consumers that simulate
    /// without an explicit scale (e.g. `mfu run` without `--simulate`)
    /// use it as their default; analysis paths ignore it (the mean-field
    /// machinery is scale free).
    ///
    /// # Panics
    ///
    /// Panics if `scale == 0`.
    #[must_use]
    pub fn with_default_scale(mut self, scale: usize) -> Self {
        assert!(scale > 0, "a default scale must be positive");
        self.default_scale = Some(scale);
        self
    }

    /// Registry key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// The DSL source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Recommended analysis horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Reduced-coordinate index of the default objective variable.
    pub fn objective_coordinate(&self) -> usize {
        self.objective
    }

    /// Recommended simulation scale `N`, when the scenario declares one
    /// (the `sir_scaled` / `gps_scaled` families do; the classic
    /// scenarios are scale free).
    pub fn default_scale(&self) -> Option<usize> {
        self.default_scale
    }

    /// Workload family tag (`"custom"` when never set).
    pub fn family(&self) -> &str {
        &self.family
    }

    /// Parses, validates and compiles the scenario source.
    ///
    /// # Errors
    ///
    /// Propagates any [`LangError`] from the pipeline.
    pub fn compile(&self) -> Result<CompiledModel, LangError> {
        crate::compile(&self.source)
    }
}

/// A name-indexed collection of scenarios.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    scenarios: BTreeMap<String, Scenario>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// A registry pre-populated with the built-in scenarios
    /// (`bike`, `bike_city_4`, `botnet`, `csma`, `gossip`, `gps`,
    /// `gps_poisson`, `grid_6x6`, `load_balancer`, `pod_choices_d2`,
    /// `pod_choices_d3`, `ring_48`, `seir`, `sir`, `sir_1e6`, `sis`,
    /// `ttl_cache`).
    pub fn with_builtins() -> Self {
        let mut registry = ScenarioRegistry::new();
        for scenario in builtins() {
            registry.register(scenario);
        }
        registry
    }

    /// Registers (or replaces) a scenario, returning the previous entry
    /// under the same name, if any.
    pub fn register(&mut self, scenario: Scenario) -> Option<Scenario> {
        self.scenarios.insert(scenario.name.clone(), scenario)
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.get(name)
    }

    /// Compiles the named scenario.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::Backend`] for an unknown name, or any pipeline
    /// error from the scenario source.
    pub fn compile(&self, name: &str) -> Result<CompiledModel, LangError> {
        self.get(name)
            .ok_or_else(|| {
                LangError::Backend(format!(
                    "unknown scenario `{name}` (registered: {})",
                    self.names().join(", ")
                ))
            })?
            .compile()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.keys().map(String::as_str).collect()
    }

    /// Iterates over scenarios in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.values()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// The SIR epidemic of Section V of the paper (`SirModel::paper()` in
/// `mfu-models`): `a = 0.1`, `b = 5`, `c = 1`, `ϑ ∈ [1, 10]`,
/// `x(0) = (0.7, 0.3, 0)`.
pub const SIR_SOURCE: &str = "\
model sir;
// The SIR epidemic of Section V: external infections at rate a, imprecise
// person-to-person contact rate, recovery and loss of immunity.
species S, I, R;
param contact in [1, 10];
const a = 0.1;
const b = 5;
const c = 1;
rule infect:  S -> I @ (a + contact * I) * S;
rule recover: I -> R @ b * I;
rule wane:    R -> S @ c * R;
init S = 0.7, I = 0.3, R = 0;
";

/// The supercritical SIS variant (`SisModel::supercritical()`), written on
/// `(I, S)` so the reduced drift lives on the infected fraction.
pub const SIS_SOURCE: &str = "\
model sis;
// SIS epidemic: infected nodes recover straight back to susceptible. The
// infected fraction is listed first so the reduced drift is 1-dimensional
// on x_I with x_S = 1 - x_I.
species I, S;
param contact in [2, 4];
const b = 1;
rule infect:  S -> I @ contact * S * I;
rule recover: I -> S @ b * I;
init I = 0.2, S = 0.8;
";

/// The single-station bike-sharing model of Sections II–III
/// (`BikeStationModel::symmetric()`), written conservatively on
/// (occupied, empty) racks so the reduced drift is the paper's
/// one-dimensional occupancy dynamics. Both guarded rates reference only
/// `B`, so the reduced drift matches `BikeStationModel::drift` exactly
/// (`B < 1` is `E > 0` under conservation).
pub const BIKE_SOURCE: &str = "\
model bike;
// Single bike station: B occupied racks, E empty racks. Pick-ups and
// returns switch off at the boundaries, making the drift discontinuous —
// the paper's running example for imprecise parameters.
species B, E;
param pickup in [0.5, 1.5];
param giveback in [0.5, 1.5];
rule take:    B -> E @ when B > 0 { pickup } else { 0 };
rule restock: E -> B @ when B < 1 { giveback } else { 0 };
init B = 0.5, E = 0.5;
";

/// The SEIR variant (`SeirModel::sir_like()`): SIR parameters plus a
/// latency stage of rate `σ = 2`.
pub const SEIR_SOURCE: &str = "\
model seir;
// SEIR epidemic: newly infected nodes are exposed (infected but not yet
// infectious) and become infectious at rate sigma.
species S, E, I, R;
param contact in [1, 10];
const a = 0.1;
const sigma = 2;
const b = 5;
const c = 1;
rule expose:     S -> E @ (a + contact * I) * S;
rule infectious: E -> I @ sigma * E;
rule recover:    I -> R @ b * I;
rule wane:       R -> S @ c * R;
init S = 0.7, E = 0, I = 0.3, R = 0;
";

/// The two-class closed GPS queueing network of Section VI with MAP job
/// creation (`GpsModel::paper()` in `mfu-models`): each class has per-class
/// fractions of *dormant-active* applications (`D_i`, the MAP phase that
/// has not yet submitted) and *queued* jobs (`Q_i`); thinking applications
/// (`1 - D_i - Q_i`) are implicit, so the model is intentionally
/// non-conservative on `(D1, Q1, D2, Q2)`. The machine splits its capacity
/// between the queues by GPS weights through the shared `load`
/// subexpression, and the service rates carry the empty-queue guard
/// `when load > eps { … } else { 0 }` — the construct this scenario exists
/// to exercise.
pub const GPS_SOURCE: &str = "\
model gps;
// Closed two-class GPS queue with MAP arrivals (Section VI of the paper).
// D_i: fraction of class-i applications in the active MAP phase (waiting
// to submit); Q_i: fraction queued at the machine. Thinking fractions
// 1 - D_i - Q_i stay implicit.
species D1, Q1, D2, Q2;
param lambda1 in [1, 7];
param lambda2 in [2, 3];
const a1 = 1;        // class-1 MAP activation rate
const a2 = 2;        // class-2 MAP activation rate
const mu1 = 5;       // class-1 service rate
const mu2 = 1;       // class-2 service rate
const phi1 = 1;      // GPS weight of class 1
const phi2 = 1;      // GPS weight of class 2
const cap = 1;       // machine capacity per application
const eps = 1e-12;   // empty-queue guard threshold
// GPS load: the weighted backlog every service rate divides by.
let load = phi1 * max(Q1, 0) + phi2 * max(Q2, 0);
rule activate1: 0 -> D1  @ a1 * max(1 - D1 - Q1, 0);
rule create1:   D1 -> Q1 @ lambda1 * max(D1, 0);
rule serve1:    Q1 -> 0  @ when load > eps { cap * mu1 * phi1 * max(Q1, 0) / load } else { 0 };
rule activate2: 0 -> D2  @ a2 * max(1 - D2 - Q2, 0);
rule create2:   D2 -> Q2 @ lambda2 * max(D2, 0);
rule serve2:    Q2 -> 0  @ when load > eps { cap * mu2 * phi2 * max(Q2, 0) / load } else { 0 };
init D1 = 0.9, Q1 = 0.1, D2 = 0.9, Q2 = 0.1;
";

/// The Poisson-arrival variant of the GPS queue on `(Q1, Q2)` with the
/// mean-matched creation rates `λ'_i = 1/(1/a_i + 1/λ_i)` of the paper
/// (`GpsModel::poisson_*` in `mfu-models`).
pub const GPS_POISSON_SOURCE: &str = "\
model gps_poisson;
// Poisson-arrival GPS queue: applications submit directly at the
// mean-matched rates lambda'_i of Section VI.
species Q1, Q2;
param lambda1 in [0.5, 0.875];
param lambda2 in [1, 1.2];
const mu1 = 5;
const mu2 = 1;
const phi1 = 1;
const phi2 = 1;
const cap = 1;
const eps = 1e-12;
let load = phi1 * max(Q1, 0) + phi2 * max(Q2, 0);
rule create1: 0 -> Q1 @ lambda1 * max(1 - Q1, 0);
rule create2: 0 -> Q2 @ lambda2 * max(1 - Q2, 0);
rule serve1:  Q1 -> 0 @ when load > eps { cap * mu1 * phi1 * max(Q1, 0) / load } else { 0 };
rule serve2:  Q2 -> 0 @ when load > eps { cap * mu2 * phi2 * max(Q2, 0) / load } else { 0 };
init Q1 = 0.1, Q2 = 0.1;
";

/// Malware/botnet propagation with an imprecise scanning rate (not in the
/// paper).
pub const BOTNET_SOURCE: &str = "\
model botnet;
// Malware propagation in a machine fleet. Active bots (A) scan and
// compromise susceptible machines (S) at an imprecise rate; compromised
// machines dwell dormant (D) before activating, active bots are detected
// and patched (P), susceptibles are proactively hardened, and patched
// machines eventually re-enter the vulnerable pool (re-imaging, churn).
species S, D, A, P;
param scan in [0.5, 4];
const wake = 2;        // dormant bots activate
const detect = 1.5;    // active bots detected and cleaned
const harden = 0.05;   // proactive patching of susceptible machines
const churn = 0.8;     // patched machines return to the vulnerable pool
rule infect:   S -> D @ scan * A * S;
rule activate: D -> A @ wake * D;
rule cleanup:  A -> P @ detect * A;
rule patch:    S -> P @ harden * S;
rule reimage:  P -> S @ churn * P;
init S = 0.9, D = 0.05, A = 0.05, P = 0;
";

/// A closed two-server load balancer with an imprecise routing fraction
/// (not in the paper).
pub const LOAD_BALANCER_SOURCE: &str = "\
model load_balancer;
// A closed client-server system: idle clients submit jobs at rate lambda;
// an imprecise fraction `route` of jobs goes to the fast server (queue
// Q1, service rate mu1), the rest to the slow server (Q2, mu2). Service
// completions return clients to the idle pool.
species Idle, Q1, Q2;
param route in [0.2, 0.8];
const lambda = 2;
const mu1 = 3;
const mu2 = 2;
rule dispatch_fast: Idle -> Q1 @ lambda * route * Idle;
rule dispatch_slow: Idle -> Q2 @ lambda * (1 - route) * Idle;
rule serve_fast:    Q1 -> Idle @ mu1 * Q1;
rule serve_slow:    Q2 -> Idle @ mu2 * Q2;
init Idle = 1, Q1 = 0, Q2 = 0;
";

/// Mean-field CSMA/WiFi backoff in the Benaïm–Le Boudec interaction-model
/// family: stations sense the channel before transmitting, concurrent
/// transmissions collide pairwise, and collided stations sit out a backoff
/// period. The sensing/attempt rate is imprecise.
pub const CSMA_SOURCE: &str = "\
model csma;
// Mean-field CSMA/WiFi backoff: idle stations (I) sense the channel and
// attempt a transmission only on the fraction of airtime left free by
// ongoing transmissions (T); concurrent transmissions collide pairwise and
// send both stations into backoff (B) until their timer expires.
species I, T, B;
param attempt in [0.4, 1.6];
const done = 2;      // transmission completion rate
const clash = 4;     // pairwise collision intensity
const expire = 1;    // backoff expiry rate
rule transmit: I -> T @ attempt * I * max(1 - T, 0);
rule finish:   T -> I @ done * T;
rule collide:  T -> B @ clash * T * T;
rule recover:  B -> I @ expire * B;
init I = 1, T = 0, B = 0;
";

/// A TTL cache over a fixed catalogue: cold objects are admitted on first
/// request, cached copies expire after an imprecise time-to-live, and
/// expired entries wait for the periodic sweeper before readmission. Both
/// the request intensity and the TTL expiry rate are imprecise.
pub const TTL_CACHE_SOURCE: &str = "\
model ttl_cache;
// TTL cache eviction over a fixed catalogue: cold objects (C) are admitted
// on their next request, cached copies (W) expire after an imprecise TTL,
// and expired entries (E) wait for the periodic sweeper before they can be
// admitted again.
species C, W, E;
param request in [1, 3];
param expiry in [0.5, 1.5];
const sweep = 4;     // sweeper rate returning expired entries to cold
rule admit:  C -> W @ request * C;
rule expire: W -> E @ expiry * W;
rule evict:  E -> C @ sweep * E;
init C = 1, W = 0, E = 0;
";

/// Rumour spreading with stifling (the Daley–Kendall flavour of epidemic
/// broadcast): active spreaders push the rumour to uninformed peers at an
/// imprecise fan-out rate and turn stifler when gossiping to an
/// already-informed peer — or simply out of fatigue.
pub const GOSSIP_SOURCE: &str = "\
model gossip;
// Epidemic broadcast / rumour spreading with stifling: active spreaders
// (A) push the rumour to uninformed peers (U) at an imprecise fan-out
// rate; a spreader contacting an already-informed peer (A or R) turns
// stifler (R), and spreaders also retire out of fatigue.
species U, A, R;
param push in [1, 4];
const stifle = 1;    // contact rate with already-informed peers
const cool = 0.2;    // spontaneous fatigue rate
rule spread:  U -> A @ push * A * U;
rule stifled: A -> R @ stifle * A * (A + R);
rule fatigue: A -> R @ cool * A;
init U = 0.95, A = 0.05, R = 0;
";

/// DSL source of the power-of-`d`-choices load balancer (Mitzenmacher;
/// the flagship Benaïm–Le Boudec mean-field interaction model): `Q{i}` is
/// the fraction of servers with exactly `i` queued jobs, truncated at
/// queue length `levels`. A dispatcher samples `d` servers per arrival and
/// joins the shortest queue, so a depth-`i` server fills at rate
/// `λ · (s_i^d − s_{i+1}^d)` with `s_i` the tail fraction of servers at
/// depth ≥ `i` (spelled with explicit tail sums and clamped with `max` so
/// the rate stays non-negative off the simplex); service drains one job at
/// a time. The arrival rate `λ` is imprecise.
///
/// # Panics
///
/// Panics if `d < 2` (one choice is plain random routing) or
/// `levels < 2`.
pub fn pod_choices_source(d: u32, levels: usize) -> String {
    assert!(d >= 2, "power-of-d-choices needs at least two choices");
    assert!(
        levels >= 2,
        "the queue truncation needs at least two levels"
    );
    let mut source = format!("model pod_choices_d{d};\nspecies ");
    for i in 0..=levels {
        if i > 0 {
            source.push_str(", ");
        }
        source.push_str(&format!("Q{i}"));
    }
    source.push_str(";\nparam arrival in [0.55, 0.85];\nconst mu = 1;\n");
    // tail sums s_{i} = Q{i} + … + Q{levels}: one `let` each, written out
    // in full so no binding references another
    for i in 1..=levels {
        source.push_str(&format!("let t{i} = "));
        for j in i..=levels {
            if j > i {
                source.push_str(" + ");
            }
            source.push_str(&format!("Q{j}"));
        }
        source.push_str(";\n");
    }
    for i in 0..levels {
        let next = i + 1;
        source.push_str(&format!(
            "rule arrive{i}: Q{i} -> Q{next} @ arrival * max(((Q{i} + t{next}) ^ {d}) - (t{next} ^ {d}), 0);\n"
        ));
    }
    for i in 1..=levels {
        let prev = i - 1;
        source.push_str(&format!("rule serve{i}: Q{i} -> Q{prev} @ mu * Q{i};\n"));
    }
    source.push_str("init Q0 = 1");
    for i in 1..=levels {
        source.push_str(&format!(", Q{i} = 0"));
    }
    source.push_str(";\n");
    source
}

/// A registry-ready power-of-`d`-choices scenario named `pod_choices_d<d>`
/// (queue truncation 4, every server initially idle), bounding the
/// fraction of single-job servers over a 6-time-unit horizon.
///
/// # Panics
///
/// Panics if `d < 2` (see [`pod_choices_source`]).
pub fn pod_choices_scenario(d: u32) -> Scenario {
    Scenario::new(
        format!("pod_choices_d{d}"),
        format!("power-of-{d}-choices load balancing with an imprecise arrival rate"),
        pod_choices_source(d, 4),
        6.0,
        1,
    )
    .with_family("queueing")
    .with_default_scale(1000)
}

/// DSL source of a generated `stations`-station bike-sharing network, the
/// city-scale sibling of the single-station [`BIKE_SOURCE`]: `D{i}` is the
/// fraction of bikes docked at station `i`, `T{i}` the fraction in transit
/// toward it. Riders pick a bike up at an imprecise per-station demand
/// rate (mildly heterogeneous across stations, constant while bikes are
/// available — the paper's discontinuous-rate shape) and ride it to the
/// next station, docking only while racks are free (`D{i} < cap`). Both
/// the demand and the trip-completion rate are imprecise, and every rate
/// carries a boundary guard, so the drift is discontinuous like `bike`'s.
///
/// # Panics
///
/// Panics if `stations < 2`.
pub fn bike_city_source(stations: usize) -> String {
    assert!(stations >= 2, "a city needs at least two stations");
    let mut source = format!("model bike_city_{stations};\nspecies ");
    for i in 0..stations {
        if i > 0 {
            source.push_str(", ");
        }
        source.push_str(&format!("D{i}"));
    }
    for i in 0..stations {
        source.push_str(&format!(", T{i}"));
    }
    source.push_str(";\nparam pickup in [0.6, 1.4];\nparam ride in [1, 3];\n");
    let cap = 1.4 / stations as f64;
    source.push_str(&format!("const cap = {cap};\n"));
    for i in 0..stations {
        let next = (i + 1) % stations;
        // deterministic per-station weights keep the demand mildly
        // heterogeneous, like the ring's per-edge rates
        let weight = 1.0 + 0.1 * (i % 3) as f64;
        source.push_str(&format!(
            "rule take{i}: D{i} -> T{next} @ when D{i} > 0 {{ {weight} * pickup }} else {{ 0 }};\n"
        ));
        source.push_str(&format!(
            "rule arrive{i}: T{i} -> D{i} @ when D{i} < cap {{ ride * T{i} }} else {{ 0 }};\n"
        ));
    }
    source.push_str("init ");
    let docked = 0.8 / stations as f64;
    let transit = 0.2 / stations as f64;
    for i in 0..stations {
        if i > 0 {
            source.push_str(", ");
        }
        source.push_str(&format!("D{i} = {docked}"));
    }
    for i in 0..stations {
        source.push_str(&format!(", T{i} = {transit}"));
    }
    source.push_str(";\n");
    source
}

/// A registry-ready multi-station bike-sharing scenario named
/// `bike_city_<stations>`, bounding the first station's docked fraction;
/// the default scale budgets a few hundred bikes per station.
///
/// # Panics
///
/// Panics if `stations < 2` (see [`bike_city_source`]).
pub fn bike_city_scenario(stations: usize) -> Scenario {
    Scenario::new(
        format!("bike_city_{stations}"),
        format!(
            "generated {stations}-station bike-sharing network with rack caps and imprecise demand"
        ),
        bike_city_source(stations),
        3.0,
        0,
    )
    .with_family("mobility")
    .with_default_scale(400 * stations)
}

/// DSL source of a closed `sites`-species migration ring: species
/// `X0…X{sites-1}`, one mass-action rule per edge
/// (`Xi -> Xi+1 @ rate · Xi`, the first edge driven by the imprecise
/// `drive` parameter, the rest mildly heterogeneous deterministic rates).
/// Firing one hop perturbs exactly two propensities, which makes the ring
/// the canonical workload for the dependency-graph SSA path and for
/// sub-linear transition selection at `K = sites` rules.
///
/// # Panics
///
/// Panics if `sites < 2`.
pub fn ring_source(sites: usize) -> String {
    assert!(sites >= 2, "a ring needs at least two sites");
    let mut source = format!("model ring_{sites};\nspecies ");
    for i in 0..sites {
        if i > 0 {
            source.push_str(", ");
        }
        source.push_str(&format!("X{i}"));
    }
    source.push_str(";\nparam drive in [0.5, 2];\n");
    for i in 0..sites {
        let next = (i + 1) % sites;
        let rate = if i == 0 {
            format!("drive * X{i}")
        } else {
            // deterministic per-edge rates keep the ring mildly heterogeneous
            format!("{} * X{i}", 1.0 + 0.1 * (i % 5) as f64)
        };
        source.push_str(&format!("rule hop{i}: X{i} -> X{next} @ {rate};\n"));
    }
    source.push_str("init ");
    let share = 1.0 / sites as f64;
    for i in 0..sites {
        if i > 0 {
            source.push_str(", ");
        }
        source.push_str(&format!("X{i} = {share}"));
    }
    source.push_str(";\n");
    source
}

/// A registry-ready ring scenario named `ring_<sites>` with a 4-time-unit
/// horizon and the first site as objective.
///
/// # Panics
///
/// Panics if `sites < 2` (see [`ring_source`]).
pub fn ring_scenario(sites: usize) -> Scenario {
    Scenario::new(
        format!("ring_{sites}"),
        format!("generated {sites}-site migration ring ({sites} mass-action rules)"),
        ring_source(sites),
        4.0,
        0,
    )
    .with_family("synthetic")
}

/// DSL source of a closed `width × height` migration lattice: one species
/// `S{row}_{col}` per cell and two mass-action hop rules (one per
/// direction) across every horizontal and vertical edge —
/// `2·((width−1)·height + width·(height−1))` rules in total. The very
/// first rule is driven by the imprecise `drive` parameter; the remaining
/// edges carry mildly heterogeneous deterministic rates. Each rule reads a
/// single species, so the dependency graph is genuinely sparse while the
/// rule count grows quadratically with the side length.
///
/// # Panics
///
/// Panics if either side is zero or the lattice has fewer than two cells.
pub fn grid_source(width: usize, height: usize) -> String {
    assert!(
        width >= 1 && height >= 1 && width * height >= 2,
        "a grid needs at least two cells"
    );
    let species = |r: usize, c: usize| format!("S{r}_{c}");
    let mut source = format!("model grid_{width}x{height};\nspecies ");
    for r in 0..height {
        for c in 0..width {
            if r + c > 0 {
                source.push_str(", ");
            }
            source.push_str(&species(r, c));
        }
    }
    source.push_str(";\nparam drive in [0.5, 2];\n");
    let mut edge = 0usize;
    let mut push_rule = |source: &mut String, from: String, to: String| {
        let rate = if edge == 0 {
            format!("drive * {from}")
        } else {
            format!("{} * {from}", 1.0 + 0.1 * (edge % 7) as f64)
        };
        source.push_str(&format!("rule hop{edge}: {from} -> {to} @ {rate};\n"));
        edge += 1;
    };
    for r in 0..height {
        for c in 0..width {
            if c + 1 < width {
                push_rule(&mut source, species(r, c), species(r, c + 1));
                push_rule(&mut source, species(r, c + 1), species(r, c));
            }
            if r + 1 < height {
                push_rule(&mut source, species(r, c), species(r + 1, c));
                push_rule(&mut source, species(r + 1, c), species(r, c));
            }
        }
    }
    source.push_str("init ");
    let share = 1.0 / (width * height) as f64;
    for r in 0..height {
        for c in 0..width {
            if r + c > 0 {
                source.push_str(", ");
            }
            source.push_str(&format!("{} = {share}", species(r, c)));
        }
    }
    source.push_str(";\n");
    source
}

/// A registry-ready grid scenario named `grid_<width>x<height>` with a
/// 4-time-unit horizon and the first cell as objective.
///
/// # Panics
///
/// Panics if the lattice has fewer than two cells (see [`grid_source`]).
pub fn grid_scenario(width: usize, height: usize) -> Scenario {
    // generate first: grid_source validates the sizes, so the rule-count
    // arithmetic below cannot underflow on a zero side
    let source = grid_source(width, height);
    let rules = 2 * ((width - 1) * height + width * (height - 1));
    Scenario::new(
        format!("grid_{width}x{height}"),
        format!("generated {width}x{height} migration lattice ({rules} mass-action rules)"),
        source,
        4.0,
        0,
    )
    .with_family("synthetic")
}

/// Compact suffix for a scale: powers of ten at or above 1000 print in
/// scientific shorthand (`1e6`), everything else decimally.
fn scale_suffix(scale: usize) -> String {
    let power_of_ten = scale > 0 && 10usize.pow(scale.ilog10()) == scale;
    if scale >= 1000 && power_of_ten {
        format!("1e{}", scale.ilog10())
    } else {
        scale.to_string()
    }
}

/// The SIR epidemic pinned to a recommended simulation scale `N`: the
/// scenario named `sir_1e6` (for `n = 1_000_000`; other scales print
/// decimally, e.g. `sir_2500`) shares [`SIR_SOURCE`] — density-dependent
/// models are scale free — but records `n` as its default simulation
/// size, which `mfu run` uses when `--simulate` gives no explicit scale.
/// These scenarios exist for the τ-leap engine: at `N ≈ 10⁵–10⁶` the
/// exact SSA pays millions of events per run while a leap run costs a few
/// hundred steps, and the paper's mean-field bounds are tightest exactly
/// there.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sir_scaled(n: usize) -> Scenario {
    let name = format!("sir_{}", scale_suffix(n));
    let source = SIR_SOURCE.replacen("model sir;", &format!("model {name};"), 1);
    Scenario::new(
        name,
        format!("SIR epidemic of Section V at simulation scale N = {n} (τ-leap territory)"),
        source,
        3.0,
        1,
    )
    .with_family("epidemic")
    .with_default_scale(n)
}

/// The GPS/MAP queueing scenario pinned to a recommended simulation scale
/// `N` (see [`sir_scaled`] for the naming and intent).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gps_scaled(n: usize) -> Scenario {
    let name = format!("gps_{}", scale_suffix(n));
    let source = GPS_SOURCE.replacen("model gps;", &format!("model {name};"), 1);
    Scenario::new(
        name,
        format!("closed two-class GPS queue (Section VI) at simulation scale N = {n}"),
        source,
        3.0,
        1,
    )
    .with_family("queueing")
    .with_default_scale(n)
}

fn builtins() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "sir",
            "SIR epidemic of Section V with an imprecise contact rate",
            SIR_SOURCE,
            3.0,
            1,
        )
        .with_family("epidemic"),
        Scenario::new(
            "sis",
            "supercritical SIS epidemic (1-dimensional reduced state)",
            SIS_SOURCE,
            8.0,
            0,
        )
        .with_family("epidemic"),
        // A realistic station has a few dozen racks, so the stochastic
        // boundary effects the paper discusses are visible at this scale.
        Scenario::new(
            "bike",
            "single-station bike sharing with imprecise pick-up and return rates (Sections II-III)",
            BIKE_SOURCE,
            2.0,
            0,
        )
        .with_family("mobility")
        .with_default_scale(40),
        Scenario::new(
            "seir",
            "SEIR epidemic: SIR parameters plus a latency stage",
            SEIR_SOURCE,
            3.0,
            2,
        )
        .with_family("epidemic"),
        // The GPS objectives follow the Figure 7 experiments
        // (tests/gps_experiments.rs): the MAP panel bounds Q1 (index 1 of
        // (D1, Q1, D2, Q2)), the Poisson panel bounds Q2 (index 1 of
        // (Q1, Q2)) — coincidentally the same index over different species.
        Scenario::new(
            "gps",
            "closed two-class GPS queue with MAP arrivals and guarded service rates (Section VI)",
            GPS_SOURCE,
            3.0,
            1,
        )
        .with_family("queueing"),
        Scenario::new(
            "gps_poisson",
            "Poisson-arrival GPS queue with mean-matched creation rates (Section VI)",
            GPS_POISSON_SOURCE,
            3.0,
            1,
        )
        .with_family("queueing"),
        Scenario::new(
            "botnet",
            "malware propagation with an imprecise scanning rate",
            BOTNET_SOURCE,
            5.0,
            2,
        )
        .with_family("security"),
        Scenario::new(
            "load_balancer",
            "closed two-server system with an imprecise routing fraction",
            LOAD_BALANCER_SOURCE,
            6.0,
            1,
        )
        .with_family("queueing"),
        // the Benaïm–Le Boudec mean-field interaction fleet: workloads
        // people actually run at scale, each with interval-valued
        // parameters so the paper's bounds have something to say
        pod_choices_scenario(2),
        pod_choices_scenario(3),
        // a WiFi cell serves on the order of a few hundred stations
        Scenario::new(
            "csma",
            "CSMA/WiFi backoff with an imprecise channel-attempt rate",
            CSMA_SOURCE,
            6.0,
            1,
        )
        .with_family("wireless")
        .with_default_scale(500),
        // a CDN edge tracks catalogues of ~10⁴ hot objects
        Scenario::new(
            "ttl_cache",
            "TTL cache eviction with imprecise request and expiry rates",
            TTL_CACHE_SOURCE,
            4.0,
            1,
        )
        .with_family("caching")
        .with_default_scale(10_000),
        // gossip overlays are sized in the tens of thousands of nodes
        Scenario::new(
            "gossip",
            "epidemic broadcast / rumour spreading with an imprecise fan-out rate",
            GOSSIP_SOURCE,
            5.0,
            1,
        )
        .with_family("broadcast")
        .with_default_scale(10_000),
        // city-scale sibling of `bike`: multiple capped stations in a loop
        bike_city_scenario(4),
        // generated large-K scenarios: exercise sparse dependency graphs
        // and sub-linear transition selection across the registry suites
        ring_scenario(48),
        grid_scenario(6, 6),
        // large-N scenario: the τ-leap engine's home turf (the CI smoke
        // test and the ssa_tauleap bench group drive it)
        sir_scaled(1_000_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_register_and_compile() {
        let registry = ScenarioRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec![
                "bike",
                "bike_city_4",
                "botnet",
                "csma",
                "gossip",
                "gps",
                "gps_poisson",
                "grid_6x6",
                "load_balancer",
                "pod_choices_d2",
                "pod_choices_d3",
                "ring_48",
                "seir",
                "sir",
                "sir_1e6",
                "sis",
                "ttl_cache"
            ]
        );
        assert_eq!(registry.len(), 17);
        assert!(!registry.is_empty());
        for scenario in registry.iter() {
            let model = scenario.compile().unwrap_or_else(|e| {
                panic!("scenario `{}` failed to compile:\n{e}", scenario.name())
            });
            assert_eq!(model.name(), scenario.name());
            assert!(
                scenario.objective_coordinate() < model.reduced_initial_state().dim(),
                "objective out of range for `{}`",
                scenario.name()
            );
            assert!(scenario.horizon() > 0.0);
            assert!(!scenario.summary().is_empty());
        }
    }

    #[test]
    fn scenario_conservativeness_matches_their_modelling() {
        // The epidemic and load-balancer scenarios are closed systems; the
        // GPS scenarios keep their thinking populations implicit (the
        // paper's Section VI formulation), so they are deliberately
        // non-conservative and analyse in full coordinates.
        let registry = ScenarioRegistry::with_builtins();
        for scenario in registry.iter() {
            let model = scenario.compile().unwrap();
            let conservative = !scenario.name().starts_with("gps");
            assert_eq!(
                model.is_conservative(),
                conservative,
                "`{}`: unexpected conservativeness",
                scenario.name()
            );
            if conservative {
                assert!((model.total_mass() - 1.0).abs() < 1e-12);
                assert!(model.reduced_initial_state().dim() < model.dim());
            } else {
                assert_eq!(model.reduced_initial_state().dim(), model.dim());
            }
        }
    }

    #[test]
    fn gps_scenarios_guard_the_empty_queue() {
        use mfu_core::drift::ImpreciseDrift;
        use mfu_num::StateVec;
        for name in ["gps", "gps_poisson"] {
            let model = ScenarioRegistry::with_builtins().compile(name).unwrap();
            let drift = model.drift();
            let dim = model.dim();
            // with no jobs queued, the service rates must be exactly zero
            // (and finite) instead of 0/0
            let empty = StateVec::zeros(dim);
            let dx = drift.drift(&empty, &model.params().midpoint());
            for k in 0..dim {
                assert!(dx[k].is_finite(), "`{name}` coordinate {k} at empty queues");
            }
            let population = model.population_model().unwrap();
            for t in population.transitions() {
                let rate = t.rate(&empty, &model.params().midpoint());
                assert!(
                    rate.is_finite() && rate >= 0.0,
                    "`{name}`: rate `{}` = {rate} at empty queues",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn every_builtin_declares_a_family() {
        let registry = ScenarioRegistry::with_builtins();
        for scenario in registry.iter() {
            assert_ne!(
                scenario.family(),
                "custom",
                "`{}` shipped without a family tag",
                scenario.name()
            );
        }
        assert_eq!(registry.get("sir").unwrap().family(), "epidemic");
        assert_eq!(registry.get("pod_choices_d2").unwrap().family(), "queueing");
        assert_eq!(registry.get("csma").unwrap().family(), "wireless");
        assert_eq!(registry.get("ttl_cache").unwrap().family(), "caching");
        assert_eq!(registry.get("gossip").unwrap().family(), "broadcast");
        assert_eq!(registry.get("bike_city_4").unwrap().family(), "mobility");
        assert_eq!(registry.get("ring_48").unwrap().family(), "synthetic");
        // user scenarios default to `custom`
        assert_eq!(
            Scenario::new("x", "y", SIR_SOURCE, 1.0, 0).family(),
            "custom"
        );
    }

    #[test]
    fn interaction_fleet_carries_imprecise_params_and_scales() {
        // The whole point of the Benaïm–Le Boudec fleet: every scenario has
        // at least one interval-valued parameter (so hull/Pontryagin bounds
        // are non-trivial) and a realistic default simulation scale.
        let registry = ScenarioRegistry::with_builtins();
        for name in [
            "pod_choices_d2",
            "pod_choices_d3",
            "csma",
            "ttl_cache",
            "gossip",
            "bike_city_4",
        ] {
            let scenario = registry.get(name).unwrap();
            assert!(scenario.default_scale().is_some(), "`{name}` has no scale");
            let model = scenario.compile().unwrap();
            let params = model.params();
            assert!(params.dim() >= 1, "`{name}` has no imprecise parameter");
            assert!(
                params.vertices().len() >= 2,
                "`{name}`'s parameter box is a point"
            );
        }
    }

    #[test]
    fn pod_choices_compiles_with_expected_shape() {
        let model = crate::compile(&pod_choices_source(2, 4)).unwrap();
        assert_eq!(model.name(), "pod_choices_d2");
        assert_eq!(model.dim(), 5);
        assert!(model.is_conservative());
        let population = model.population_model().unwrap();
        // 4 arrival levels + 4 service levels
        assert_eq!(population.transitions().len(), 8);
        // all mass starts at the empty queue level
        assert_eq!(model.initial_state()[0], 1.0);

        // the mean-field power-of-d arrival rates: at the empty state the
        // level-0 arrival fires at the full λ (s_0 = 1, s_1 = 0 gives
        // λ·(1^d − 0^d)) and every deeper arrival is silent
        use mfu_num::StateVec;
        let empty = StateVec::from([1.0, 0.0, 0.0, 0.0, 0.0]);
        let lambda = 0.7;
        let rates: Vec<f64> = population
            .transitions()
            .iter()
            .map(|t| t.rate(&empty, &[lambda]))
            .collect();
        assert!((rates[0] - lambda).abs() < 1e-12, "arrive0 = {}", rates[0]);
        for (k, r) in rates.iter().enumerate().skip(1) {
            assert_eq!(*r, 0.0, "transition {k} should be silent when empty");
        }

        // d = 3 deepens the imbalance: with half the servers idle the
        // level-0 arrival rate grows with d (1 − s_1^d term)
        let half = StateVec::from([0.5, 0.5, 0.0, 0.0, 0.0]);
        let d2 = population.transitions()[0].rate(&half, &[lambda]);
        let model3 = crate::compile(&pod_choices_source(3, 4)).unwrap();
        let d3 = model3.population_model().unwrap().transitions()[0].rate(&half, &[lambda]);
        assert!(d3 > d2, "d=3 should fill idle servers faster: {d3} vs {d2}");

        assert!(std::panic::catch_unwind(|| pod_choices_source(1, 4)).is_err());
        assert!(std::panic::catch_unwind(|| pod_choices_source(2, 1)).is_err());
    }

    #[test]
    fn bike_city_compiles_with_expected_shape() {
        let stations = 4;
        let model = crate::compile(&bike_city_source(stations)).unwrap();
        assert_eq!(model.name(), "bike_city_4");
        assert_eq!(model.dim(), 2 * stations);
        assert!(model.is_conservative());
        let population = model.population_model().unwrap();
        assert_eq!(population.transitions().len(), 2 * stations);

        // interior state: every take rule fires at its weighted demand,
        // every arrive rule drains its transit pool
        let theta = [1.0, 2.0]; // (pickup, ride)
        let x0 = model.initial_state();
        for t in population.transitions() {
            let rate = t.rate(&x0, &theta);
            assert!(rate > 0.0, "`{}` silent at the initial state", t.name());
        }
        // an empty station cannot lose bikes, a full one cannot dock
        let mut empty0 = x0.clone();
        empty0[0] = 0.0;
        assert_eq!(population.transitions()[0].rate(&empty0, &theta), 0.0);
        let mut full0 = x0.clone();
        full0[0] = 0.4; // above cap = 0.35
        assert_eq!(population.transitions()[1].rate(&full0, &theta), 0.0);

        assert!(std::panic::catch_unwind(|| bike_city_source(1)).is_err());
    }

    #[test]
    fn interaction_fleet_rates_stay_healthy_on_the_simplex() {
        // CSMA, TTL cache and gossip are plain closed systems; their rates
        // must be finite and non-negative on the whole simplex, at every
        // vertex of the parameter box.
        let registry = ScenarioRegistry::with_builtins();
        for name in ["csma", "ttl_cache", "gossip"] {
            let model = registry.compile(name).unwrap();
            let population = model.population_model().unwrap();
            let corners = [
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
                [0.4, 0.3, 0.3],
            ];
            for corner in corners {
                let x = mfu_num::StateVec::from(corner);
                for theta in model.params().vertices() {
                    for t in population.transitions() {
                        let rate = t.rate(&x, &theta);
                        assert!(
                            rate.is_finite() && rate >= 0.0,
                            "`{name}`: rate `{}` = {rate} at {corner:?}",
                            t.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn generated_ring_compiles_with_expected_shape() {
        let model = crate::compile(&ring_source(12)).unwrap();
        assert_eq!(model.name(), "ring_12");
        assert_eq!(model.dim(), 12);
        assert!(model.is_conservative());
        let population = model.population_model().unwrap();
        assert_eq!(population.transitions().len(), 12);
        // every hop is a compiled mass-action rate reading one species
        for (k, t) in population.transitions().iter().enumerate() {
            assert!(t.rate_fn().is_compiled());
            assert_eq!(t.rate_fn().species_support(), Some(&[k][..]));
        }
        let counts = model.initial_counts(1200);
        assert_eq!(counts.iter().sum::<i64>(), 1200);
    }

    #[test]
    fn generated_grid_compiles_with_expected_shape() {
        let (w, h) = (4, 3);
        let model = crate::compile(&grid_source(w, h)).unwrap();
        assert_eq!(model.name(), "grid_4x3");
        assert_eq!(model.dim(), w * h);
        assert!(model.is_conservative());
        let expected_rules = 2 * ((w - 1) * h + w * (h - 1));
        let population = model.population_model().unwrap();
        assert_eq!(population.transitions().len(), expected_rules);
        // hops read exactly one species each, and every hop has a reverse
        // partner (the lattice is bidirectional)
        let mut net_change = vec![0i64; w * h];
        for t in population.transitions() {
            assert_eq!(t.rate_fn().species_support().map(<[usize]>::len), Some(1));
            for (i, &c) in t.change().iter().enumerate() {
                net_change[i] += c.round() as i64;
            }
        }
        assert!(net_change.iter().all(|&c| c == 0), "{net_change:?}");
        let counts = model.initial_counts(w * h * 100);
        assert_eq!(counts.iter().sum::<i64>(), (w * h * 100) as i64);
    }

    #[test]
    fn generated_scenarios_validate_their_sizes() {
        assert!(std::panic::catch_unwind(|| ring_source(1)).is_err());
        assert!(std::panic::catch_unwind(|| grid_source(1, 1)).is_err());
        assert!(std::panic::catch_unwind(|| grid_source(0, 3)).is_err());
        // a 1×n strip is a valid degenerate lattice
        let strip = crate::compile(&grid_source(1, 3)).unwrap();
        assert_eq!(strip.population_model().unwrap().transitions().len(), 4);
    }

    #[test]
    fn scaled_scenarios_rename_and_carry_their_scale() {
        let sir = sir_scaled(1_000_000);
        assert_eq!(sir.name(), "sir_1e6");
        assert_eq!(sir.default_scale(), Some(1_000_000));
        let model = sir.compile().unwrap();
        assert_eq!(model.name(), "sir_1e6");
        // same rules as the classic sir, just renamed and scale-tagged
        let classic = ScenarioRegistry::with_builtins().compile("sir").unwrap();
        assert_eq!(model.rules().len(), classic.rules().len());
        assert_eq!(model.species(), classic.species());
        // count splitting honours the declared default scale
        let counts = model.initial_counts(sir.default_scale().unwrap());
        assert_eq!(counts.iter().sum::<i64>(), 1_000_000);

        let gps = gps_scaled(100_000);
        assert_eq!(gps.name(), "gps_1e5");
        assert_eq!(gps.default_scale(), Some(100_000));
        assert_eq!(gps.compile().unwrap().name(), "gps_1e5");

        // non-power-of-ten scales print decimally
        assert_eq!(sir_scaled(2500).name(), "sir_2500");
        // the classic scenarios stay scale free
        let registry = ScenarioRegistry::with_builtins();
        assert_eq!(registry.get("sir").unwrap().default_scale(), None);
        assert_eq!(
            registry.get("sir_1e6").unwrap().default_scale(),
            Some(1_000_000)
        );
        assert!(std::panic::catch_unwind(|| sir_scaled(0)).is_err());
    }

    #[test]
    fn unknown_scenario_reports_known_names() {
        let registry = ScenarioRegistry::with_builtins();
        let err = registry.compile("nope").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("unknown scenario"));
        assert!(text.contains("sir"));
    }

    #[test]
    fn registration_replaces_and_returns_previous() {
        let mut registry = ScenarioRegistry::new();
        assert!(registry
            .register(Scenario::new("x", "first", SIR_SOURCE, 1.0, 0))
            .is_none());
        let previous = registry.register(Scenario::new("x", "second", SIS_SOURCE, 2.0, 0));
        assert_eq!(previous.unwrap().summary(), "first");
        assert_eq!(registry.get("x").unwrap().summary(), "second");
    }
}
