//! Typed abstract syntax tree of the model language.
//!
//! Every node keeps the [`Span`] it was parsed from so that semantic
//! validation can point back into the source. The AST is purely syntactic:
//! identifier resolution (species vs. parameter vs. constant) happens in
//! [`crate::validate`].

use crate::diagnostics::Span;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The name as written.
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

/// A parsed model file.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelAst {
    /// The model name from the `model <name>;` header.
    pub name: Ident,
    /// `species` declarations, in source order.
    pub species: Vec<Ident>,
    /// `param <name> in [lo, hi];` declarations.
    pub params: Vec<ParamDecl>,
    /// `const <name> = <expr>;` declarations.
    pub consts: Vec<ConstDecl>,
    /// `let <name> = <expr>;` declarations (shared rate subexpressions).
    pub lets: Vec<LetDecl>,
    /// `rule` declarations.
    pub rules: Vec<RuleDecl>,
    /// `init` assignments (possibly spread over several `init` statements).
    pub inits: Vec<InitAssign>,
}

/// `param <name> in [lo, hi];` — an interval-valued (imprecise) parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: Ident,
    /// Lower-bound expression (must be constant).
    pub lo: Expr,
    /// Upper-bound expression (must be constant).
    pub hi: Expr,
    /// Span of the whole `[lo, hi]` interval literal.
    pub interval_span: Span,
}

/// `const <name> = <expr>;` — a named constant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Constant name.
    pub name: Ident,
    /// Defining expression (must be constant; may reference earlier consts).
    pub value: Expr,
}

/// `let <name> = <expr>;` — a named subexpression shared between rules.
///
/// Unlike a [`ConstDecl`], the defining expression may reference species and
/// parameters (and earlier `let`s); references are inlined during
/// validation, so every rule mentioning the name evaluates the same
/// expression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LetDecl {
    /// Binding name.
    pub name: Ident,
    /// Defining expression (any rate-position expression, including
    /// comparisons).
    pub value: Expr,
}

/// One stoichiometric term: `3 S` or plain `S`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoichTerm {
    /// Multiplicity (defaults to 1; validated to be a positive integer).
    pub multiplicity: f64,
    /// Span of the multiplicity literal (equals `species.span` if implicit).
    pub multiplicity_span: Span,
    /// The species this term counts.
    pub species: Ident,
}

/// `rule <name>: <reactants> -> <products> @ <rate>;`
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDecl {
    /// Rule name (used in diagnostics and transition names).
    pub name: Ident,
    /// Left-hand side (`0` for none).
    pub reactants: Vec<StoichTerm>,
    /// Right-hand side (`0` for none).
    pub products: Vec<StoichTerm>,
    /// Rate expression over species, params, consts and `N`.
    pub rate: Expr,
    /// Span of the whole rule (for stoichiometry diagnostics).
    pub span: Span,
}

/// One `name = expr` assignment inside an `init` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InitAssign {
    /// The species being initialised.
    pub species: Ident,
    /// Initial fraction (must be a constant expression).
    pub value: Expr,
}

/// An arithmetic expression with spans on every node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The operator/operand at this node.
    pub kind: ExprKind,
    /// Source span of the whole subexpression.
    pub span: Span,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Numeric literal.
    Number(f64),
    /// Identifier reference (species, param, const or the builtin `N`).
    Ident(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Builtin function call, e.g. `max(0, S)`.
    Call {
        /// Function name.
        func: Ident,
        /// Arguments in source order.
        args: Vec<Expr>,
    },
    /// Comparison, e.g. `Q > 0`. Evaluates to a boolean (see
    /// [`crate::validate`] for the num/bool typing discipline).
    Compare {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Guarded (piecewise) expression:
    /// `when <cond> { <then> } else { <else> }`.
    When {
        /// The boolean condition.
        cond: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value otherwise (possibly another `when` chain).
        els: Box<Expr>,
    },
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `^` (right-associative power)
    Pow,
}

/// Comparison operators. A comparison evaluates to `1.0` (true) or `0.0`
/// (false) at run time, but the validator types it as a *boolean*: it may
/// only appear as a `when` condition or inside `indicator(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the comparison to two floats (IEEE semantics: any comparison
    /// with NaN except `!=` is false).
    #[inline(always)]
    pub fn holds(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The operator as written in the source.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}
