//! Semantic validation and identifier resolution.
//!
//! Turns a syntactic [`ModelAst`] into a [`ResolvedModel`]: all names bound
//! to species/parameter indices or inlined constants, stoichiometry turned
//! into jump vectors, intervals and initial conditions checked. Every
//! rejection is a [`LangError::Validate`] carrying a [`Diagnostic`] whose
//! span points at the offending source text.
//!
//! Checks performed:
//!
//! * duplicate or cross-namespace-clashing species/param/const/rule names;
//! * at least one `species`, one `param`, one `rule` and a complete `init`;
//! * `const` definitions and `param`/`init` bounds are constant expressions
//!   (no species or parameter references) with finite values;
//! * parameter intervals are not inverted (`lo <= hi`) and not NaN;
//! * rule sides only mention declared species, with positive integer
//!   multiplicities, and every rule has a non-zero net stoichiometry;
//! * rate expressions reference only declared identifiers and call builtin
//!   functions with the right arity;
//! * initial fractions are non-negative and assigned exactly once per
//!   species.

use std::collections::HashMap;

use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_num::StateVec;

use crate::ast::{BinOp, Expr, ExprKind, ModelAst};
use crate::diagnostics::{Diagnostic, LangError, Span};
use crate::expr::{Builtin, CompiledExpr};

/// Largest admissible stoichiometric multiplicity.
const MAX_MULTIPLICITY: f64 = 1e6;

/// A fully resolved, validated model ready for backend compilation.
#[derive(Debug, Clone)]
pub struct ResolvedModel {
    /// Model name from the header.
    pub name: String,
    /// Species names, in declaration order (these index the state).
    pub species: Vec<String>,
    /// The uncertainty set `Θ` built from the `param` declarations.
    pub param_space: ParamSpace,
    /// Named constants with their folded values (for introspection).
    pub consts: Vec<(String, f64)>,
    /// Resolved transition rules.
    pub rules: Vec<ResolvedRule>,
    /// Initial fraction per species, in species order.
    pub init: Vec<f64>,
}

/// One resolved rule: a jump vector plus a compiled rate.
#[derive(Debug, Clone)]
pub struct ResolvedRule {
    /// Rule name, used for transition diagnostics.
    pub name: String,
    /// Net change per species (`products - reactants`).
    pub change: Vec<f64>,
    /// Compiled rate expression over `(state, params)`.
    pub rate: CompiledExpr,
}

impl ResolvedModel {
    /// `true` when every rule conserves the total population (all jump
    /// vectors sum to zero), which enables the reduced-coordinate drift.
    pub fn is_conservative(&self) -> bool {
        self.rules
            .iter()
            .all(|r| r.change.iter().sum::<f64>().abs() < 1e-12)
    }
}

enum Binding {
    Species(usize),
    Param(usize),
    Const(f64),
}

struct SymbolTable<'v> {
    bindings: &'v HashMap<String, Binding>,
    /// `true` while resolving const/param/init expressions, where species
    /// and parameter references are rejected.
    constant_context: bool,
    source: &'v str,
}

impl SymbolTable<'_> {
    fn resolve(&self, expr: &Expr) -> Result<CompiledExpr, LangError> {
        let compiled = self.resolve_inner(expr)?;
        Ok(fold(compiled))
    }

    fn resolve_inner(&self, expr: &Expr) -> Result<CompiledExpr, LangError> {
        match &expr.kind {
            ExprKind::Number(v) => Ok(CompiledExpr::Const(*v)),
            ExprKind::Ident(name) => match self.bindings.get(name) {
                Some(Binding::Species(i)) if !self.constant_context => {
                    Ok(CompiledExpr::Species(*i))
                }
                Some(Binding::Param(j)) if !self.constant_context => Ok(CompiledExpr::Param(*j)),
                Some(Binding::Species(_)) => Err(self.error(
                    format!("species `{name}` cannot appear in a constant expression"),
                    expr.span,
                )),
                Some(Binding::Param(_)) => Err(self.error(
                    format!("parameter `{name}` cannot appear in a constant expression"),
                    expr.span,
                )),
                Some(Binding::Const(v)) => Ok(CompiledExpr::Const(*v)),
                None if name == "N" => Ok(CompiledExpr::Const(1.0)),
                None => Err(self.error(format!("unknown identifier `{name}`"), expr.span)),
            },
            ExprKind::Neg(inner) => Ok(CompiledExpr::Neg(Box::new(self.resolve_inner(inner)?))),
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs = Box::new(self.resolve_inner(lhs)?);
                let rhs = Box::new(self.resolve_inner(rhs)?);
                Ok(match op {
                    BinOp::Add => CompiledExpr::Add(lhs, rhs),
                    BinOp::Sub => CompiledExpr::Sub(lhs, rhs),
                    BinOp::Mul => CompiledExpr::Mul(lhs, rhs),
                    BinOp::Div => CompiledExpr::Div(lhs, rhs),
                    BinOp::Pow => CompiledExpr::Pow(lhs, rhs),
                })
            }
            ExprKind::Call { func, args } => {
                let Some((builtin, arity)) = Builtin::by_name(&func.name) else {
                    return Err(self.error(
                        format!(
                            "unknown function `{}` (builtins: min, max, abs, exp, log, sqrt, pow)",
                            func.name
                        ),
                        func.span,
                    ));
                };
                if args.len() != arity {
                    return Err(self.error(
                        format!(
                            "function `{}` takes {arity} argument(s), found {}",
                            func.name,
                            args.len()
                        ),
                        expr.span,
                    ));
                }
                let mut resolved: Vec<CompiledExpr> = args
                    .iter()
                    .map(|a| self.resolve_inner(a))
                    .collect::<Result<_, _>>()?;
                if arity == 1 {
                    Ok(CompiledExpr::Call1(builtin, Box::new(resolved.remove(0))))
                } else {
                    let second = resolved.remove(1);
                    Ok(CompiledExpr::Call2(
                        builtin,
                        Box::new(resolved.remove(0)),
                        Box::new(second),
                    ))
                }
            }
        }
    }

    fn error(&self, message: String, span: Span) -> LangError {
        LangError::Validate(Diagnostic::new(message, span, self.source))
    }
}

/// Folds constant subtrees bottom-up, so rates pay no cost for named
/// constants or arithmetic on literals.
fn fold(expr: CompiledExpr) -> CompiledExpr {
    use CompiledExpr as E;
    let folded = match expr {
        E::Neg(a) => E::Neg(Box::new(fold(*a))),
        E::Add(a, b) => E::Add(Box::new(fold(*a)), Box::new(fold(*b))),
        E::Sub(a, b) => E::Sub(Box::new(fold(*a)), Box::new(fold(*b))),
        E::Mul(a, b) => E::Mul(Box::new(fold(*a)), Box::new(fold(*b))),
        E::Div(a, b) => E::Div(Box::new(fold(*a)), Box::new(fold(*b))),
        E::Pow(a, b) => E::Pow(Box::new(fold(*a)), Box::new(fold(*b))),
        E::Call1(f, a) => E::Call1(f, Box::new(fold(*a))),
        E::Call2(f, a, b) => E::Call2(f, Box::new(fold(*a)), Box::new(fold(*b))),
        leaf => leaf,
    };
    let all_const = match &folded {
        E::Const(_) => return folded,
        E::Species(_) | E::Param(_) => false,
        E::Neg(a) | E::Call1(_, a) => a.as_const().is_some(),
        E::Add(a, b)
        | E::Sub(a, b)
        | E::Mul(a, b)
        | E::Div(a, b)
        | E::Pow(a, b)
        | E::Call2(_, a, b) => a.as_const().is_some() && b.as_const().is_some(),
    };
    if all_const {
        E::Const(folded.eval(&StateVec::zeros(0), &[]))
    } else {
        folded
    }
}

/// Validates an AST and resolves it into a [`ResolvedModel`].
///
/// # Errors
///
/// Returns [`LangError::Validate`] (with a source-span diagnostic) on the
/// first semantic problem, or [`LangError::Backend`] if the parameter
/// space is rejected by `mfu-ctmc`.
pub fn validate(ast: &ModelAst, source: &str) -> Result<ResolvedModel, LangError> {
    let err =
        |message: String, span: Span| LangError::Validate(Diagnostic::new(message, span, source));

    // --- declarations: uniqueness across namespaces ----------------------
    let mut bindings: HashMap<String, Binding> = HashMap::new();
    let claim = |bindings: &HashMap<String, Binding>, name: &str, span: Span, what: &str| {
        if bindings.contains_key(name) {
            Err(err(
                format!("{what} `{name}` conflicts with an earlier declaration"),
                span,
            ))
        } else {
            Ok(())
        }
    };

    if ast.species.is_empty() {
        return Err(err(
            "a model must declare at least one species".into(),
            ast.name.span,
        ));
    }
    for (i, sp) in ast.species.iter().enumerate() {
        claim(&bindings, &sp.name, sp.span, "species")?;
        bindings.insert(sp.name.clone(), Binding::Species(i));
    }

    // consts resolve in declaration order (earlier consts are usable)
    let mut consts = Vec::with_capacity(ast.consts.len());
    for c in &ast.consts {
        claim(&bindings, &c.name.name, c.name.span, "constant")?;
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: true,
            source,
        };
        let compiled = table.resolve(&c.value)?;
        let value = compiled.as_const().ok_or_else(|| {
            err(
                format!("constant `{}` must be a constant expression", c.name.name),
                c.value.span,
            )
        })?;
        if !value.is_finite() {
            return Err(err(
                format!(
                    "constant `{}` evaluates to the non-finite value {value}",
                    c.name.name
                ),
                c.value.span,
            ));
        }
        bindings.insert(c.name.name.clone(), Binding::Const(value));
        consts.push((c.name.name.clone(), value));
    }

    // params: bounds are constant expressions; intervals must not be inverted
    if ast.params.is_empty() {
        return Err(err(
            "a model must declare at least one `param` (use a degenerate interval `[v, v]` for a precise rate)"
                .into(),
            ast.name.span,
        ));
    }
    let mut intervals = Vec::with_capacity(ast.params.len());
    for (j, p) in ast.params.iter().enumerate() {
        claim(&bindings, &p.name.name, p.name.span, "parameter")?;
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: true,
            source,
        };
        let lo_expr = table.resolve(&p.lo)?;
        let hi_expr = table.resolve(&p.hi)?;
        let lo = lo_expr.as_const().ok_or_else(|| {
            err(
                format!(
                    "lower bound of `{}` must be a constant expression",
                    p.name.name
                ),
                p.lo.span,
            )
        })?;
        let hi = hi_expr.as_const().ok_or_else(|| {
            err(
                format!(
                    "upper bound of `{}` must be a constant expression",
                    p.name.name
                ),
                p.hi.span,
            )
        })?;
        if !lo.is_finite() || !hi.is_finite() {
            return Err(err(
                format!(
                    "interval of `{}` has a non-finite bound [{lo}, {hi}]",
                    p.name.name
                ),
                p.interval_span,
            ));
        }
        if lo > hi {
            return Err(err(
                format!(
                    "interval of `{}` is inverted: lower bound {lo} exceeds upper bound {hi}",
                    p.name.name
                ),
                p.interval_span,
            ));
        }
        bindings.insert(p.name.name.clone(), Binding::Param(j));
        intervals.push((p.name.name.clone(), Interval::new(lo, hi)?));
    }
    let param_space = ParamSpace::new(intervals)?;

    // --- rules -----------------------------------------------------------
    if ast.rules.is_empty() {
        return Err(err(
            "a model must declare at least one rule".into(),
            ast.name.span,
        ));
    }
    let mut rule_names: HashMap<&str, ()> = HashMap::new();
    let mut rules = Vec::with_capacity(ast.rules.len());
    for rule in &ast.rules {
        if rule_names.insert(rule.name.name.as_str(), ()).is_some() {
            return Err(err(
                format!("duplicate rule name `{}`", rule.name.name),
                rule.name.span,
            ));
        }
        let mut change = vec![0.0; ast.species.len()];
        for (side, sign) in [(&rule.reactants, -1.0), (&rule.products, 1.0)] {
            for term in side {
                let Some(Binding::Species(index)) = bindings.get(&term.species.name) else {
                    return Err(err(
                        format!(
                            "`{}` is not a declared species (rule sides may only mention species)",
                            term.species.name
                        ),
                        term.species.span,
                    ));
                };
                let m = term.multiplicity;
                if m <= 0.0 || m.fract() != 0.0 || m > MAX_MULTIPLICITY {
                    return Err(err(
                        format!(
                            "stoichiometric multiplicity must be a positive integer, found `{m}`"
                        ),
                        term.multiplicity_span,
                    ));
                }
                change[*index] += sign * m;
            }
        }
        if change.iter().all(|&c| c == 0.0) {
            return Err(err(
                format!(
                    "rule `{}` has zero net stoichiometry: it would never change the state",
                    rule.name.name
                ),
                rule.span,
            ));
        }
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: false,
            source,
        };
        let rate = table.resolve(&rule.rate)?;
        rules.push(ResolvedRule {
            name: rule.name.name.clone(),
            change,
            rate,
        });
    }

    // --- init ------------------------------------------------------------
    if ast.inits.is_empty() {
        return Err(err(
            "a model must provide an `init` block".into(),
            ast.name.span,
        ));
    }
    let mut init: Vec<Option<f64>> = vec![None; ast.species.len()];
    for assign in &ast.inits {
        let Some(Binding::Species(index)) = bindings.get(&assign.species.name) else {
            return Err(err(
                format!("`{}` is not a declared species", assign.species.name),
                assign.species.span,
            ));
        };
        if init[*index].is_some() {
            return Err(err(
                format!("species `{}` is initialised twice", assign.species.name),
                assign.species.span,
            ));
        }
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: true,
            source,
        };
        let value_expr = table.resolve(&assign.value)?;
        let value = value_expr.as_const().ok_or_else(|| {
            err(
                format!(
                    "initial value of `{}` must be a constant expression",
                    assign.species.name
                ),
                assign.value.span,
            )
        })?;
        if !value.is_finite() || value < 0.0 {
            return Err(err(
                format!(
                    "initial value of `{}` must be finite and non-negative, found {value}",
                    assign.species.name
                ),
                assign.value.span,
            ));
        }
        init[*index] = Some(value);
    }
    for (i, slot) in init.iter().enumerate() {
        if slot.is_none() {
            return Err(err(
                format!("species `{}` is never initialised", ast.species[i].name),
                ast.species[i].span,
            ));
        }
    }

    Ok(ResolvedModel {
        name: ast.name.name.clone(),
        species: ast.species.iter().map(|s| s.name.clone()).collect(),
        param_space,
        consts,
        rules,
        init: init
            .into_iter()
            .map(|v| v.expect("checked above"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(source: &str) -> Result<ResolvedModel, LangError> {
        validate(&parse(source).unwrap(), source)
    }

    fn validate_err(source: &str) -> Diagnostic {
        match check(source).unwrap_err() {
            LangError::Validate(d) => d,
            other => panic!("expected a validation error, got {other:?}"),
        }
    }

    const SIR: &str = "model sir;
species S, I, R;
param contact in [1, 10];
const a = 0.1;
const b = 5;
const c = 1;
rule infect: S -> I @ (a + contact * I) * S;
rule recover: I -> R @ b * I;
rule wane: R -> S @ c * R;
init S = 0.7, I = 0.3, R = 0;
";

    #[test]
    fn resolves_the_sir_model() {
        let model = check(SIR).unwrap();
        assert_eq!(model.species, vec!["S", "I", "R"]);
        assert_eq!(model.param_space.names(), &["contact".to_string()]);
        assert_eq!(model.rules.len(), 3);
        assert_eq!(model.rules[0].change, vec![-1.0, 1.0, 0.0]);
        assert_eq!(model.init, vec![0.7, 0.3, 0.0]);
        assert!(model.is_conservative());
        // rate at (0.7, 0.3, 0) with contact = 2: (0.1 + 0.6) * 0.7 = 0.49
        let x = StateVec::from([0.7, 0.3, 0.0]);
        assert!((model.rules[0].rate.eval(&x, &[2.0]) - 0.49).abs() < 1e-12);
    }

    #[test]
    fn constant_folding_inlines_consts() {
        let model = check(
            "model m; species X; param r in [0, 1];
             const k = 2 * 3;
             rule g: X -> 0 @ k * r * X;
             init X = 1;",
        )
        .unwrap();
        assert_eq!(model.consts, vec![("k".to_string(), 6.0)]);
        // the folded rate tree must contain the literal 6
        let text = format!("{:?}", model.rules[0].rate);
        assert!(text.contains("6.0"), "rate not folded: {text}");
    }

    #[test]
    fn unknown_identifier_in_rate_has_a_span() {
        let source = "model m; species X; param r in [0,1]; rule g: X -> 0 @ beta * X; init X = 1;";
        let d = validate_err(source);
        assert!(d.message.contains("unknown identifier `beta`"));
        assert_eq!(&source[d.span.start..d.span.end], "beta");
    }

    #[test]
    fn inverted_interval_is_rejected_with_span() {
        let source = "model m; species X; param r in [2, 1]; rule g: X -> 0 @ r * X; init X = 1;";
        let d = validate_err(source);
        assert!(d.message.contains("inverted"));
        assert_eq!(&source[d.span.start..d.span.end], "[2, 1]");
    }

    #[test]
    fn unknown_species_in_rule_side_is_rejected() {
        let d =
            validate_err("model m; species X; param r in [0,1]; rule g: X -> Q @ r; init X = 1;");
        assert!(d.message.contains("`Q` is not a declared species"));
    }

    #[test]
    fn fractional_and_zero_multiplicities_are_rejected() {
        let d = validate_err(
            "model m; species X, Y; param r in [0,1]; rule g: X -> 1.5 Y @ r; init X = 1, Y = 0;",
        );
        assert!(d.message.contains("positive integer"));
    }

    #[test]
    fn noop_rule_is_rejected() {
        let d =
            validate_err("model m; species X; param r in [0,1]; rule g: X -> X @ r; init X = 1;");
        assert!(d.message.contains("zero net stoichiometry"));
    }

    #[test]
    fn missing_init_names_the_species() {
        let d = validate_err(
            "model m; species X, Y; param r in [0,1]; rule g: X -> Y @ r; init X = 1;",
        );
        assert!(d.message.contains("`Y` is never initialised"));
    }

    #[test]
    fn duplicate_names_across_namespaces_are_rejected() {
        let d =
            validate_err("model m; species X; param X in [0,1]; rule g: X -> 0 @ 1; init X = 1;");
        assert!(d.message.contains("conflicts"));
    }

    #[test]
    fn species_in_const_expression_is_rejected() {
        let d = validate_err(
            "model m; species X; param r in [0,1]; const k = X; rule g: X -> 0 @ r; init X = 1;",
        );
        assert!(d.message.contains("constant expression"));
    }

    #[test]
    fn missing_param_suggests_degenerate_interval() {
        let d = validate_err("model m; species X; rule g: X -> 0 @ X; init X = 1;");
        assert!(d.message.contains("degenerate interval"));
    }

    #[test]
    fn builtin_arity_is_checked() {
        let d = validate_err(
            "model m; species X; param r in [0,1]; rule g: X -> 0 @ max(X); init X = 1;",
        );
        assert!(d.message.contains("2 argument"));
        let d = validate_err(
            "model m; species X; param r in [0,1]; rule g: X -> 0 @ foo(X); init X = 1;",
        );
        assert!(d.message.contains("unknown function"));
    }

    #[test]
    fn n_is_a_builtin_scale_constant() {
        let model =
            check("model m; species X; param r in [0,1]; rule g: X -> 0 @ r * X / N; init X = 1;")
                .unwrap();
        let x = StateVec::from([0.5]);
        assert!((model.rules[0].rate.eval(&x, &[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nonconservative_models_are_flagged() {
        let model =
            check("model m; species X; param r in [0,1]; rule birth: 0 -> X @ r; init X = 0.5;")
                .unwrap();
        assert!(!model.is_conservative());
    }
}
