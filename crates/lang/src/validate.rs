//! Semantic validation and identifier resolution.
//!
//! Turns a syntactic [`ModelAst`] into a [`ResolvedModel`]: all names bound
//! to species/parameter indices or inlined constants, stoichiometry turned
//! into jump vectors, intervals and initial conditions checked. Every
//! rejection is a [`LangError::Validate`] carrying a [`Diagnostic`] whose
//! span points at the offending source text.
//!
//! Checks performed:
//!
//! * duplicate or cross-namespace-clashing species/param/const/rule names;
//! * at least one `species`, one `param`, one `rule` and a complete `init`;
//! * `const` definitions and `param`/`init` bounds are constant expressions
//!   (no species or parameter references) with finite values;
//! * parameter intervals are not inverted (`lo <= hi`) and not NaN;
//! * rule sides only mention declared species, with positive integer
//!   multiplicities, and every rule has a non-zero net stoichiometry;
//! * rate expressions reference only declared identifiers and call builtin
//!   functions with the right arity;
//! * expressions are well-typed under the num/bool discipline: comparisons
//!   produce booleans, which only `when` conditions and `indicator(...)`
//!   may consume (so `when Q { … }` and `(Q > 0) * r` are rejected with
//!   spans, the latter with a hint to use `indicator`);
//! * `let` bindings resolve in declaration order and are inlined at every
//!   reference; a `let` that reads state or parameters is rejected in
//!   constant contexts (`const`, `param` bounds, `init`);
//! * initial fractions are non-negative and assigned exactly once per
//!   species.

use std::collections::HashMap;

use mfu_ctmc::params::{Interval, ParamSpace};

use crate::ast::{BinOp, Expr, ExprKind, ModelAst};
use crate::diagnostics::{Diagnostic, LangError, Span};
use crate::expr::{fold_constants, Builtin, CompiledExpr};

/// Largest admissible stoichiometric multiplicity.
const MAX_MULTIPLICITY: f64 = 1e6;

/// A fully resolved, validated model ready for backend compilation.
#[derive(Debug, Clone)]
pub struct ResolvedModel {
    /// Model name from the header.
    pub name: String,
    /// Species names, in declaration order (these index the state).
    pub species: Vec<String>,
    /// The uncertainty set `Θ` built from the `param` declarations.
    pub param_space: ParamSpace,
    /// Named constants with their folded values (for introspection).
    pub consts: Vec<(String, f64)>,
    /// Resolved transition rules.
    pub rules: Vec<ResolvedRule>,
    /// Initial fraction per species, in species order.
    pub init: Vec<f64>,
}

/// One resolved rule: a jump vector plus a compiled rate.
#[derive(Debug, Clone)]
pub struct ResolvedRule {
    /// Rule name, used for transition diagnostics.
    pub name: String,
    /// Net change per species (`products - reactants`).
    pub change: Vec<f64>,
    /// Compiled rate expression over `(state, params)`.
    pub rate: CompiledExpr,
}

impl ResolvedModel {
    /// `true` when every rule conserves the total population (all jump
    /// vectors sum to zero), which enables the reduced-coordinate drift.
    pub fn is_conservative(&self) -> bool {
        self.rules
            .iter()
            .all(|r| r.change.iter().sum::<f64>().abs() < 1e-12)
    }
}

enum Binding {
    Species(usize),
    Param(usize),
    Const(f64),
    /// A `let` binding: the resolved (already folded) expression and its
    /// type. References are inlined, so every use evaluates the same tree.
    Let(CompiledExpr, Ty),
}

/// The two expression types of the language. Comparisons produce booleans;
/// everything else is numeric. A boolean may only be consumed by a `when`
/// condition or by `indicator(...)` (which converts it to `0`/`1`), and
/// only numbers may be negated, combined arithmetically or compared —
/// which is what makes `when Q { … }` or `(Q > 0) * r` *type errors*
/// instead of silently treated as numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Num,
    Bool,
}

impl Ty {
    fn describe(self) -> &'static str {
        match self {
            Ty::Num => "a number",
            Ty::Bool => "a boolean (comparison)",
        }
    }
}

struct SymbolTable<'v> {
    bindings: &'v HashMap<String, Binding>,
    /// `true` while resolving const/param/init expressions, where species
    /// and parameter references are rejected.
    constant_context: bool,
    source: &'v str,
}

impl SymbolTable<'_> {
    /// Resolves an expression that must be numeric (rates, constants,
    /// bounds, initial values).
    fn resolve(&self, expr: &Expr) -> Result<CompiledExpr, LangError> {
        let (compiled, ty) = self.resolve_typed(expr)?;
        self.require(Ty::Num, ty, expr.span)?;
        Ok(fold_constants(&compiled))
    }

    /// Resolves an expression of either type (used for `let` bindings,
    /// which may name a shared condition as well as a shared subterm).
    fn resolve_any(&self, expr: &Expr) -> Result<(CompiledExpr, Ty), LangError> {
        let (compiled, ty) = self.resolve_typed(expr)?;
        Ok((fold_constants(&compiled), ty))
    }

    fn require(&self, expected: Ty, found: Ty, span: Span) -> Result<(), LangError> {
        if expected == found {
            return Ok(());
        }
        let hint = match expected {
            Ty::Num => " (wrap a comparison in `indicator(...)` to use it as 0/1)",
            Ty::Bool => " (conditions must be comparisons, e.g. `Q > 0`)",
        };
        Err(self.error(
            format!(
                "type error: expected {}, found {}{hint}",
                expected.describe(),
                found.describe()
            ),
            span,
        ))
    }

    fn resolve_num(&self, expr: &Expr) -> Result<CompiledExpr, LangError> {
        let (compiled, ty) = self.resolve_typed(expr)?;
        self.require(Ty::Num, ty, expr.span)?;
        Ok(compiled)
    }

    fn resolve_typed(&self, expr: &Expr) -> Result<(CompiledExpr, Ty), LangError> {
        match &expr.kind {
            ExprKind::Number(v) => Ok((CompiledExpr::Const(*v), Ty::Num)),
            ExprKind::Ident(name) => match self.bindings.get(name) {
                Some(Binding::Species(i)) if !self.constant_context => {
                    Ok((CompiledExpr::Species(*i), Ty::Num))
                }
                Some(Binding::Param(j)) if !self.constant_context => {
                    Ok((CompiledExpr::Param(*j), Ty::Num))
                }
                Some(Binding::Species(_)) => Err(self.error(
                    format!("species `{name}` cannot appear in a constant expression"),
                    expr.span,
                )),
                Some(Binding::Param(_)) => Err(self.error(
                    format!("parameter `{name}` cannot appear in a constant expression"),
                    expr.span,
                )),
                Some(Binding::Const(v)) => Ok((CompiledExpr::Const(*v), Ty::Num)),
                Some(Binding::Let(compiled, ty)) => {
                    if self.constant_context && compiled.as_const().is_none() {
                        return Err(self.error(
                            format!(
                                "`let {name}` references state or parameters and cannot appear \
                                 in a constant expression"
                            ),
                            expr.span,
                        ));
                    }
                    Ok((compiled.clone(), *ty))
                }
                None if name == "N" => Ok((CompiledExpr::Const(1.0), Ty::Num)),
                None => Err(self.error(format!("unknown identifier `{name}`"), expr.span)),
            },
            ExprKind::Neg(inner) => Ok((
                CompiledExpr::Neg(Box::new(self.resolve_num(inner)?)),
                Ty::Num,
            )),
            ExprKind::Binary { op, lhs, rhs } => {
                let lhs = Box::new(self.resolve_num(lhs)?);
                let rhs = Box::new(self.resolve_num(rhs)?);
                let compiled = match op {
                    BinOp::Add => CompiledExpr::Add(lhs, rhs),
                    BinOp::Sub => CompiledExpr::Sub(lhs, rhs),
                    BinOp::Mul => CompiledExpr::Mul(lhs, rhs),
                    BinOp::Div => CompiledExpr::Div(lhs, rhs),
                    BinOp::Pow => CompiledExpr::Pow(lhs, rhs),
                };
                Ok((compiled, Ty::Num))
            }
            ExprKind::Compare { op, lhs, rhs } => {
                let lhs = Box::new(self.resolve_num(lhs)?);
                let rhs = Box::new(self.resolve_num(rhs)?);
                Ok((CompiledExpr::Cmp(*op, lhs, rhs), Ty::Bool))
            }
            ExprKind::When { cond, then, els } => {
                let (cond_compiled, cond_ty) = self.resolve_typed(cond)?;
                self.require(Ty::Bool, cond_ty, cond.span)?;
                let then = Box::new(self.resolve_num(then)?);
                let els = Box::new(self.resolve_num(els)?);
                Ok((
                    CompiledExpr::Select(Box::new(cond_compiled), then, els),
                    Ty::Num,
                ))
            }
            ExprKind::Call { func, args } => {
                if func.name == "indicator" {
                    if args.len() != 1 {
                        return Err(self.error(
                            format!(
                                "function `indicator` takes 1 argument, found {}",
                                args.len()
                            ),
                            expr.span,
                        ));
                    }
                    let (compiled, ty) = self.resolve_typed(&args[0])?;
                    self.require(Ty::Bool, ty, args[0].span)?;
                    // comparisons already evaluate to 0/1, so the
                    // conversion is a no-op at run time
                    return Ok((compiled, Ty::Num));
                }
                let Some((builtin, arity)) = Builtin::by_name(&func.name) else {
                    return Err(self.error(
                        format!(
                            "unknown function `{}` (builtins: min, max, abs, exp, log, sqrt, \
                             pow, indicator)",
                            func.name
                        ),
                        func.span,
                    ));
                };
                if args.len() != arity {
                    return Err(self.error(
                        format!(
                            "function `{}` takes {arity} argument(s), found {}",
                            func.name,
                            args.len()
                        ),
                        expr.span,
                    ));
                }
                let mut resolved: Vec<CompiledExpr> = args
                    .iter()
                    .map(|a| self.resolve_num(a))
                    .collect::<Result<_, _>>()?;
                let compiled = if arity == 1 {
                    CompiledExpr::Call1(builtin, Box::new(resolved.remove(0)))
                } else {
                    let second = resolved.remove(1);
                    CompiledExpr::Call2(builtin, Box::new(resolved.remove(0)), Box::new(second))
                };
                Ok((compiled, Ty::Num))
            }
        }
    }

    fn error(&self, message: String, span: Span) -> LangError {
        LangError::Validate(Diagnostic::new(message, span, self.source))
    }
}

/// Validates an AST and resolves it into a [`ResolvedModel`].
///
/// # Errors
///
/// Returns [`LangError::Validate`] (with a source-span diagnostic) on the
/// first semantic problem, or [`LangError::Backend`] if the parameter
/// space is rejected by `mfu-ctmc`.
pub fn validate(ast: &ModelAst, source: &str) -> Result<ResolvedModel, LangError> {
    let err =
        |message: String, span: Span| LangError::Validate(Diagnostic::new(message, span, source));

    // --- declarations: uniqueness across namespaces ----------------------
    let mut bindings: HashMap<String, Binding> = HashMap::new();
    let claim = |bindings: &HashMap<String, Binding>, name: &str, span: Span, what: &str| {
        if bindings.contains_key(name) {
            Err(err(
                format!("{what} `{name}` conflicts with an earlier declaration"),
                span,
            ))
        } else {
            Ok(())
        }
    };

    if ast.species.is_empty() {
        return Err(err(
            "a model must declare at least one species".into(),
            ast.name.span,
        ));
    }
    for (i, sp) in ast.species.iter().enumerate() {
        claim(&bindings, &sp.name, sp.span, "species")?;
        bindings.insert(sp.name.clone(), Binding::Species(i));
    }

    // consts resolve in declaration order (earlier consts are usable)
    let mut consts = Vec::with_capacity(ast.consts.len());
    for c in &ast.consts {
        claim(&bindings, &c.name.name, c.name.span, "constant")?;
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: true,
            source,
        };
        let compiled = table.resolve(&c.value)?;
        let value = compiled.as_const().ok_or_else(|| {
            err(
                format!("constant `{}` must be a constant expression", c.name.name),
                c.value.span,
            )
        })?;
        if !value.is_finite() {
            return Err(err(
                format!(
                    "constant `{}` evaluates to the non-finite value {value}",
                    c.name.name
                ),
                c.value.span,
            ));
        }
        bindings.insert(c.name.name.clone(), Binding::Const(value));
        consts.push((c.name.name.clone(), value));
    }

    // params: bounds are constant expressions; intervals must not be inverted
    if ast.params.is_empty() {
        return Err(err(
            "a model must declare at least one `param` (use a degenerate interval `[v, v]` for a precise rate)"
                .into(),
            ast.name.span,
        ));
    }
    let mut intervals = Vec::with_capacity(ast.params.len());
    for (j, p) in ast.params.iter().enumerate() {
        claim(&bindings, &p.name.name, p.name.span, "parameter")?;
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: true,
            source,
        };
        let lo_expr = table.resolve(&p.lo)?;
        let hi_expr = table.resolve(&p.hi)?;
        let lo = lo_expr.as_const().ok_or_else(|| {
            err(
                format!(
                    "lower bound of `{}` must be a constant expression",
                    p.name.name
                ),
                p.lo.span,
            )
        })?;
        let hi = hi_expr.as_const().ok_or_else(|| {
            err(
                format!(
                    "upper bound of `{}` must be a constant expression",
                    p.name.name
                ),
                p.hi.span,
            )
        })?;
        if !lo.is_finite() || !hi.is_finite() {
            return Err(err(
                format!(
                    "interval of `{}` has a non-finite bound [{lo}, {hi}]",
                    p.name.name
                ),
                p.interval_span,
            ));
        }
        if lo > hi {
            return Err(err(
                format!(
                    "interval of `{}` is inverted: lower bound {lo} exceeds upper bound {hi}",
                    p.name.name
                ),
                p.interval_span,
            ));
        }
        bindings.insert(p.name.name.clone(), Binding::Param(j));
        intervals.push((p.name.name.clone(), Interval::new(lo, hi)?));
    }
    let param_space = ParamSpace::new(intervals)?;

    // --- lets: shared subexpressions over species/params/consts ----------
    // Resolved in declaration order (earlier lets are usable) and inlined
    // at every reference, so all rules sharing a `let` evaluate the same
    // expression tree.
    for l in &ast.lets {
        claim(&bindings, &l.name.name, l.name.span, "let binding")?;
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: false,
            source,
        };
        let (compiled, ty) = table.resolve_any(&l.value)?;
        bindings.insert(l.name.name.clone(), Binding::Let(compiled, ty));
    }

    // --- rules -----------------------------------------------------------
    if ast.rules.is_empty() {
        return Err(err(
            "a model must declare at least one rule".into(),
            ast.name.span,
        ));
    }
    let mut rule_names: HashMap<&str, ()> = HashMap::new();
    let mut rules = Vec::with_capacity(ast.rules.len());
    for rule in &ast.rules {
        if rule_names.insert(rule.name.name.as_str(), ()).is_some() {
            return Err(err(
                format!("duplicate rule name `{}`", rule.name.name),
                rule.name.span,
            ));
        }
        let mut change = vec![0.0; ast.species.len()];
        for (side, sign) in [(&rule.reactants, -1.0), (&rule.products, 1.0)] {
            for term in side {
                let Some(Binding::Species(index)) = bindings.get(&term.species.name) else {
                    return Err(err(
                        format!(
                            "`{}` is not a declared species (rule sides may only mention species)",
                            term.species.name
                        ),
                        term.species.span,
                    ));
                };
                let m = term.multiplicity;
                if m <= 0.0 || m.fract() != 0.0 || m > MAX_MULTIPLICITY {
                    return Err(err(
                        format!(
                            "stoichiometric multiplicity must be a positive integer, found `{m}`"
                        ),
                        term.multiplicity_span,
                    ));
                }
                change[*index] += sign * m;
            }
        }
        if change.iter().all(|&c| c == 0.0) {
            return Err(err(
                format!(
                    "rule `{}` has zero net stoichiometry: it would never change the state",
                    rule.name.name
                ),
                rule.span,
            ));
        }
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: false,
            source,
        };
        let rate = table.resolve(&rule.rate)?;
        rules.push(ResolvedRule {
            name: rule.name.name.clone(),
            change,
            rate,
        });
    }

    // --- init ------------------------------------------------------------
    if ast.inits.is_empty() {
        return Err(err(
            "a model must provide an `init` block".into(),
            ast.name.span,
        ));
    }
    let mut init: Vec<Option<f64>> = vec![None; ast.species.len()];
    for assign in &ast.inits {
        let Some(Binding::Species(index)) = bindings.get(&assign.species.name) else {
            return Err(err(
                format!("`{}` is not a declared species", assign.species.name),
                assign.species.span,
            ));
        };
        if init[*index].is_some() {
            return Err(err(
                format!("species `{}` is initialised twice", assign.species.name),
                assign.species.span,
            ));
        }
        let table = SymbolTable {
            bindings: &bindings,
            constant_context: true,
            source,
        };
        let value_expr = table.resolve(&assign.value)?;
        let value = value_expr.as_const().ok_or_else(|| {
            err(
                format!(
                    "initial value of `{}` must be a constant expression",
                    assign.species.name
                ),
                assign.value.span,
            )
        })?;
        if !value.is_finite() || value < 0.0 {
            return Err(err(
                format!(
                    "initial value of `{}` must be finite and non-negative, found {value}",
                    assign.species.name
                ),
                assign.value.span,
            ));
        }
        init[*index] = Some(value);
    }
    for (i, slot) in init.iter().enumerate() {
        if slot.is_none() {
            return Err(err(
                format!("species `{}` is never initialised", ast.species[i].name),
                ast.species[i].span,
            ));
        }
    }

    Ok(ResolvedModel {
        name: ast.name.name.clone(),
        species: ast.species.iter().map(|s| s.name.clone()).collect(),
        param_space,
        consts,
        rules,
        init: init
            .into_iter()
            .map(|v| v.expect("checked above"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use mfu_num::StateVec;

    fn check(source: &str) -> Result<ResolvedModel, LangError> {
        validate(&parse(source).unwrap(), source)
    }

    fn validate_err(source: &str) -> Diagnostic {
        match check(source).unwrap_err() {
            LangError::Validate(d) => d,
            other => panic!("expected a validation error, got {other:?}"),
        }
    }

    const SIR: &str = "model sir;
species S, I, R;
param contact in [1, 10];
const a = 0.1;
const b = 5;
const c = 1;
rule infect: S -> I @ (a + contact * I) * S;
rule recover: I -> R @ b * I;
rule wane: R -> S @ c * R;
init S = 0.7, I = 0.3, R = 0;
";

    #[test]
    fn resolves_the_sir_model() {
        let model = check(SIR).unwrap();
        assert_eq!(model.species, vec!["S", "I", "R"]);
        assert_eq!(model.param_space.names(), &["contact".to_string()]);
        assert_eq!(model.rules.len(), 3);
        assert_eq!(model.rules[0].change, vec![-1.0, 1.0, 0.0]);
        assert_eq!(model.init, vec![0.7, 0.3, 0.0]);
        assert!(model.is_conservative());
        // rate at (0.7, 0.3, 0) with contact = 2: (0.1 + 0.6) * 0.7 = 0.49
        let x = StateVec::from([0.7, 0.3, 0.0]);
        assert!((model.rules[0].rate.eval(&x, &[2.0]) - 0.49).abs() < 1e-12);
    }

    #[test]
    fn constant_folding_inlines_consts() {
        let model = check(
            "model m; species X; param r in [0, 1];
             const k = 2 * 3;
             rule g: X -> 0 @ k * r * X;
             init X = 1;",
        )
        .unwrap();
        assert_eq!(model.consts, vec![("k".to_string(), 6.0)]);
        // the folded rate tree must contain the literal 6
        let text = format!("{:?}", model.rules[0].rate);
        assert!(text.contains("6.0"), "rate not folded: {text}");
    }

    #[test]
    fn unknown_identifier_in_rate_has_a_span() {
        let source = "model m; species X; param r in [0,1]; rule g: X -> 0 @ beta * X; init X = 1;";
        let d = validate_err(source);
        assert!(d.message.contains("unknown identifier `beta`"));
        assert_eq!(&source[d.span.start..d.span.end], "beta");
    }

    #[test]
    fn inverted_interval_is_rejected_with_span() {
        let source = "model m; species X; param r in [2, 1]; rule g: X -> 0 @ r * X; init X = 1;";
        let d = validate_err(source);
        assert!(d.message.contains("inverted"));
        assert_eq!(&source[d.span.start..d.span.end], "[2, 1]");
    }

    #[test]
    fn unknown_species_in_rule_side_is_rejected() {
        let d =
            validate_err("model m; species X; param r in [0,1]; rule g: X -> Q @ r; init X = 1;");
        assert!(d.message.contains("`Q` is not a declared species"));
    }

    #[test]
    fn fractional_and_zero_multiplicities_are_rejected() {
        let d = validate_err(
            "model m; species X, Y; param r in [0,1]; rule g: X -> 1.5 Y @ r; init X = 1, Y = 0;",
        );
        assert!(d.message.contains("positive integer"));
    }

    #[test]
    fn noop_rule_is_rejected() {
        let d =
            validate_err("model m; species X; param r in [0,1]; rule g: X -> X @ r; init X = 1;");
        assert!(d.message.contains("zero net stoichiometry"));
    }

    #[test]
    fn missing_init_names_the_species() {
        let d = validate_err(
            "model m; species X, Y; param r in [0,1]; rule g: X -> Y @ r; init X = 1;",
        );
        assert!(d.message.contains("`Y` is never initialised"));
    }

    #[test]
    fn duplicate_names_across_namespaces_are_rejected() {
        let d =
            validate_err("model m; species X; param X in [0,1]; rule g: X -> 0 @ 1; init X = 1;");
        assert!(d.message.contains("conflicts"));
    }

    #[test]
    fn species_in_const_expression_is_rejected() {
        let d = validate_err(
            "model m; species X; param r in [0,1]; const k = X; rule g: X -> 0 @ r; init X = 1;",
        );
        assert!(d.message.contains("constant expression"));
    }

    #[test]
    fn missing_param_suggests_degenerate_interval() {
        let d = validate_err("model m; species X; rule g: X -> 0 @ X; init X = 1;");
        assert!(d.message.contains("degenerate interval"));
    }

    #[test]
    fn builtin_arity_is_checked() {
        let d = validate_err(
            "model m; species X; param r in [0,1]; rule g: X -> 0 @ max(X); init X = 1;",
        );
        assert!(d.message.contains("2 argument"));
        let d = validate_err(
            "model m; species X; param r in [0,1]; rule g: X -> 0 @ foo(X); init X = 1;",
        );
        assert!(d.message.contains("unknown function"));
    }

    #[test]
    fn guarded_rates_resolve_and_evaluate_piecewise() {
        let model = check(
            "model m; species Q; param mu in [1, 2];
             rule serve: Q -> 0 @ when Q > 0 { mu / Q } else { 0 };
             init Q = 0.5;",
        )
        .unwrap();
        let rate = &model.rules[0].rate;
        assert!((rate.eval(&StateVec::from([0.5]), &[2.0]) - 4.0).abs() < 1e-12);
        assert_eq!(rate.eval(&StateVec::from([0.0]), &[2.0]), 0.0);
        assert_eq!(rate.eval(&StateVec::from([-1.0]), &[2.0]), 0.0);
    }

    #[test]
    fn indicator_turns_comparisons_into_factors() {
        let model = check(
            "model m; species Q; param mu in [1, 2];
             rule serve: Q -> 0 @ indicator(Q > 0) * mu * Q;
             init Q = 0.5;",
        )
        .unwrap();
        let rate = &model.rules[0].rate;
        assert!((rate.eval(&StateVec::from([0.5]), &[2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(rate.eval(&StateVec::from([-0.5]), &[2.0]), 0.0);
    }

    #[test]
    fn numeric_when_condition_is_a_type_error() {
        let source = "model m; species Q; param mu in [1,2];
rule g: Q -> 0 @ when Q { mu } else { 0 };
init Q = 1;";
        let d = validate_err(source);
        assert!(d.message.contains("type error"), "{}", d.message);
        assert!(d.message.contains("comparison"), "{}", d.message);
        assert_eq!(&source[d.span.start..d.span.end], "Q");
    }

    #[test]
    fn comparison_in_arithmetic_is_a_type_error_with_hint() {
        let source = "model m; species Q; param mu in [1,2];
rule g: Q -> 0 @ (Q > 0) * mu;
init Q = 1;";
        let d = validate_err(source);
        assert!(d.message.contains("type error"), "{}", d.message);
        assert!(d.message.contains("indicator"), "{}", d.message);
        assert_eq!(&source[d.span.start..d.span.end], "(Q > 0)");
    }

    #[test]
    fn bare_comparison_as_a_rate_is_a_type_error() {
        let d = validate_err(
            "model m; species Q; param mu in [1,2]; rule g: Q -> 0 @ Q > 0; init Q = 1;",
        );
        assert!(d.message.contains("type error"), "{}", d.message);
    }

    #[test]
    fn indicator_of_a_number_is_a_type_error() {
        let d = validate_err(
            "model m; species Q; param mu in [1,2]; rule g: Q -> 0 @ indicator(Q); init Q = 1;",
        );
        assert!(d.message.contains("expected a boolean"), "{}", d.message);
    }

    #[test]
    fn lets_are_shared_and_inlined() {
        let model = check(
            "model m; species A, B; param r in [1, 2];
             let total = A + B;
             let busy = total > 0.5;
             rule ga: A -> B @ when busy { r * A / total } else { 0 };
             rule gb: B -> A @ when busy { r * B / total } else { 0 };
             init A = 0.4, B = 0.6;",
        )
        .unwrap();
        let x = StateVec::from([0.4, 0.6]);
        assert!((model.rules[0].rate.eval(&x, &[2.0]) - 0.8).abs() < 1e-12);
        assert!((model.rules[1].rate.eval(&x, &[2.0]) - 1.2).abs() < 1e-12);
        let idle = StateVec::from([0.1, 0.1]);
        assert_eq!(model.rules[0].rate.eval(&idle, &[2.0]), 0.0);
    }

    #[test]
    fn let_referencing_state_is_rejected_in_constant_context() {
        let source = "model m; species A; param r in [1,2];
let total = A + 1;
rule g: A -> 0 @ r * A;
init A = total;";
        let d = validate_err(source);
        assert!(
            d.message.contains("cannot appear in a constant expression"),
            "{}",
            d.message
        );
        assert_eq!(&source[d.span.start..d.span.end], "total");
    }

    #[test]
    fn constant_lets_are_usable_in_constant_context() {
        // lets elaborate after consts and params, so a *constant* let is
        // usable in later constant contexts such as `init`
        let model = check(
            "model m; species A; param r in [1,2];
             let half = 1 / 2;
             rule g: A -> 0 @ r * half * A;
             init A = half;",
        )
        .unwrap();
        assert_eq!(model.init, vec![0.5]);
    }

    #[test]
    fn duplicate_let_names_are_rejected() {
        let d = validate_err(
            "model m; species A; param r in [1,2]; let r2 = r; let r2 = r * 2;
             rule g: A -> 0 @ r2 * A; init A = 1;",
        );
        assert!(d.message.contains("conflicts"), "{}", d.message);
    }

    #[test]
    fn constant_guard_conditions_fold_to_the_taken_branch() {
        let model = check(
            "model m; species A; param r in [1,2];
             rule g: A -> 0 @ when 1 > 2 { 100 * A } else { r * A };
             init A = 1;",
        )
        .unwrap();
        // the dead branch must be folded away entirely
        let text = format!("{:?}", model.rules[0].rate);
        assert!(!text.contains("Select"), "not folded: {text}");
        assert!(!text.contains("100"), "dead branch kept: {text}");
    }

    #[test]
    fn n_is_a_builtin_scale_constant() {
        let model =
            check("model m; species X; param r in [0,1]; rule g: X -> 0 @ r * X / N; init X = 1;")
                .unwrap();
        let x = StateVec::from([0.5]);
        assert!((model.rules[0].rate.eval(&x, &[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nonconservative_models_are_flagged() {
        let model =
            check("model m; species X; param r in [0,1]; rule birth: 0 -> X @ r; init X = 0.5;")
                .unwrap();
        assert!(!model.is_conservative());
    }
}
