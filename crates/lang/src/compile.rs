//! Backend compilation: from a [`ResolvedModel`] to the two synchronized
//! representations the rest of the workspace consumes.
//!
//! * [`CompiledModel::population_model`] — a finite-`N`
//!   [`PopulationModel`] for the
//!   Gillespie simulator (`mfu-sim`) and the explicit finite-chain
//!   expansion (`mfu_ctmc::finite`);
//! * [`CompiledModel::drift`] / [`CompiledModel::reduced_drift`] — an
//!   [`ImpreciseDrift`] for the hull/Pontryagin/Birkhoff analyses of
//!   `mfu-core`.
//!
//! The reduced drift eliminates the *last* declared species of a
//! mass-conserving model by substituting
//! `x_last = total − Σ_{i<last} x_i` — exactly the reduction the paper
//! applies to the SIR model (Equation 11). For non-conservative models no
//! coordinate can be eliminated and [`CompiledModel::reduced_drift`]
//! returns the full-dimensional drift unchanged.

use std::sync::Arc;

use mfu_core::drift::ImpreciseDrift;
use mfu_ctmc::params::ParamSpace;
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::StateVec;

use crate::diagnostics::LangError;
use crate::expr::CompiledExpr;
use crate::validate::{ResolvedModel, ResolvedRule};
use crate::vm::{ProgramSet, RateProgram};

/// A validated model compiled into evaluable form.
///
/// Obtained from [`crate::compile()`] or [`crate::Scenario::compile`];
/// cheap to clone.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    resolved: ResolvedModel,
    conservative: bool,
    total: f64,
}

impl CompiledModel {
    pub(crate) fn new(resolved: ResolvedModel) -> Self {
        let conservative = resolved.is_conservative();
        let total = resolved.init.iter().sum();
        CompiledModel {
            resolved,
            conservative,
            total,
        }
    }

    /// The model name from the `model <name>;` header.
    pub fn name(&self) -> &str {
        &self.resolved.name
    }

    /// Species names in declaration (= state-coordinate) order.
    pub fn species(&self) -> &[String] {
        &self.resolved.species
    }

    /// State dimension (number of species).
    pub fn dim(&self) -> usize {
        self.resolved.species.len()
    }

    /// The uncertainty set `Θ`.
    pub fn params(&self) -> &ParamSpace {
        &self.resolved.param_space
    }

    /// Named constants with their folded values.
    pub fn consts(&self) -> &[(String, f64)] {
        &self.resolved.consts
    }

    /// `true` when every rule conserves the total population, enabling the
    /// reduced-coordinate drift.
    pub fn is_conservative(&self) -> bool {
        self.conservative
    }

    /// Total initial mass `Σ_i init_i` (the conserved quantity of a
    /// conservative model; `1` for fraction-normalised init blocks).
    pub fn total_mass(&self) -> f64 {
        self.total
    }

    /// Initial condition on the full state space.
    pub fn initial_state(&self) -> StateVec {
        StateVec::from(self.resolved.init.clone())
    }

    /// Initial condition in reduced coordinates (the last species dropped
    /// when the model is conservative; identical to
    /// [`CompiledModel::initial_state`] otherwise).
    pub fn reduced_initial_state(&self) -> StateVec {
        if self.conservative && self.dim() > 1 {
            StateVec::from(self.resolved.init[..self.dim() - 1].to_vec())
        } else {
            self.initial_state()
        }
    }

    /// Integer initial counts for a population of size `scale`: each
    /// fraction is rounded as `init_i · scale` (so `counts / scale`
    /// matches [`CompiledModel::initial_state`] as closely as possible);
    /// for conservative models the rounding remainder is absorbed by the
    /// last species so the counts sum to `total · scale`.
    pub fn initial_counts(&self, scale: usize) -> Vec<i64> {
        let mut counts: Vec<i64> = self
            .resolved
            .init
            .iter()
            .map(|f| (f * scale as f64).round() as i64)
            .collect();
        if self.conservative {
            let last = counts.len() - 1;
            let assigned: i64 = counts[..last].iter().sum();
            counts[last] = ((self.total * scale as f64).round() as i64 - assigned).max(0);
        }
        counts
    }

    /// The resolved rules (name, jump vector, compiled rate expression), in
    /// declaration order.
    pub fn rules(&self) -> &[ResolvedRule] {
        &self.resolved.rules
    }

    /// Builds the finite-`N` population backend.
    ///
    /// Every rule's rate expression is lowered to a flat
    /// [`RateProgram`], so the simulator evaluates
    /// bytecode (or a mass-action fast path) instead of walking the
    /// expression tree, and each transition reports its species support for
    /// the dependency-graph Gillespie path.
    ///
    /// # Errors
    ///
    /// Propagates builder failures from `mfu-ctmc` as
    /// [`LangError::Backend`] (none are expected for a validated model).
    pub fn population_model(&self) -> Result<PopulationModel, LangError> {
        let mut builder = PopulationModel::builder(self.dim(), self.resolved.param_space.clone())
            .variable_names(self.resolved.species.clone());
        for rule in &self.resolved.rules {
            builder = builder.transition(TransitionClass::compiled(
                rule.name.clone(),
                StateVec::from(rule.change.clone()),
                Arc::new(RateProgram::compile(&rule.rate)),
            ));
        }
        Ok(builder.build()?)
    }

    /// The full-dimensional mean-field drift backend.
    pub fn drift(&self) -> DslDrift {
        DslDrift::assemble(self.resolved.rules.clone(), self.dim(), self.clone(), false)
    }

    /// The reduced mean-field drift: for conservative models the last
    /// species is eliminated via `x_last = total − Σ x_i`; otherwise the
    /// full drift is returned.
    ///
    /// The elimination happens at compile time: every rate expression has
    /// its `x_last` references rewritten to `total − Σ_{i<last} x_i` and
    /// the jump vectors are truncated, so reduced evaluation allocates
    /// nothing per call.
    pub fn reduced_drift(&self) -> DslDrift {
        let full_dim = self.dim();
        if !(self.conservative && full_dim > 1) {
            let mut drift = self.drift();
            drift.reduced = false;
            return drift;
        }
        let last = full_dim - 1;
        // total − (x_0 + x_1 + … + x_{last−1}), summed in declaration
        // order so the arithmetic matches the full-state evaluation bit
        // for bit.
        let mut leading_sum = CompiledExpr::Species(0);
        for i in 1..last {
            leading_sum =
                CompiledExpr::Add(Box::new(leading_sum), Box::new(CompiledExpr::Species(i)));
        }
        let replacement = CompiledExpr::Sub(
            Box::new(CompiledExpr::Const(self.total)),
            Box::new(leading_sum),
        );
        let rules = self
            .resolved
            .rules
            .iter()
            .map(|rule| ResolvedRule {
                name: rule.name.clone(),
                change: rule.change[..last].to_vec(),
                rate: rule.rate.substitute_species(last, &replacement),
            })
            .collect();
        DslDrift::assemble(rules, last, self.clone(), true)
    }
}

/// [`ImpreciseDrift`] implementation backed by compiled DSL rules.
///
/// Created by [`CompiledModel::drift`] or [`CompiledModel::reduced_drift`].
/// The rule rates are lowered once to a [`ProgramSet`]; every
/// [`ImpreciseDrift::drift_into`] call evaluates all of them in a single VM
/// pass over a shared scratch register file, with no per-call allocation.
#[derive(Debug, Clone)]
pub struct DslDrift {
    /// Rules specialised to this drift's coordinates (rates rewritten and
    /// jump vectors truncated when reduced).
    rules: Vec<ResolvedRule>,
    /// The rule rates lowered to flat programs, in rule order.
    programs: ProgramSet,
    dim: usize,
    model: CompiledModel,
    reduced: bool,
}

impl DslDrift {
    fn assemble(rules: Vec<ResolvedRule>, dim: usize, model: CompiledModel, reduced: bool) -> Self {
        let programs = ProgramSet::new(
            rules
                .iter()
                .map(|r| RateProgram::compile(&r.rate))
                .collect(),
        );
        DslDrift {
            rules,
            programs,
            dim,
            model,
            reduced,
        }
    }

    /// Whether this drift runs in reduced (last species eliminated)
    /// coordinates.
    pub fn is_reduced(&self) -> bool {
        self.reduced
    }

    /// The compiled model this drift evaluates.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// The lowered rate programs, in rule order.
    pub fn programs(&self) -> &ProgramSet {
        &self.programs
    }

    /// The rules this drift evaluates (rates rewritten and jump vectors
    /// truncated when reduced), in declaration order.
    pub fn rules(&self) -> &[ResolvedRule] {
        &self.rules
    }
}

impl ImpreciseDrift for DslDrift {
    fn dim(&self) -> usize {
        self.dim
    }

    fn params(&self) -> &ParamSpace {
        &self.model.resolved.param_space
    }

    fn drift_into(&self, x: &StateVec, theta: &[f64], out: &mut StateVec) {
        out.fill_zero();
        let rules = &self.rules;
        self.programs.eval_each(x, theta, |k, r| {
            if r != 0.0 {
                for (o, c) in out.as_mut_slice().iter_mut().zip(rules[k].change.iter()) {
                    *o += r * c;
                }
            }
        });
    }

    fn drift_batch_into(&self, x: &SoaBatch, theta: &BatchTheta<'_>, out: &mut SoaBatch) {
        assert_eq!(x.rows(), self.dim, "state batch dimension mismatch");
        let width = x.width();
        out.reset(self.dim, width);
        // One batched VM pass computes every rule rate for every lane
        // (rule-major rows), then the jump accumulation runs per lane in rule
        // order with the same `r != 0` guard as the scalar path, so each
        // output coordinate sees the identical sequence of `+= r * c`
        // additions as a scalar `drift_into` on that lane.
        let mut rates = vec![0.0_f64; self.rules.len() * width];
        self.programs.eval_batch_into(x, *theta, &mut rates);
        for (k, rule) in self.rules.iter().enumerate() {
            let row = &rates[k * width..(k + 1) * width];
            for (i, &c) in rule.change.iter().enumerate() {
                let out_row = out.row_mut(i);
                for (o, &r) in out_row.iter_mut().zip(row.iter()) {
                    if r != 0.0 {
                        *o += r * c;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const SIR: &str = "model sir;
species S, I, R;
param contact in [1, 10];
const a = 0.1;
const b = 5;
const c = 1;
rule infect: S -> I @ (a + contact * I) * S;
rule recover: I -> R @ b * I;
rule wane: R -> S @ c * R;
init S = 0.7, I = 0.3, R = 0;
";

    #[test]
    fn population_and_drift_backends_agree() {
        let model = compile(SIR).unwrap();
        let population = model.population_model().unwrap();
        let drift = model.drift();
        let x = StateVec::from([0.6, 0.3, 0.1]);
        for theta in [1.0, 4.2, 10.0] {
            let a = population.drift(&x, &[theta]).unwrap();
            let b = drift.drift(&x, &[theta]);
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-15, "coordinate {k} at ϑ = {theta}");
            }
        }
    }

    #[test]
    fn batched_dsl_drift_matches_scalar_bit_for_bit() {
        let model = compile(SIR).unwrap();
        for drift in [model.drift(), model.reduced_drift()] {
            let dim = drift.dim();
            let states: Vec<Vec<f64>> = (0..5)
                .map(|l| (0..dim).map(|i| 0.05 + 0.11 * (l + i) as f64).collect())
                .collect();
            let thetas: Vec<Vec<f64>> = (0..5).map(|l| vec![1.0 + 1.7 * l as f64]).collect();
            let x = SoaBatch::from_lanes(&states);
            let th = SoaBatch::from_lanes(&thetas);
            let mut out = SoaBatch::default();
            drift.drift_batch_into(&x, &BatchTheta::PerLane(&th), &mut out);
            for (l, state) in states.iter().enumerate() {
                let scalar = drift.drift(&StateVec::from(state.clone()), &thetas[l]);
                for i in 0..dim {
                    assert_eq!(
                        out.get(i, l).to_bits(),
                        scalar[i].to_bits(),
                        "coordinate {i} of lane {l}"
                    );
                }
            }
            let mut shared_out = SoaBatch::default();
            drift.drift_batch_into(&x, &BatchTheta::Shared(&[4.2]), &mut shared_out);
            for (l, state) in states.iter().enumerate() {
                let scalar = drift.drift(&StateVec::from(state.clone()), &[4.2]);
                for i in 0..dim {
                    assert_eq!(shared_out.get(i, l).to_bits(), scalar[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn reduced_drift_eliminates_the_last_species() {
        let model = compile(SIR).unwrap();
        assert!(model.is_conservative());
        let full = model.drift();
        let reduced = model.reduced_drift();
        assert_eq!(full.dim(), 3);
        assert_eq!(reduced.dim(), 2);
        assert!(reduced.is_reduced());
        let xr = StateVec::from([0.6, 0.3]);
        let xf = StateVec::from([0.6, 0.3, 0.1]);
        for theta in [1.0, 5.5, 10.0] {
            let a = full.drift(&xf, &[theta]);
            let b = reduced.drift(&xr, &[theta]);
            assert!((a[0] - b[0]).abs() < 1e-15);
            assert!((a[1] - b[1]).abs() < 1e-15);
        }
    }

    #[test]
    fn nonconservative_models_keep_full_dimension() {
        let model = compile(
            "model open; species X; param r in [0.5, 2];
             rule birth: 0 -> X @ r; rule death: X -> 0 @ X;
             init X = 0.2;",
        )
        .unwrap();
        assert!(!model.is_conservative());
        let reduced = model.reduced_drift();
        assert_eq!(reduced.dim(), 1);
        assert!(!reduced.is_reduced());
    }

    #[test]
    fn initial_conditions_and_counts() {
        let model = compile(SIR).unwrap();
        assert_eq!(model.initial_state().as_slice(), &[0.7, 0.3, 0.0]);
        assert_eq!(model.reduced_initial_state().as_slice(), &[0.7, 0.3]);
        assert!((model.total_mass() - 1.0).abs() < 1e-12);
        for scale in [10usize, 100, 999] {
            let counts = model.initial_counts(scale);
            assert_eq!(counts.iter().sum::<i64>(), scale as i64, "scale {scale}");
            assert!(counts.iter().all(|&c| c >= 0));
        }
    }

    #[test]
    fn initial_counts_track_fractions_for_nonconservative_models() {
        // Regression: counts must normalise against `scale`, not against the
        // model's total mass — otherwise a non-conservative model starting at
        // x = 0.2 would be simulated from x = 1.0.
        let model = compile(
            "model open; species X; param r in [0.5, 2];
             rule birth: 0 -> X @ r; rule death: X -> 0 @ X;
             init X = 0.2;",
        )
        .unwrap();
        assert_eq!(model.initial_counts(1000), vec![200]);
    }

    #[test]
    fn initial_counts_respect_nonunit_total_mass() {
        // A conservative model whose init block sums to 2: the last species
        // absorbs the remainder against total · scale.
        let model = compile(
            "model pair; species X, Y; param r in [0.5, 2];
             rule swap: X -> Y @ r * X; rule back: Y -> X @ Y;
             init X = 0.5, Y = 1.5;",
        )
        .unwrap();
        let counts = model.initial_counts(100);
        assert_eq!(counts, vec![50, 150]);
        assert_eq!(counts.iter().sum::<i64>(), 200);
    }

    #[test]
    fn extremal_theta_matches_affine_structure() {
        // ẋ_I is increasing in the contact rate at interior states, so the
        // maximising vertex must be the upper bound.
        let model = compile(SIR).unwrap();
        let drift = model.reduced_drift();
        let x = StateVec::from([0.6, 0.2]);
        let (theta, _) = drift.extremal_theta(&x, &StateVec::from([0.0, 1.0]));
        assert_eq!(theta, vec![10.0]);
    }
}
