//! `mfu-lang`: a textual model language for imprecise population CTMCs.
//!
//! The rest of the workspace analyses models given as Rust values — a
//! [`PopulationModel`](mfu_ctmc::population::PopulationModel) for the
//! finite-`N` stochastic side and an
//! [`ImpreciseDrift`](mfu_core::drift::ImpreciseDrift) for the mean-field
//! side. This crate adds a compact, PRISM-flavoured *textual* front-end for
//! both: declare species, interval-valued parameters, constants, transition
//! rules and an initial condition, and [`compile()`] produces the two
//! synchronized backends ready for every analysis in `mfu-core`, the
//! Gillespie simulator in `mfu-sim` and the finite-chain expansion in
//! `mfu-ctmc`.
//!
//! # Example
//!
//! The SIR epidemic of Section V of Bortolussi & Gast (DSN 2016), declared
//! in nine lines and pushed through a Pontryagin transient bound:
//!
//! ```
//! use mfu_core::drift::ImpreciseDrift;
//! use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
//!
//! let model = mfu_lang::compile(
//!     "model sir;
//!      species S, I, R;
//!      param contact in [1, 10];
//!      const a = 0.1;
//!      rule infect:  S -> I @ (a + contact * I) * S;
//!      rule recover: I -> R @ 5 * I;
//!      rule wane:    R -> S @ 1 * R;
//!      init S = 0.7, I = 0.3, R = 0;",
//! )?;
//!
//! // Mean-field side: bound the infected fraction at T = 3.
//! let drift = model.reduced_drift();
//! let solver = PontryaginSolver::new(PontryaginOptions::default());
//! let (lo, hi) = solver.coordinate_extremes(&drift, &model.reduced_initial_state(), 3.0, 1)?;
//! assert!(0.0 <= lo && lo < hi && hi <= 1.0);
//!
//! // Stochastic side: the same source yields the finite-N population model.
//! let population = model.population_model()?;
//! assert_eq!(population.dim(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Ready-made models — the paper's case studies plus new ones — live in the
//! [`scenarios`] registry:
//!
//! ```
//! let registry = mfu_lang::scenarios::ScenarioRegistry::with_builtins();
//! let botnet = registry.compile("botnet")?;
//! assert_eq!(botnet.species(), ["S", "D", "A", "P"]);
//! # Ok::<(), mfu_lang::LangError>(())
//! ```
//!
//! # Grammar
//!
//! Comments run from `//` or `#` to the end of the line. Whitespace is
//! insignificant. In EBNF:
//!
//! ```text
//! model      = "model" ident ";" { item } ;
//! item       = species | param | const | let | rule | init ;
//!
//! species    = "species" ident { "," ident } ";" ;
//! param      = "param" ident "in" "[" expr "," expr "]" ";" ;
//! const      = "const" ident "=" expr ";" ;
//! let        = "let" ident "=" expr ";" ;
//! rule       = "rule" ident ":" side "->" side "@" expr ";" ;
//! init       = "init" ident "=" expr { "," ident "=" expr } ";" ;
//!
//! side       = "0" | term { "+" term } ;
//! term       = [ integer ] ident ;
//!
//! expr       = when | cmp ;
//! when       = "when" expr "{" expr "}" "else" ( when | "{" expr "}" ) ;
//! cmp        = add [ ("<" | "<=" | ">" | ">=" | "==" | "!=") add ] ;
//! add        = mul { ("+" | "-") mul } ;
//! mul        = unary { ("*" | "/") unary } ;
//! unary      = "-" unary | power ;
//! power      = atom [ "^" unary ] ;            (* right-associative *)
//! atom       = number | ident | call | "(" expr ")" ;
//! call       = ident "(" [ expr { "," expr } ] ")" ;
//!
//! ident      = letter-or-underscore { letter-or-digit-or-underscore } ;
//! number     = unsigned decimal literal with optional fraction/exponent ;
//! ```
//!
//! Semantics:
//!
//! * **species** name the state coordinates; their values are *normalised
//!   fractions* (counts divided by the scale `N`).
//! * **param** declares an imprecise parameter ranging over a closed
//!   interval; a degenerate interval `[v, v]` declares a precisely known
//!   rate. The bounds must be constant expressions with `lo <= hi`.
//! * **const** names a scalar usable in any later expression; definitions
//!   may reference earlier constants.
//! * **let** names a *shared subexpression* usable in any rule rate.
//!   Unlike a constant it may reference species, parameters, earlier
//!   `let`s and comparisons; references are inlined during validation, so
//!   rules sharing a `let` evaluate the same expression tree (the GPS
//!   model shares its service-denominator `load` this way).
//! * **rule** gives a transition class: the two sides are stoichiometric
//!   sums (`S + I`, `2 I`, or `0` for nothing) and the rate is the density
//!   `β(x, ϑ)` of the scaled process — any expression over species,
//!   parameters, constants, `let`s and the builtins `min`, `max`, `abs`,
//!   `exp`, `log`, `sqrt`, `pow`, `indicator`. The builtin constant `N`
//!   equals `1` in these normalised units, so count-style rates such as
//!   `beta * S * I / N` stay valid verbatim.
//! * **guards** make rates piecewise: `when <cond> { e1 } else { e2 }`
//!   evaluates `e1` where the condition holds and `e2` elsewhere
//!   (`else when` chains give multi-piece definitions), e.g. the
//!   empty-queue guard of a processor-sharing service rate
//!   `when Q1 + Q2 > 0 { mu * Q1 / (Q1 + Q2) } else { 0 }`. Conditions
//!   are single comparisons (`<`, `<=`, `>`, `>=`, `==`, `!=`); they type
//!   as *booleans*, so using one as a number requires `indicator(cond)`
//!   (which is `1` where the condition holds, `0` elsewhere) and using a
//!   number as a condition is a type error with a source span.
//! * **init** assigns every species its initial fraction.
//!
//! Validation rejects — with caret diagnostics pointing into the source —
//! unknown identifiers, cross-namespace name clashes, non-integer or
//! non-positive stoichiometries, rules with zero net effect, inverted or
//! non-finite parameter intervals, constant expressions that reference
//! state, num/bool type errors around comparisons and guards, and
//! incomplete or duplicated `init` blocks.
//!
//! # Reduced coordinates
//!
//! When every rule conserves the total population (all jump vectors sum to
//! zero), [`CompiledModel::reduced_drift`] eliminates the *last* declared
//! species via `x_last = total − Σ_{i<last} x_i`, matching the paper's
//! treatment of the SIR model (Equation 11). Order the species so the
//! coordinate you care about least comes last.
//!
//! # Rate evaluation
//!
//! Validation produces [`expr::CompiledExpr`] trees, but nothing hot ever
//! interprets them: backend compilation lowers every rate through the
//! [`vm`] module to a flat [`RateProgram`] — a constant, a mass-action
//! fast path (`c · ϑ? · x_i (· x_j)`), or a register-based bytecode
//! program — preserving the tree's exact floating-point evaluation order.
//! Guarded rates lower to straight-line compare/select bytecode: both
//! branches evaluate and a branch-free select (a conditional move, not a
//! jump) picks the live one, so piecewise rates keep the linear dispatch
//! profile of the bytecode engine.
//! [`CompiledModel::population_model`] hands these programs to
//! `mfu_ctmc::transition::TransitionClass` (whose species supports drive
//! the dependency-graph Gillespie path in `mfu-sim`), and
//! [`DslDrift`] evaluates all rule rates in one VM pass
//! over a shared scratch register file. Measured speedup over the tree
//! interpreter: ≈4× per rate evaluation (see `BENCH_rate_engine.json` at
//! the repository root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod diagnostics;
pub mod expr;
pub mod hash;
pub mod lexer;
pub mod parser;
pub mod scenarios;
pub mod token;
pub mod validate;
pub mod vm;

pub use compile::{CompiledModel, DslDrift};
pub use diagnostics::{Diagnostic, LangError, Span};
pub use hash::{model_hash, source_hash, ModelHash, ModelInterner};
pub use scenarios::{Scenario, ScenarioRegistry};
pub use validate::ResolvedModel;
pub use vm::{ProgramSet, RateProgram};

/// Parses model source into a syntactic AST (no name resolution).
///
/// # Errors
///
/// Returns [`LangError::Lex`] or [`LangError::Parse`] with a span
/// diagnostic.
pub fn parse(source: &str) -> Result<ast::ModelAst, LangError> {
    parser::parse(source)
}

/// Parses, validates and compiles model source in one step.
///
/// # Errors
///
/// Returns the first [`LangError`] from any pipeline stage; semantic
/// errors carry a [`Diagnostic`] with the offending span.
pub fn compile(source: &str) -> Result<CompiledModel, LangError> {
    compile_observed(source, &mfu_obs::Obs::none())
}

/// [`compile()`] with an observability bundle attached.
///
/// With metrics enabled the three pipeline stages are timed
/// ([`Timer::LangParse`](mfu_obs::Timer::LangParse),
/// [`Timer::LangValidate`](mfu_obs::Timer::LangValidate),
/// [`Timer::LangLower`](mfu_obs::Timer::LangLower)), every rule rate is
/// lowered once to report its [`RateProgram`] shape (counted under
/// [`Counter::LangRulesLowered`](mfu_obs::Counter::LangRulesLowered)), and
/// the tracer receives one `rule_lowered` event per rule plus a
/// `model_compiled` summary. With the bundle disabled this is exactly
/// [`compile()`] — no clocks are read and no extra lowering runs.
///
/// # Errors
///
/// Same as [`compile()`].
pub fn compile_observed(source: &str, obs: &mfu_obs::Obs) -> Result<CompiledModel, LangError> {
    use mfu_obs::{Counter, Field, Timer};

    let metrics = &obs.metrics;
    let ast = metrics.time(Timer::LangParse, || parser::parse(source))?;
    let resolved = metrics.time(Timer::LangValidate, || validate::validate(&ast, source))?;
    let model = CompiledModel::new(resolved);

    // Backends lower rule rates lazily; with observability on, run the
    // lowering once here (compile-time cost only) so the per-rule program
    // shapes land in the metrics and trace.
    if obs.is_enabled() {
        metrics.time(Timer::LangLower, || {
            for rule in model.rules() {
                let program = vm::RateProgram::compile(&rule.rate);
                metrics.add(Counter::LangRulesLowered, 1);
                if obs.tracer.is_enabled() {
                    let kind = match program.kind() {
                        vm::ProgramKind::Const(_) => "const",
                        vm::ProgramKind::MassAction { .. } => "mass_action",
                        vm::ProgramKind::AffineProduct { .. } => "affine_product",
                        vm::ProgramKind::Bytecode(_) => "bytecode",
                    };
                    obs.tracer.event(
                        "rule_lowered",
                        &[
                            ("rule", Field::Str(&rule.name)),
                            ("kind", Field::Str(kind)),
                            ("registers", Field::U64(program.registers() as u64)),
                            ("fast_path", Field::Bool(program.is_fast_path())),
                        ],
                    );
                }
            }
        });
        if obs.tracer.is_enabled() {
            obs.tracer.event(
                "model_compiled",
                &[
                    ("model", Field::Str(model.name())),
                    ("species", Field::U64(model.dim() as u64)),
                    ("rules", Field::U64(model.rules().len() as u64)),
                    ("params", Field::U64(model.params().dim() as u64)),
                ],
            );
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_pipeline_surfaces_each_stage() {
        // lex error
        assert!(matches!(compile("model m; ?"), Err(LangError::Lex(_))));
        // parse error
        assert!(matches!(
            compile("model m; species"),
            Err(LangError::Parse(_))
        ));
        // validation error
        assert!(matches!(
            compile("model m; species X; param r in [0,1]; rule g: X -> 0 @ y; init X = 1;"),
            Err(LangError::Validate(_))
        ));
        // success
        assert!(compile(
            "model m; species X; param r in [0,1]; rule g: X -> 0 @ r * X; init X = 1;"
        )
        .is_ok());
    }

    #[test]
    fn observed_compile_reports_stages_and_rule_shapes() {
        let source = "model sir;
             species S, I, R;
             param contact in [1, 10];
             const a = 0.1;
             rule infect:  S -> I @ (a + contact * I) * S;
             rule recover: I -> R @ 5 * I;
             rule wane:    R -> S @ 1 * R;
             init S = 0.7, I = 0.3, R = 0;";

        let obs = mfu_obs::Obs::with_metrics();
        let (tracer, sink) = mfu_obs::Tracer::to_buffer();
        let obs = mfu_obs::Obs {
            tracer,
            ..obs.clone()
        };
        let model = compile_observed(source, &obs).unwrap();
        assert_eq!(model.rules().len(), 3);

        let snapshot = obs.metrics.snapshot().unwrap();
        assert_eq!(snapshot.counter(mfu_obs::Counter::LangRulesLowered), 3);
        // stage timers tick (lowering three tiny rules may round to 0 ns,
        // but the parse of an eight-line model must not)
        assert!(snapshot.timer_ns(mfu_obs::Timer::LangParse) > 0);

        let trace = sink.contents();
        assert_eq!(trace.matches("\"ev\":\"rule_lowered\"").count(), 3);
        assert!(trace.contains("\"rule\":\"infect\""));
        assert!(trace.contains("\"kind\":\"affine_product\""));
        assert!(trace.contains("\"kind\":\"mass_action\""));
        assert!(trace.contains("\"ev\":\"model_compiled\""));

        // identical result through the plain entry point
        let plain = compile(source).unwrap();
        assert_eq!(plain.species(), model.species());
        assert_eq!(plain.rules().len(), model.rules().len());
    }

    #[test]
    fn errors_render_readably() {
        let err = compile("model m; species X; param r in [3, 1]; rule g: X -> 0 @ r; init X = 1;")
            .unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("inverted"));
        assert!(rendered.contains("^"));
        assert!(err.diagnostic().is_some());
    }
}
