//! Tokens of the model language.

use std::fmt;

use crate::diagnostics::Span;

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `model`
    KwModel,
    /// `species`
    KwSpecies,
    /// `param`
    KwParam,
    /// `const`
    KwConst,
    /// `rule`
    KwRule,
    /// `init`
    KwInit,
    /// `in`
    KwIn,
    /// `let`
    KwLet,
    /// `when`
    KwWhen,
    /// `else`
    KwElse,
    /// An identifier (species, parameter, constant, rule or function name).
    Ident(String),
    /// A numeric literal (integer or decimal, optional exponent).
    Number(f64),
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Equals,
    /// `->`
    Arrow,
    /// `@`
    At,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Neq,
    /// End of input (synthetic, always the last token).
    Eof,
}

impl TokenKind {
    /// A short human-readable name used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::KwModel => "`model`".into(),
            TokenKind::KwSpecies => "`species`".into(),
            TokenKind::KwParam => "`param`".into(),
            TokenKind::KwConst => "`const`".into(),
            TokenKind::KwRule => "`rule`".into(),
            TokenKind::KwInit => "`init`".into(),
            TokenKind::KwIn => "`in`".into(),
            TokenKind::KwLet => "`let`".into(),
            TokenKind::KwWhen => "`when`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Number(v) => format!("number `{v}`"),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Equals => "`=`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::At => "`@`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Neq => "`!=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it sits in the source.
    pub span: Span,
}
