//! Source spans and rendered diagnostics.
//!
//! Every token, AST node and semantic error carries a [`Span`] of byte
//! offsets into the original source. A [`Diagnostic`] resolves the span back
//! to a line/column position and renders the offending line with a caret
//! underline, in the familiar compiler style:
//!
//! ```text
//! error: unknown identifier `beta`
//!  --> model.mfu:5:23
//!   |
//! 5 | rule infect: S -> I @ beta * S * I;
//!   |                       ^^^^
//! ```

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Returns `true` for a zero-length span (e.g. end-of-input).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A line/column position (1-based) resolved from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in bytes from the line start).
    pub col: usize,
}

/// Resolves the start of `span` to a line/column position in `source`.
pub fn line_col(source: &str, span: Span) -> LineCol {
    let upto = &source[..span.start.min(source.len())];
    let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
    let col = upto
        .rfind('\n')
        .map_or(span.start + 1, |nl| span.start - nl);
    LineCol { line, col }
}

/// A diagnostic message anchored to a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where in the source the problem was detected.
    pub span: Span,
    /// Resolved position of `span` (1-based line and column).
    pub position: LineCol,
    /// The full source line containing the span start.
    pub source_line: String,
}

impl Diagnostic {
    /// Builds a diagnostic, resolving `span` against `source`.
    pub fn new(message: impl Into<String>, span: Span, source: &str) -> Self {
        let position = line_col(source, span);
        let source_line = source
            .lines()
            .nth(position.line - 1)
            .unwrap_or_default()
            .to_string();
        Diagnostic {
            message: message.into(),
            span,
            position,
            source_line,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.message)?;
        writeln!(
            f,
            " --> model.mfu:{}:{}",
            self.position.line, self.position.col
        )?;
        let gutter = self.position.line.to_string();
        writeln!(f, "{:width$} |", "", width = gutter.len())?;
        writeln!(f, "{gutter} | {}", self.source_line)?;
        let underline_len = self.span.len().clamp(
            1,
            self.source_line
                .len()
                .saturating_sub(self.position.col - 1)
                .max(1),
        );
        write!(
            f,
            "{:width$} | {:pad$}{}",
            "",
            "",
            "^".repeat(underline_len),
            width = gutter.len(),
            pad = self.position.col - 1
        )
    }
}

/// Errors produced while parsing, validating or compiling a model.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// The lexer met a character or literal it cannot tokenise.
    Lex(Diagnostic),
    /// The token stream does not match the grammar.
    Parse(Diagnostic),
    /// The model is grammatically well-formed but semantically invalid
    /// (unknown identifier, bad stoichiometry, inverted interval, …).
    Validate(Diagnostic),
    /// Lowering to the population/drift backends failed (propagated from
    /// `mfu-ctmc`, e.g. an interval rejected by [`mfu_ctmc::params`]).
    Backend(String),
}

impl LangError {
    /// The diagnostic, when the error carries one.
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        match self {
            LangError::Lex(d) | LangError::Parse(d) | LangError::Validate(d) => Some(d),
            LangError::Backend(_) => None,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex(d) | LangError::Parse(d) | LangError::Validate(d) => d.fmt(f),
            LangError::Backend(msg) => write!(f, "error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<mfu_ctmc::CtmcError> for LangError {
    fn from(err: mfu_ctmc::CtmcError) -> Self {
        LangError::Backend(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "model demo;\nspecies S, I;\nrule bad: S -> I @ beta * S;\n";

    #[test]
    fn spans_resolve_to_line_and_column() {
        let offset = SOURCE.find("beta").unwrap();
        let span = Span::new(offset, offset + 4);
        let pos = line_col(SOURCE, span);
        assert_eq!(pos.line, 3);
        assert_eq!(pos.col, 20);
    }

    #[test]
    fn diagnostics_render_with_caret() {
        let offset = SOURCE.find("beta").unwrap();
        let diag = Diagnostic::new(
            "unknown identifier `beta`",
            Span::new(offset, offset + 4),
            SOURCE,
        );
        let text = diag.to_string();
        assert!(text.contains("unknown identifier"));
        assert!(text.contains("model.mfu:3:20"));
        assert!(text.contains("^^^^"));
        assert!(text.contains("rule bad"));
    }

    #[test]
    fn span_union_and_emptiness() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(Span::new(5, 5).is_empty());
    }
}
