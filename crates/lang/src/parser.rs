//! Recursive-descent parser for the model language.
//!
//! The grammar (EBNF) is documented at the crate root. The parser is a
//! straightforward LL(1) descent over the token stream with precedence
//! climbing for expressions; every AST node records the span it was built
//! from.

use crate::ast::{
    BinOp, CmpOp, ConstDecl, Expr, ExprKind, Ident, InitAssign, LetDecl, ModelAst, ParamDecl,
    RuleDecl, StoichTerm,
};
use crate::diagnostics::{Diagnostic, LangError, Span};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a complete model source into an AST.
///
/// # Errors
///
/// Returns [`LangError::Lex`] or [`LangError::Parse`] with a span
/// diagnostic on the first offending token.
pub fn parse(source: &str) -> Result<ModelAst, LangError> {
    let tokens = tokenize(source)?;
    Parser {
        source,
        tokens,
        pos: 0,
    }
    .model()
}

struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    fn error(&self, message: impl Into<String>, span: Span) -> LangError {
        LangError::Parse(Diagnostic::new(message, span, self.source))
    }

    fn expect(&mut self, kind: &TokenKind, context: &str) -> Result<Token, LangError> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            let found = self.peek();
            Err(self.error(
                format!(
                    "expected {} {context}, found {}",
                    kind.describe(),
                    found.kind.describe()
                ),
                found.span,
            ))
        }
    }

    fn expect_ident(&mut self, context: &str) -> Result<Ident, LangError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let token = self.advance();
                let TokenKind::Ident(name) = token.kind else {
                    unreachable!()
                };
                Ok(Ident {
                    name,
                    span: token.span,
                })
            }
            other => {
                let span = self.peek().span;
                Err(self.error(
                    format!("expected identifier {context}, found {}", other.describe()),
                    span,
                ))
            }
        }
    }

    fn model(mut self) -> Result<ModelAst, LangError> {
        self.expect(&TokenKind::KwModel, "at the start of the file")?;
        let name = self.expect_ident("after `model`")?;
        self.expect(&TokenKind::Semi, "after the model name")?;

        let mut ast = ModelAst {
            name,
            species: Vec::new(),
            params: Vec::new(),
            consts: Vec::new(),
            lets: Vec::new(),
            rules: Vec::new(),
            inits: Vec::new(),
        };
        loop {
            match self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::KwSpecies => self.species_decl(&mut ast)?,
                TokenKind::KwParam => self.param_decl(&mut ast)?,
                TokenKind::KwConst => self.const_decl(&mut ast)?,
                TokenKind::KwLet => self.let_decl(&mut ast)?,
                TokenKind::KwRule => self.rule_decl(&mut ast)?,
                TokenKind::KwInit => self.init_decl(&mut ast)?,
                _ => {
                    let found = self.peek();
                    return Err(self.error(
                        format!(
                            "expected `species`, `param`, `const`, `let`, `rule` or `init`, found {}",
                            found.kind.describe()
                        ),
                        found.span,
                    ));
                }
            }
        }
        Ok(ast)
    }

    fn species_decl(&mut self, ast: &mut ModelAst) -> Result<(), LangError> {
        self.advance(); // `species`
        loop {
            ast.species
                .push(self.expect_ident("in a `species` declaration")?);
            match self.peek().kind {
                TokenKind::Comma => {
                    self.advance();
                }
                _ => break,
            }
        }
        self.expect(&TokenKind::Semi, "after the species list")?;
        Ok(())
    }

    fn param_decl(&mut self, ast: &mut ModelAst) -> Result<(), LangError> {
        self.advance(); // `param`
        let name = self.expect_ident("after `param`")?;
        self.expect(&TokenKind::KwIn, "after the parameter name")?;
        let open = self.expect(&TokenKind::LBracket, "to open the parameter interval")?;
        let lo = self.expr()?;
        self.expect(&TokenKind::Comma, "between the interval bounds")?;
        let hi = self.expr()?;
        let close = self.expect(&TokenKind::RBracket, "to close the parameter interval")?;
        self.expect(&TokenKind::Semi, "after the parameter declaration")?;
        ast.params.push(ParamDecl {
            name,
            lo,
            hi,
            interval_span: open.span.to(close.span),
        });
        Ok(())
    }

    fn const_decl(&mut self, ast: &mut ModelAst) -> Result<(), LangError> {
        self.advance(); // `const`
        let name = self.expect_ident("after `const`")?;
        self.expect(&TokenKind::Equals, "after the constant name")?;
        let value = self.expr()?;
        self.expect(&TokenKind::Semi, "after the constant definition")?;
        ast.consts.push(ConstDecl { name, value });
        Ok(())
    }

    fn let_decl(&mut self, ast: &mut ModelAst) -> Result<(), LangError> {
        self.advance(); // `let`
        let name = self.expect_ident("after `let`")?;
        self.expect(&TokenKind::Equals, "after the `let` binding name")?;
        let value = self.expr()?;
        self.expect(&TokenKind::Semi, "after the `let` definition")?;
        ast.lets.push(LetDecl { name, value });
        Ok(())
    }

    fn rule_decl(&mut self, ast: &mut ModelAst) -> Result<(), LangError> {
        let start = self.advance().span; // `rule`
        let name = self.expect_ident("after `rule`")?;
        self.expect(&TokenKind::Colon, "after the rule name")?;
        let reactants = self.stoich_side("on the reactant side")?;
        self.expect(&TokenKind::Arrow, "between reactants and products")?;
        let products = self.stoich_side("on the product side")?;
        self.expect(&TokenKind::At, "before the rate expression")?;
        let rate = self.expr()?;
        let end = self.expect(&TokenKind::Semi, "after the rate expression")?;
        ast.rules.push(RuleDecl {
            name,
            reactants,
            products,
            rate,
            span: start.to(end.span),
        });
        Ok(())
    }

    /// Parses one side of a rule: `0` (empty) or `term (+ term)*` with
    /// `term := [INT] IDENT`.
    fn stoich_side(&mut self, context: &str) -> Result<Vec<StoichTerm>, LangError> {
        if let TokenKind::Number(value) = self.peek().kind {
            if value == 0.0 {
                // the explicit empty side `0`
                self.advance();
                return Ok(Vec::new());
            }
        }
        let mut terms = Vec::new();
        loop {
            let (multiplicity, multiplicity_span) = match self.peek().kind {
                TokenKind::Number(value) => {
                    let token = self.advance();
                    (value, token.span)
                }
                _ => (1.0, self.peek().span),
            };
            let species = self.expect_ident(context)?;
            terms.push(StoichTerm {
                multiplicity,
                multiplicity_span,
                species,
            });
            match self.peek().kind {
                TokenKind::Plus => {
                    self.advance();
                }
                _ => break,
            }
        }
        Ok(terms)
    }

    fn init_decl(&mut self, ast: &mut ModelAst) -> Result<(), LangError> {
        self.advance(); // `init`
        loop {
            let species = self.expect_ident("in an `init` assignment")?;
            self.expect(&TokenKind::Equals, "after the species name in `init`")?;
            let value = self.expr()?;
            ast.inits.push(InitAssign { species, value });
            match self.peek().kind {
                TokenKind::Comma => {
                    self.advance();
                }
                _ => break,
            }
        }
        self.expect(&TokenKind::Semi, "after the `init` assignments")?;
        Ok(())
    }

    // ---- expressions: precedence climbing -------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        if self.peek().kind == TokenKind::KwWhen {
            return self.when_expr();
        }
        self.comparison()
    }

    /// `when <cond> { <expr> } else ( when … | { <expr> } )` — a guarded
    /// expression; `else when` chains give piecewise definitions.
    fn when_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.advance().span; // `when`
        let cond = self.expr()?;
        self.expect(&TokenKind::LBrace, "to open the `when` branch")?;
        let then = self.expr()?;
        self.expect(&TokenKind::RBrace, "to close the `when` branch")?;
        self.expect(&TokenKind::KwElse, "after the `when` branch")?;
        let (els, end) = if self.peek().kind == TokenKind::KwWhen {
            let chained = self.when_expr()?;
            let end = chained.span;
            (chained, end)
        } else {
            self.expect(&TokenKind::LBrace, "to open the `else` branch")?;
            let els = self.expr()?;
            let close = self.expect(&TokenKind::RBrace, "to close the `else` branch")?;
            (els, close.span)
        };
        Ok(Expr {
            kind: ExprKind::When {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
            span: start.to(end),
        })
    }

    fn comparison_op(&self) -> Option<CmpOp> {
        match self.peek().kind {
            TokenKind::Lt => Some(CmpOp::Lt),
            TokenKind::Le => Some(CmpOp::Le),
            TokenKind::Gt => Some(CmpOp::Gt),
            TokenKind::Ge => Some(CmpOp::Ge),
            TokenKind::EqEq => Some(CmpOp::Eq),
            TokenKind::Neq => Some(CmpOp::Ne),
            _ => None,
        }
    }

    /// Non-associative comparison layer: `additive [ cmpop additive ]`.
    fn comparison(&mut self) -> Result<Expr, LangError> {
        let lhs = self.additive()?;
        let Some(op) = self.comparison_op() else {
            return Ok(lhs);
        };
        self.advance();
        let rhs = self.additive()?;
        if self.comparison_op().is_some() {
            let found = self.peek();
            return Err(self.error(
                "comparisons cannot be chained; split them into separate `when` guards",
                found.span,
            ));
        }
        let span = lhs.span.to(rhs.span);
        Ok(Expr {
            kind: ExprKind::Compare {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        })
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.peek().kind == TokenKind::Minus {
            let minus = self.advance();
            let operand = self.unary()?;
            let span = minus.span.to(operand.span);
            return Ok(Expr {
                kind: ExprKind::Neg(Box::new(operand)),
                span,
            });
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr, LangError> {
        let base = self.atom()?;
        if self.peek().kind == TokenKind::Caret {
            self.advance();
            // right-associative: recurse through unary so `2 ^ -1` works
            let exponent = self.unary()?;
            let span = base.span.to(exponent.span);
            return Ok(Expr {
                kind: ExprKind::Binary {
                    op: BinOp::Pow,
                    lhs: Box::new(base),
                    rhs: Box::new(exponent),
                },
                span,
            });
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.peek().kind.clone() {
            TokenKind::Number(value) => {
                let token = self.advance();
                Ok(Expr {
                    kind: ExprKind::Number(value),
                    span: token.span,
                })
            }
            TokenKind::Ident(name) => {
                let token = self.advance();
                let ident = Ident {
                    name,
                    span: token.span,
                };
                if self.peek().kind == TokenKind::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek().kind != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            match self.peek().kind {
                                TokenKind::Comma => {
                                    self.advance();
                                }
                                _ => break,
                            }
                        }
                    }
                    let close = self.expect(&TokenKind::RParen, "to close the argument list")?;
                    let span = ident.span.to(close.span);
                    return Ok(Expr {
                        kind: ExprKind::Call { func: ident, args },
                        span,
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Ident(ident.name),
                    span: ident.span,
                })
            }
            TokenKind::LParen => {
                let open = self.advance();
                let inner = self.expr()?;
                let close =
                    self.expect(&TokenKind::RParen, "to close the parenthesised expression")?;
                Ok(Expr {
                    kind: inner.kind,
                    span: open.span.to(close.span),
                })
            }
            other => {
                let span = self.peek().span;
                Err(self.error(
                    format!("expected an expression, found {}", other.describe()),
                    span,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIR: &str = "
model sir;
species S, I, R;
param contact in [1, 10];
const a = 0.1;
rule infect: S -> I @ (a + contact * I) * S;
rule recover: I -> R @ 5 * I;
init S = 0.7, I = 0.3, R = 0;
";

    #[test]
    fn parses_a_complete_model() {
        let ast = parse(SIR).unwrap();
        assert_eq!(ast.name.name, "sir");
        assert_eq!(ast.species.len(), 3);
        assert_eq!(ast.params.len(), 1);
        assert_eq!(ast.consts.len(), 1);
        assert_eq!(ast.rules.len(), 2);
        assert_eq!(ast.inits.len(), 3);
        assert_eq!(ast.rules[0].reactants[0].species.name, "S");
        assert_eq!(ast.rules[0].products[0].species.name, "I");
    }

    #[test]
    fn stoichiometric_multiplicities_and_empty_sides() {
        let ast = parse(
            "model m; species X; param r in [0, 1];
             rule birth: 0 -> 2 X @ r;
             rule death: X -> 0 @ r * X;
             init X = 0.5;",
        )
        .unwrap();
        assert!(ast.rules[0].reactants.is_empty());
        assert_eq!(ast.rules[0].products[0].multiplicity, 2.0);
        assert!(ast.rules[1].products.is_empty());
    }

    #[test]
    fn expression_precedence_and_unary_minus() {
        let ast = parse(
            "model m; species X; param r in [0,1]; rule g: X -> 0 @ -r + 2 * X ^ 2; init X = 1;",
        )
        .unwrap();
        // -r + (2 * (X^2)): top node is Add with Neg on the left
        let rate = &ast.rules[0].rate;
        match &rate.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
            } => {
                assert!(matches!(lhs.kind, ExprKind::Neg(_)));
                match &rhs.kind {
                    ExprKind::Binary {
                        op: BinOp::Mul,
                        rhs: pow,
                        ..
                    } => {
                        assert!(matches!(pow.kind, ExprKind::Binary { op: BinOp::Pow, .. }));
                    }
                    other => panic!("unexpected rhs {other:?}"),
                }
            }
            other => panic!("unexpected rate {other:?}"),
        }
    }

    #[test]
    fn call_expressions_parse() {
        let ast = parse(
            "model m; species X; param r in [0,1]; rule g: X -> 0 @ max(0, r * X); init X = 1;",
        )
        .unwrap();
        match &ast.rules[0].rate.kind {
            ExprKind::Call { func, args } => {
                assert_eq!(func.name, "max");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected rate {other:?}"),
        }
    }

    #[test]
    fn when_else_guards_parse_with_spans() {
        let source = "model m; species Q; param r in [0,1];
             rule serve: Q -> 0 @ when Q > 0 { r / Q } else { 0 };
             init Q = 1;";
        let ast = parse(source).unwrap();
        let rate = &ast.rules[0].rate;
        let ExprKind::When { cond, then, els } = &rate.kind else {
            panic!("expected a when expression, got {rate:?}");
        };
        assert!(matches!(cond.kind, ExprKind::Compare { op: CmpOp::Gt, .. }));
        assert!(matches!(then.kind, ExprKind::Binary { op: BinOp::Div, .. }));
        assert!(matches!(els.kind, ExprKind::Number(v) if v == 0.0));
        let text = &source[rate.span.start..rate.span.end];
        assert!(text.starts_with("when") && text.ends_with('}'), "{text}");
    }

    #[test]
    fn else_when_chains_parse() {
        let ast = parse(
            "model m; species Q; param r in [0,1];
             rule g: Q -> 0 @ when Q > 0.5 { 2 } else when Q > 0 { 1 } else { 0 };
             init Q = 1;",
        )
        .unwrap();
        let ExprKind::When { els, .. } = &ast.rules[0].rate.kind else {
            panic!("expected when");
        };
        assert!(matches!(els.kind, ExprKind::When { .. }));
    }

    #[test]
    fn comparison_operators_parse_at_lowest_precedence() {
        let ast = parse(
            "model m; species X; param r in [0,1];
             rule g: X -> 0 @ when r * X + 1 <= 2 * X { 1 } else { 0 };
             init X = 1;",
        )
        .unwrap();
        let ExprKind::When { cond, .. } = &ast.rules[0].rate.kind else {
            panic!("expected when");
        };
        // `r * X + 1 <= 2 * X` must group as `(r*X + 1) <= (2*X)`
        let ExprKind::Compare { op, lhs, rhs } = &cond.kind else {
            panic!("expected comparison, got {cond:?}");
        };
        assert_eq!(*op, CmpOp::Le);
        assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Add, .. }));
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn chained_comparisons_are_rejected() {
        let err = parse(
            "model m; species X; param r in [0,1];
             rule g: X -> 0 @ when 0 < X < 1 { 1 } else { 0 };
             init X = 1;",
        )
        .unwrap_err();
        match err {
            LangError::Parse(d) => assert!(d.message.contains("chained"), "{}", d.message),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unclosed_when_branch_is_pinpointed() {
        let err = parse(
            "model m; species X; param r in [0,1];
             rule g: X -> 0 @ when X > 0 { r * X ;
             init X = 1;",
        )
        .unwrap_err();
        match err {
            LangError::Parse(d) => {
                assert!(d.message.contains("`}`"), "{}", d.message);
                assert!(
                    d.message.contains("close the `when` branch"),
                    "{}",
                    d.message
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn let_declarations_parse() {
        let ast = parse(
            "model m; species X, Y; param r in [0,1];
             let total = X + Y;
             rule g: X -> Y @ r * total;
             init X = 1, Y = 0;",
        )
        .unwrap();
        assert_eq!(ast.lets.len(), 1);
        assert_eq!(ast.lets[0].name.name, "total");
        assert!(matches!(
            ast.lets[0].value.kind,
            ExprKind::Binary { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn missing_semicolon_has_a_span() {
        let err = parse("model m; species X\nparam r in [0,1];").unwrap_err();
        match err {
            LangError::Parse(d) => {
                assert!(d.message.contains("`;`"), "message: {}", d.message);
                assert_eq!(d.position.line, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn stray_token_after_header_is_rejected() {
        let err = parse("model m; 42").unwrap_err();
        match err {
            LangError::Parse(d) => assert!(d.message.contains("expected `species`")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn interval_span_covers_the_brackets() {
        let source = "model m; species X; param r in [3, 7]; rule g: X -> 0 @ r; init X = 1;";
        let ast = parse(source).unwrap();
        let span = ast.params[0].interval_span;
        assert_eq!(&source[span.start..span.end], "[3, 7]");
    }
}
