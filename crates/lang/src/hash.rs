//! Canonical model hashing and content-addressed interning.
//!
//! [`model_hash`] computes a stable structural hash over a
//! [`ResolvedModel`] — the post-validation form in which comments and
//! whitespace are gone and `const`/`let` bindings are already inlined and
//! folded. Two sources that resolve to the same species, parameter space,
//! rules and initial state therefore hash identically no matter how they
//! were formatted, commented, or how their constants were named and
//! ordered. Conversely everything semantically load-bearing is hashed:
//! species order (it indexes the state), parameter order and intervals,
//! rule order, jump vectors, the full rate-expression structure and the
//! initial fractions.
//!
//! The model *name* is deliberately excluded: it labels the model but does
//! not change its dynamics, so `sir` and its rescaled registry twin
//! `sir_1e6` (identical sources except the `model` header) intern to one
//! compiled model. Rule names *are* included — they surface in transition
//! diagnostics and trace events, so two models that differ only in rule
//! names are observably different.
//!
//! [`ModelInterner`] builds on the hash: it maps content hash → compiled
//! model (shared via [`Arc`]) so identical sources compile once, with an
//! optional capacity bound evicted in deterministic least-recently-used
//! order.
//!
//! ```
//! use mfu_lang::hash::source_hash;
//!
//! let (original, _) = source_hash(
//!     "model a; species S, I; param c in [1, 2]; \
//!      rule infect: S -> I @ c * S * I; init S = 0.9, I = 0.1;",
//! )?;
//! // renamed, reformatted, commented — same dynamics, same hash
//! let (reformatted, _) = source_hash(
//!     "model b; // a rename and a comment\n\
//!      species S, I;\n param c in [1, 2];\n\
//!      rule infect: S -> I @ c * S * I;\n init S = 0.9, I = 0.1;",
//! )?;
//! assert_eq!(original, reformatted);
//! // widening a parameter interval is semantically load-bearing
//! let (widened, _) = source_hash(
//!     "model a; species S, I; param c in [1, 3]; \
//!      rule infect: S -> I @ c * S * I; init S = 0.9, I = 0.1;",
//! )?;
//! assert_ne!(original, widened);
//! # Ok::<(), mfu_lang::LangError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::ast::CmpOp;
use crate::compile::CompiledModel;
use crate::diagnostics::LangError;
use crate::expr::{Builtin, CompiledExpr};
use crate::validate::ResolvedModel;
use crate::{parser, validate};

/// A 128-bit content hash of a resolved model.
///
/// Displayed and parsed as 32 lowercase hex digits. The hash is FNV-1a
/// over a tagged byte stream of the model structure; it is stable across
/// processes and platforms (all floats are hashed via their IEEE-754 bit
/// patterns) but is *not* cryptographic — it addresses a cache, it does
/// not authenticate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelHash(pub u128);

impl ModelHash {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(text: &str) -> Option<ModelHash> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(ModelHash)
    }
}

impl fmt::Display for ModelHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// FNV-1a, 128-bit variant: offset basis and prime from the FNV spec.
struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV128_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// A one-byte structural tag separating hashed fields, so adjacent
    /// variable-length fields cannot alias (e.g. species `["ab", "c"]`
    /// vs `["a", "bc"]`).
    fn tag(&mut self, t: u8) {
        self.write(&[t]);
    }

    fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }
}

/// Explicit stable discriminants — never derived from source order via
/// `as`, so reordering an enum in a refactor cannot silently change every
/// model hash.
fn builtin_tag(b: Builtin) -> u8 {
    match b {
        Builtin::Min => 1,
        Builtin::Max => 2,
        Builtin::Abs => 3,
        Builtin::Exp => 4,
        Builtin::Log => 5,
        Builtin::Sqrt => 6,
        Builtin::Pow => 7,
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 1,
        CmpOp::Le => 2,
        CmpOp::Gt => 3,
        CmpOp::Ge => 4,
        CmpOp::Eq => 5,
        CmpOp::Ne => 6,
    }
}

fn hash_expr(h: &mut Fnv128, expr: &CompiledExpr) {
    match expr {
        CompiledExpr::Const(v) => {
            h.tag(1);
            h.write_f64(*v);
        }
        CompiledExpr::Species(i) => {
            h.tag(2);
            h.write_usize(*i);
        }
        CompiledExpr::Param(j) => {
            h.tag(3);
            h.write_usize(*j);
        }
        CompiledExpr::Neg(a) => {
            h.tag(4);
            hash_expr(h, a);
        }
        CompiledExpr::Add(a, b) => {
            h.tag(5);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        CompiledExpr::Sub(a, b) => {
            h.tag(6);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        CompiledExpr::Mul(a, b) => {
            h.tag(7);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        CompiledExpr::Div(a, b) => {
            h.tag(8);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        CompiledExpr::Pow(a, b) => {
            h.tag(9);
            hash_expr(h, a);
            hash_expr(h, b);
        }
        CompiledExpr::Call1(b, a) => {
            h.tag(10);
            h.tag(builtin_tag(*b));
            hash_expr(h, a);
        }
        CompiledExpr::Call2(bi, a, b) => {
            h.tag(11);
            h.tag(builtin_tag(*bi));
            hash_expr(h, a);
            hash_expr(h, b);
        }
        CompiledExpr::Cmp(op, a, b) => {
            h.tag(12);
            h.tag(cmp_tag(*op));
            hash_expr(h, a);
            hash_expr(h, b);
        }
        CompiledExpr::Select(c, t, e) => {
            h.tag(13);
            hash_expr(h, c);
            hash_expr(h, t);
            hash_expr(h, e);
        }
    }
}

/// Computes the canonical content hash of a resolved model.
///
/// Hashed: species names in order, parameter names and interval bounds in
/// order, every rule (name, jump vector, rate expression structure) in
/// order, and the initial fractions. Excluded: the model name (a label,
/// not dynamics) and the `consts` table (already inlined into the rates,
/// kept on the model only for introspection).
pub fn model_hash(model: &ResolvedModel) -> ModelHash {
    let mut h = Fnv128::new();

    h.tag(b'S');
    h.write_usize(model.species.len());
    for name in &model.species {
        h.write_str(name);
    }

    h.tag(b'P');
    let names = model.param_space.names();
    let intervals = model.param_space.intervals();
    h.write_usize(names.len());
    for (name, iv) in names.iter().zip(intervals) {
        h.write_str(name);
        h.write_f64(iv.lo());
        h.write_f64(iv.hi());
    }

    h.tag(b'R');
    h.write_usize(model.rules.len());
    for rule in &model.rules {
        h.write_str(&rule.name);
        h.write_usize(rule.change.len());
        for &c in &rule.change {
            h.write_f64(c);
        }
        hash_expr(&mut h, &rule.rate);
    }

    h.tag(b'I');
    h.write_usize(model.init.len());
    for &v in &model.init {
        h.write_f64(v);
    }

    ModelHash(h.0)
}

/// Parses and validates a source, returning its content hash alongside the
/// resolved model — the front half of compilation, without lowering.
pub fn source_hash(source: &str) -> Result<(ModelHash, ResolvedModel), LangError> {
    let ast = parser::parse(source)?;
    let resolved = validate::validate(&ast, source)?;
    let hash = model_hash(&resolved);
    Ok((hash, resolved))
}

/// A content-addressed cache of compiled models.
///
/// `intern_source` parses and validates every call (cheap, and it is what
/// produces the hash) but compiles only on a cache miss; hits return the
/// same [`Arc`] so downstream engines share one compiled model. With a
/// capacity bound, insertion past the bound evicts the least recently used
/// entry — "use" meaning any hit or insertion — deterministically (ties
/// cannot occur: every touch gets a fresh stamp from a monotone counter).
#[derive(Debug)]
pub struct ModelInterner {
    entries: HashMap<u128, (Arc<CompiledModel>, u64)>,
    capacity: Option<usize>,
    stamp: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelInterner {
    /// An unbounded interner.
    pub fn new() -> Self {
        ModelInterner {
            entries: HashMap::new(),
            capacity: None,
            stamp: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// An interner holding at most `capacity` compiled models (LRU
    /// eviction past the bound). A capacity of zero caches nothing.
    pub fn with_capacity(capacity: usize) -> Self {
        ModelInterner {
            capacity: Some(capacity),
            ..ModelInterner::new()
        }
    }

    /// Number of compiled models currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no models are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (each one compiled a model).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to stay within the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Looks a model up by content hash without compiling anything.
    pub fn get(&mut self, hash: ModelHash) -> Option<Arc<CompiledModel>> {
        let stamp = self.touch();
        let (model, last_used) = self.entries.get_mut(&hash.0)?;
        *last_used = stamp;
        Some(Arc::clone(model))
    }

    /// Interns a source: hashes it, returns the cached compiled model on a
    /// hit, compiles and caches on a miss.
    pub fn intern_source(
        &mut self,
        source: &str,
    ) -> Result<(ModelHash, Arc<CompiledModel>), LangError> {
        let (hash, resolved) = source_hash(source)?;
        let stamp = self.touch();
        if let Some((model, last_used)) = self.entries.get_mut(&hash.0) {
            *last_used = stamp;
            self.hits += 1;
            return Ok((hash, Arc::clone(model)));
        }
        self.misses += 1;
        let model = Arc::new(CompiledModel::new(resolved));
        self.insert_bounded(hash, Arc::clone(&model), stamp);
        Ok((hash, model))
    }

    /// Inserts an already-compiled model under its content hash.
    pub fn insert(&mut self, hash: ModelHash, model: Arc<CompiledModel>) {
        let stamp = self.touch();
        self.insert_bounded(hash, model, stamp);
    }

    fn insert_bounded(&mut self, hash: ModelHash, model: Arc<CompiledModel>, stamp: u64) {
        if self.capacity == Some(0) {
            return;
        }
        self.entries.insert(hash.0, (model, stamp));
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                if let Some(&oldest) = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| k)
                {
                    self.entries.remove(&oldest);
                    self.evictions += 1;
                } else {
                    break;
                }
            }
        }
    }
}

impl Default for ModelInterner {
    fn default() -> Self {
        ModelInterner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::ScenarioRegistry;

    const BASE: &str = "model decay;\n\
                        species X, Y;\n\
                        param k in [0.5, 2.0];\n\
                        const half = 0.5;\n\
                        rule fade: X -> Y @ k * half * X;\n\
                        init X = 0.7, Y = 0.3;\n";

    fn hash_of(source: &str) -> ModelHash {
        let (hash, _) = source_hash(source).expect("source should validate");
        hash
    }

    #[test]
    fn whitespace_and_comments_do_not_change_the_hash() {
        let reformatted = "model decay;\n\n\
                           // a comment the hash must not see\n\
                           species X , Y ;\n\
                           param k in [ 0.5 , 2.0 ];\n\
                           const half = 0.5; // trailing note\n\
                           rule fade: X -> Y @ k * half * X;\n\
                           init X = 0.7 , Y = 0.3 ;\n";
        assert_eq!(hash_of(BASE), hash_of(reformatted));
    }

    #[test]
    fn model_name_is_excluded_from_the_hash() {
        let renamed = BASE.replacen("model decay;", "model decay_v2;", 1);
        assert_eq!(hash_of(BASE), hash_of(&renamed));
    }

    #[test]
    fn const_renaming_and_reordering_do_not_change_the_hash() {
        // Constants are inlined during validation, so their names and
        // declaration position are invisible to the hash.
        let reordered = "model decay;\n\
                         const h2 = 0.5;\n\
                         species X, Y;\n\
                         param k in [0.5, 2.0];\n\
                         rule fade: X -> Y @ k * h2 * X;\n\
                         init X = 0.7, Y = 0.3;\n";
        assert_eq!(hash_of(BASE), hash_of(reordered));
    }

    #[test]
    fn semantic_changes_change_the_hash() {
        let base = hash_of(BASE);
        let cases = [
            // Different initial fraction.
            BASE.replacen("X = 0.7", "X = 0.6", 1)
                .replacen("Y = 0.3", "Y = 0.4", 1),
            // Different parameter interval.
            BASE.replacen("[0.5, 2.0]", "[0.5, 3.0]", 1),
            // Different rate expression.
            BASE.replacen("k * half * X", "k * X", 1),
            // Different rule name (rule names surface in diagnostics).
            BASE.replacen("rule fade:", "rule decay_step:", 1),
            // Different species name (species index the state).
            BASE.replace("X", "Z"),
        ];
        for changed in &cases {
            assert_ne!(base, hash_of(changed), "hash ignored change:\n{changed}");
        }
    }

    #[test]
    fn species_order_is_semantically_load_bearing() {
        let swapped = "model decay;\n\
                       species Y, X;\n\
                       param k in [0.5, 2.0];\n\
                       const half = 0.5;\n\
                       rule fade: X -> Y @ k * half * X;\n\
                       init X = 0.7, Y = 0.3;\n";
        assert_ne!(hash_of(BASE), hash_of(swapped));
    }

    #[test]
    fn hash_display_round_trips() {
        let hash = hash_of(BASE);
        let text = hash.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(ModelHash::parse(&text), Some(hash));
        assert_eq!(ModelHash::parse("not-a-hash"), None);
        assert_eq!(ModelHash::parse(""), None);
    }

    #[test]
    fn registry_models_are_pairwise_distinct_except_the_rescaled_twin() {
        // `sir` and `sir_1e6` share a source up to the model header, which
        // the hash deliberately ignores — that dedup is the point of
        // interning. Every other pair must be distinct.
        let registry = ScenarioRegistry::with_builtins();
        let hashed: Vec<(String, ModelHash)> = registry
            .iter()
            .map(|s| (s.name().to_string(), hash_of(s.source())))
            .collect();
        for (i, (name_a, hash_a)) in hashed.iter().enumerate() {
            for (name_b, hash_b) in &hashed[i + 1..] {
                let twins = (name_a == "sir" && name_b == "sir_1e6")
                    || (name_a == "sir_1e6" && name_b == "sir");
                if twins {
                    assert_eq!(hash_a, hash_b, "rescaled twins must intern together");
                } else {
                    assert_ne!(hash_a, hash_b, "{name_a} and {name_b} collided");
                }
            }
        }
    }

    #[test]
    fn interner_compiles_once_and_shares_the_model() {
        let mut interner = ModelInterner::new();
        let (h1, m1) = interner.intern_source(BASE).expect("first intern");
        let (h2, m2) = interner.intern_source(BASE).expect("second intern");
        assert_eq!(h1, h2);
        assert!(Arc::ptr_eq(&m1, &m2), "hit must return the same Arc");
        assert_eq!(interner.misses(), 1);
        assert_eq!(interner.hits(), 1);
        assert_eq!(interner.len(), 1);

        // The rescaled twin pattern: a renamed model is a hit, not a miss.
        let renamed = BASE.replacen("model decay;", "model decay_xl;", 1);
        let (h3, m3) = interner.intern_source(&renamed).expect("renamed intern");
        assert_eq!(h1, h3);
        assert!(Arc::ptr_eq(&m1, &m3));
        assert_eq!(interner.hits(), 2);
    }

    #[test]
    fn bounded_interner_evicts_least_recently_used() {
        let variant = |k: &str| BASE.replacen("[0.5, 2.0]", &format!("[0.5, {k}]"), 1);
        let (a, b, c) = (variant("2.0"), variant("3.0"), variant("4.0"));

        let mut interner = ModelInterner::with_capacity(2);
        let (ha, _) = interner.intern_source(&a).expect("a");
        let (hb, _) = interner.intern_source(&b).expect("b");
        // Touch `a` so `b` is now the least recently used.
        assert!(interner.get(ha).is_some());
        let (hc, _) = interner.intern_source(&c).expect("c");

        assert_eq!(interner.len(), 2);
        assert_eq!(interner.evictions(), 1);
        assert!(interner.get(ha).is_some(), "recently used entry survives");
        assert!(interner.get(hc).is_some(), "new entry present");
        assert!(interner.get(hb).is_none(), "LRU entry evicted");
    }

    #[test]
    fn zero_capacity_interner_caches_nothing() {
        let mut interner = ModelInterner::with_capacity(0);
        let (_, m1) = interner.intern_source(BASE).expect("first");
        let (_, m2) = interner.intern_source(BASE).expect("second");
        assert!(!Arc::ptr_eq(&m1, &m2));
        assert_eq!(interner.len(), 0);
        assert_eq!(interner.misses(), 2);
    }
}
