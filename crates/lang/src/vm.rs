//! Flat bytecode programs for rate expressions.
//!
//! [`crate::expr::CompiledExpr`] is a pointer tree: every evaluation chases
//! one `Box` per node, which costs a cache miss and a branch mispredict per
//! operator — ~60 ns for a typical epidemic rate versus a handful of ns for
//! the equivalent native closure. This module lowers the tree once, at
//! compile time, to a [`RateProgram`]:
//!
//! * a **constant** when the expression references neither species nor
//!   parameters (rates of spontaneous transitions);
//! * a **mass-action fast path** for the dominant shapes of population
//!   models — left-associated products `c · x_i`, `c · ϑ_p · x_i`,
//!   `c · x_i · x_j`, `c · ϑ_p · x_i · x_j` (each factor optional except the
//!   species) — evaluated with straight-line multiplications and no
//!   dispatch at all;
//! * an **affine-product fast path** for the canonical epidemic infection
//!   shape `(a + c·ϑ?·x_i)·x_j`, likewise straight-line;
//! * a **register-based bytecode program** otherwise: a linear [`Op`] array
//!   over a tiered scratch register file (masked indexing, so the compiler
//!   drops the bounds checks), walked by a single interpreter loop with no
//!   pointer chasing. Powers by a small integer constant are
//!   strength-reduced (`x^2 → x·x`) and leaf loads are peephole-fused into
//!   the consuming arithmetic instruction ([`Op::BinLeaf`],
//!   [`Op::BinLeafLeaf`]) during lowering.
//!
//! Lowering preserves the *exact* floating-point evaluation order of the
//! tree (post-order, left to right), so a program returns bit-identical
//! values to [`CompiledExpr::eval`] for every expression free of the `^`
//! strength reduction; the mass-action detector only accepts left-leaning
//! product spines for the same reason. This matters because the
//! hand-written models in `mfu-models` and their DSL twins are
//! cross-validated by *bit-equality* of simulated trajectories.
//!
//! Programs also report their [`RateProgram::species_support`] — the state
//! coordinates they read — which implements
//! [`mfu_ctmc::transition::CompiledRate`] and feeds the dependency-graph
//! Gillespie hot path in `mfu-sim`. [`ProgramSet`] bundles the programs of
//! all rules of a model and evaluates them in one VM pass over a shared
//! scratch register file, which is how the DSL drift backend computes
//! `f(x, ϑ)` without touching the allocator.
//!
//! # Batched (structure-of-arrays) evaluation
//!
//! [`RateProgram::eval_batch_into`] and [`ProgramSet::eval_batch_into`]
//! evaluate a whole [`SoaBatch`] of states — `width` lanes laid out
//! coordinate-major, with one shared `theta` or per-lane thetas
//! ([`BatchTheta`]) — advancing *all lanes through each instruction before
//! moving to the next*. The register file becomes a `width`-strided slab
//! (register `r` of lane `l` lives at `r·width + l`), tiered like the
//! scalar file; the constant, mass-action and affine-product fast paths get
//! row-at-a-time variants; `Op::Cmp`/`Op::Select` stay branch-free per
//! lane. Because every lane executes exactly the scalar instruction
//! sequence on its own data — same operations, same order, lanes merely
//! advance together — a batched lane is **bit-identical** to a scalar
//! [`RateProgram::eval`] on that lane's `(x, ϑ)`, NaN payloads included.
//! The property suite in `tests/vm_equivalence.rs` pins this across random
//! expressions × widths; the hull, Pontryagin and lockstep-ensemble call
//! sites rely on it to batch freely without perturbing results.

use mfu_ctmc::transition::CompiledRate;
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::StateVec;

use crate::ast::CmpOp;
use crate::expr::{fold_constants, Builtin, CompiledExpr};

/// Registers kept on the stack by the allocation-free evaluation entry
/// points; programs needing more (expression depth > 32) fall back to a
/// heap-allocated register file.
pub const STACK_REGISTERS: usize = 32;

/// First register-file tier: rate expressions of population models rarely
/// exceed depth 8, and an 8-register file costs one cache line to zero.
const SMALL_REGISTERS: usize = 8;

use crate::expr::{unrolled_pow, unrolls};

/// One register instruction: sources `a`/`b` and destination `dst` index a
/// scratch register file; `idx` indexes the constant pool, the state or the
/// parameter vector.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field roles are uniform and documented per variant
pub enum Op {
    /// `r[dst] = consts[idx]`
    Const { dst: u16, idx: u16 },
    /// `r[dst] = x[idx]`
    Species { dst: u16, idx: u16 },
    /// `r[dst] = ϑ[idx]`
    Param { dst: u16, idx: u16 },
    /// `r[dst] = -r[a]`
    Neg { dst: u16, a: u16 },
    /// `r[dst] = r[a] + r[b]`
    Add { dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[a] - r[b]`
    Sub { dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[a] * r[b]`
    Mul { dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[a] / r[b]`
    Div { dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[a].powf(r[b])`
    Pow { dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[a]^n` by repeated multiplication (`2 ≤ n ≤ 4`).
    PowInt { dst: u16, a: u16, n: u16 },
    /// `r[dst] = r[a].min(r[b])`
    Min { dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[a].max(r[b])`
    Max { dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[a].abs()`
    Abs { dst: u16, a: u16 },
    /// `r[dst] = r[a].exp()`
    Exp { dst: u16, a: u16 },
    /// `r[dst] = r[a].ln()`
    Log { dst: u16, a: u16 },
    /// `r[dst] = r[a].sqrt()`
    Sqrt { dst: u16, a: u16 },
    /// `r[dst] = r[a] ⊕ leaf[idx]` — a binary op whose right operand loads
    /// straight from the constant pool, the state or the parameters
    /// (peephole fusion of a leaf load and the following arithmetic op).
    BinLeaf {
        op: ArithOp,
        leaf: LeafSource,
        dst: u16,
        a: u16,
        idx: u16,
    },
    /// `r[dst] = leaf_a[a_idx] ⊕ leaf_b[b_idx]` — both operands load from
    /// leaves (second fusion round).
    BinLeafLeaf {
        op: ArithOp,
        leaf_a: LeafSource,
        a_idx: u16,
        leaf_b: LeafSource,
        b_idx: u16,
        dst: u16,
    },
    /// `r[dst] = if cmp(r[a], r[b]) { 1.0 } else { 0.0 }` — comparison to an
    /// indicator value.
    Cmp { op: CmpOp, dst: u16, a: u16, b: u16 },
    /// `r[dst] = if r[cond] != 0.0 { r[a] } else { r[b] }` — guarded
    /// selection. Both operand registers are already computed when this
    /// executes (the lowering emits condition, then-branch and else-branch
    /// as straight-line code), so the instruction is a *branch-free* select
    /// (a conditional move, not a jump): the interpreter loop stays linear
    /// and the PR 2 dispatch characteristics are preserved even for guarded
    /// rates.
    Select { dst: u16, cond: u16, a: u16, b: u16 },
}

/// Arithmetic operator of the fused [`Op::BinLeaf`]/[`Op::BinLeafLeaf`]
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl ArithOp {
    #[inline(always)]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
        }
    }
}

/// Where a fused leaf operand loads from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeafSource {
    /// The program's constant pool.
    Const,
    /// The state vector.
    Species,
    /// The parameter vector.
    Param,
}

/// A lowered general-form program: linear opcode array + constant pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ByteProgram {
    ops: Vec<Op>,
    consts: Vec<f64>,
    registers: usize,
}

impl ByteProgram {
    /// The instructions, in execution order; the result is the destination
    /// register of the last instruction (always register 0).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Size of the register file this program needs.
    pub fn registers(&self) -> usize {
        self.registers
    }

    /// Runs the program over a caller-provided register file.
    ///
    /// # Panics
    ///
    /// Panics if `regs` is shorter than [`ByteProgram::registers`].
    #[inline]
    pub fn eval_with(&self, x: &StateVec, theta: &[f64], regs: &mut [f64]) -> f64 {
        debug_assert!(regs.len() >= self.registers);
        self.run::<{ usize::MAX }>(x, theta, regs)
    }

    /// The interpreter loop. When `MASK` is `2^k − 1` and every register
    /// index fits in `k` bits (guaranteed by the tiered callers), the
    /// `& MASK` proves each access in-bounds for a `2^k`-sized file and the
    /// compiler drops all register bounds checks; `MASK = usize::MAX` is the
    /// identity for arbitrary slices (checked accesses).
    #[inline]
    fn run<const MASK: usize>(&self, x: &StateVec, theta: &[f64], regs: &mut [f64]) -> f64 {
        for op in &self.ops {
            match *op {
                Op::Const { dst, idx } => regs[dst as usize & MASK] = self.consts[idx as usize],
                Op::Species { dst, idx } => regs[dst as usize & MASK] = x[idx as usize],
                Op::Param { dst, idx } => regs[dst as usize & MASK] = theta[idx as usize],
                Op::Neg { dst, a } => regs[dst as usize & MASK] = -regs[a as usize & MASK],
                Op::Add { dst, a, b } => {
                    regs[dst as usize & MASK] = regs[a as usize & MASK] + regs[b as usize & MASK]
                }
                Op::Sub { dst, a, b } => {
                    regs[dst as usize & MASK] = regs[a as usize & MASK] - regs[b as usize & MASK]
                }
                Op::Mul { dst, a, b } => {
                    regs[dst as usize & MASK] = regs[a as usize & MASK] * regs[b as usize & MASK]
                }
                Op::Div { dst, a, b } => {
                    regs[dst as usize & MASK] = regs[a as usize & MASK] / regs[b as usize & MASK]
                }
                Op::Pow { dst, a, b } => {
                    regs[dst as usize & MASK] =
                        regs[a as usize & MASK].powf(regs[b as usize & MASK])
                }
                Op::PowInt { dst, a, n } => {
                    regs[dst as usize & MASK] = unrolled_pow(regs[a as usize & MASK], n);
                }
                Op::Min { dst, a, b } => {
                    regs[dst as usize & MASK] = regs[a as usize & MASK].min(regs[b as usize & MASK])
                }
                Op::Max { dst, a, b } => {
                    regs[dst as usize & MASK] = regs[a as usize & MASK].max(regs[b as usize & MASK])
                }
                Op::Abs { dst, a } => regs[dst as usize & MASK] = regs[a as usize & MASK].abs(),
                Op::Exp { dst, a } => regs[dst as usize & MASK] = regs[a as usize & MASK].exp(),
                Op::Log { dst, a } => regs[dst as usize & MASK] = regs[a as usize & MASK].ln(),
                Op::Sqrt { dst, a } => regs[dst as usize & MASK] = regs[a as usize & MASK].sqrt(),
                Op::BinLeaf {
                    op,
                    leaf,
                    dst,
                    a,
                    idx,
                } => {
                    let b = self.load(leaf, idx, x, theta);
                    regs[dst as usize & MASK] = op.apply(regs[a as usize & MASK], b);
                }
                Op::BinLeafLeaf {
                    op,
                    leaf_a,
                    a_idx,
                    leaf_b,
                    b_idx,
                    dst,
                } => {
                    let a = self.load(leaf_a, a_idx, x, theta);
                    let b = self.load(leaf_b, b_idx, x, theta);
                    regs[dst as usize & MASK] = op.apply(a, b);
                }
                Op::Cmp { op, dst, a, b } => {
                    regs[dst as usize & MASK] =
                        f64::from(op.holds(regs[a as usize & MASK], regs[b as usize & MASK]))
                }
                Op::Select { dst, cond, a, b } => {
                    // both values are loaded unconditionally so the branch
                    // lowers to a conditional move, not a jump
                    let take = regs[cond as usize & MASK] != 0.0;
                    let va = regs[a as usize & MASK];
                    let vb = regs[b as usize & MASK];
                    regs[dst as usize & MASK] = if take { va } else { vb };
                }
            }
        }
        regs[0]
    }

    #[inline(always)]
    fn load(&self, leaf: LeafSource, idx: u16, x: &StateVec, theta: &[f64]) -> f64 {
        match leaf {
            LeafSource::Const => self.consts[idx as usize],
            LeafSource::Species => x[idx as usize],
            LeafSource::Param => theta[idx as usize],
        }
    }

    /// The batched interpreter loop: one pass over the instruction array,
    /// advancing all `width` lanes per instruction. `regs` is a
    /// `width`-strided slab (register `r` of lane `l` at `r·width + l`) of
    /// at least `registers · width` slots; the register-0 row lands in
    /// `out`. Per lane this executes exactly the instruction sequence of
    /// [`ByteProgram::run`] on that lane's values, so each lane's result is
    /// bit-identical to a scalar evaluation.
    fn run_batch(&self, x: &SoaBatch, theta: &BatchTheta<'_>, regs: &mut [f64], out: &mut [f64]) {
        let w = x.width();
        debug_assert!(regs.len() >= self.registers * w);
        for op in &self.ops {
            match *op {
                Op::Const { dst, idx } => {
                    regs[dst as usize * w..][..w].fill(self.consts[idx as usize]);
                }
                Op::Species { dst, idx } => {
                    regs[dst as usize * w..][..w].copy_from_slice(x.row(idx as usize));
                }
                Op::Param { dst, idx } => match theta {
                    BatchTheta::Shared(t) => regs[dst as usize * w..][..w].fill(t[idx as usize]),
                    BatchTheta::PerLane(b) => {
                        regs[dst as usize * w..][..w].copy_from_slice(b.row(idx as usize));
                    }
                },
                Op::Neg { dst, a } => lanes_unary(regs, w, dst, a, |v| -v),
                Op::Add { dst, a, b } => lanes_binary(regs, w, dst, a, b, |x, y| x + y),
                Op::Sub { dst, a, b } => lanes_binary(regs, w, dst, a, b, |x, y| x - y),
                Op::Mul { dst, a, b } => lanes_binary(regs, w, dst, a, b, |x, y| x * y),
                Op::Div { dst, a, b } => lanes_binary(regs, w, dst, a, b, |x, y| x / y),
                Op::Pow { dst, a, b } => lanes_binary(regs, w, dst, a, b, f64::powf),
                Op::PowInt { dst, a, n } => {
                    let (d, a) = (dst as usize * w, a as usize * w);
                    for l in 0..w {
                        regs[d + l] = unrolled_pow(regs[a + l], n);
                    }
                }
                Op::Min { dst, a, b } => lanes_binary(regs, w, dst, a, b, f64::min),
                Op::Max { dst, a, b } => lanes_binary(regs, w, dst, a, b, f64::max),
                Op::Abs { dst, a } => lanes_unary(regs, w, dst, a, f64::abs),
                Op::Exp { dst, a } => lanes_unary(regs, w, dst, a, f64::exp),
                Op::Log { dst, a } => lanes_unary(regs, w, dst, a, f64::ln),
                Op::Sqrt { dst, a } => lanes_unary(regs, w, dst, a, f64::sqrt),
                Op::BinLeaf {
                    op,
                    leaf,
                    dst,
                    a,
                    idx,
                } => {
                    let src = self.leaf_row(leaf, idx, x, theta);
                    let (d, a) = (dst as usize * w, a as usize * w);
                    for l in 0..w {
                        regs[d + l] = op.apply(regs[a + l], src.get(l));
                    }
                }
                Op::BinLeafLeaf {
                    op,
                    leaf_a,
                    a_idx,
                    leaf_b,
                    b_idx,
                    dst,
                } => {
                    let src_a = self.leaf_row(leaf_a, a_idx, x, theta);
                    let src_b = self.leaf_row(leaf_b, b_idx, x, theta);
                    let d = dst as usize * w;
                    for l in 0..w {
                        regs[d + l] = op.apply(src_a.get(l), src_b.get(l));
                    }
                }
                Op::Cmp { op, dst, a, b } => {
                    let (d, a, b) = (dst as usize * w, a as usize * w, b as usize * w);
                    for l in 0..w {
                        regs[d + l] = f64::from(op.holds(regs[a + l], regs[b + l]));
                    }
                }
                Op::Select { dst, cond, a, b } => {
                    // branch-free per lane, exactly like the scalar arm: both
                    // values load unconditionally, the pick is a conditional
                    // move carrying the chosen bit pattern through untouched
                    let (d, c, a, b) = (
                        dst as usize * w,
                        cond as usize * w,
                        a as usize * w,
                        b as usize * w,
                    );
                    for l in 0..w {
                        let take = regs[c + l] != 0.0;
                        let va = regs[a + l];
                        let vb = regs[b + l];
                        regs[d + l] = if take { va } else { vb };
                    }
                }
            }
        }
        out.copy_from_slice(&regs[..w]);
    }

    /// Resolves a fused leaf operand to its lane view: a broadcast scalar
    /// (constant or shared parameter) or a contiguous per-lane row.
    #[inline(always)]
    fn leaf_row<'a>(
        &'a self,
        leaf: LeafSource,
        idx: u16,
        x: &'a SoaBatch,
        theta: &BatchTheta<'a>,
    ) -> LaneSrc<'a> {
        match leaf {
            LeafSource::Const => LaneSrc::Splat(self.consts[idx as usize]),
            LeafSource::Species => LaneSrc::Row(x.row(idx as usize)),
            LeafSource::Param => match theta {
                BatchTheta::Shared(t) => LaneSrc::Splat(t[idx as usize]),
                BatchTheta::PerLane(b) => LaneSrc::Row(b.row(idx as usize)),
            },
        }
    }

    /// Evaluation over a freshly zeroed register file of the right tier:
    /// most programs fit 8 registers (one cache line to clear, no bounds
    /// checks thanks to the masked interpreter), deep ones 32, and
    /// pathological ones fall back to a heap file.
    #[inline]
    fn eval_tiered(&self, x: &StateVec, theta: &[f64]) -> f64 {
        if self.registers <= SMALL_REGISTERS {
            let mut regs = [0.0_f64; SMALL_REGISTERS];
            self.run::<{ SMALL_REGISTERS - 1 }>(x, theta, &mut regs)
        } else if self.registers <= STACK_REGISTERS {
            let mut regs = [0.0_f64; STACK_REGISTERS];
            self.run::<{ STACK_REGISTERS - 1 }>(x, theta, &mut regs)
        } else {
            let mut regs = vec![0.0_f64; self.registers];
            self.run::<{ usize::MAX }>(x, theta, &mut regs)
        }
    }
}

/// A fused-leaf operand as the batched interpreter sees it: one scalar
/// broadcast to every lane (constants, shared parameters) or a contiguous
/// per-lane row (species, per-lane parameters).
enum LaneSrc<'a> {
    Splat(f64),
    Row(&'a [f64]),
}

impl LaneSrc<'_> {
    #[inline(always)]
    fn get(&self, lane: usize) -> f64 {
        match self {
            LaneSrc::Splat(v) => *v,
            LaneSrc::Row(row) => row[lane],
        }
    }
}

/// `r[dst][l] = f(r[a][l])` for every lane `l` of a `width`-strided slab.
#[inline(always)]
fn lanes_unary(regs: &mut [f64], w: usize, dst: u16, a: u16, f: impl Fn(f64) -> f64) {
    let (d, a) = (dst as usize * w, a as usize * w);
    for l in 0..w {
        let v = regs[a + l];
        regs[d + l] = f(v);
    }
}

/// `r[dst][l] = f(r[a][l], r[b][l])` for every lane `l`. Plain indexing
/// rather than row slices because `dst` routinely aliases `a` (the lowering
/// reuses the destination register as its left operand).
#[inline(always)]
fn lanes_binary(regs: &mut [f64], w: usize, dst: u16, a: u16, b: u16, f: impl Fn(f64, f64) -> f64) {
    let (d, a, b) = (dst as usize * w, a as usize * w, b as usize * w);
    for l in 0..w {
        let va = regs[a + l];
        let vb = regs[b + l];
        regs[d + l] = f(va, vb);
    }
}

/// Stack tiers of the batched register slab (`registers · width` slots):
/// a small tier that stays cheap to zero at width 1 — the overhead-gated
/// regime — and a larger one before falling back to the heap.
const BATCH_SLAB_SMALL: usize = 64;
const BATCH_SLAB_LARGE: usize = 2048;

/// The shape a rate expression lowered to.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramKind {
    /// The rate is constant in both state and parameters.
    Const(f64),
    /// `coeff · ϑ_param? · x_{species[0]} · x_{species[1]}?` — the
    /// mass-action fast path. Factors multiply left to right exactly as in
    /// the source product spine; the species factors live inline (no heap
    /// indirection on the hot path).
    MassAction {
        /// Leading constant factor (`1.0` when the spine has none).
        coeff: f64,
        /// Optional parameter factor.
        param: Option<u16>,
        /// Up to two species factors, in source order (`species[..len]`).
        species: [u16; 2],
        /// Number of species factors (0, 1 or 2).
        len: u8,
    },
    /// `(base + coeff · ϑ_param? · x_inner) · x_outer` — the canonical
    /// epidemic infection shape (`(a + ϑ·I)·S`), evaluated straight-line in
    /// the tree's exact operation order.
    AffineProduct {
        /// Additive constant of the inner affine term.
        base: f64,
        /// Multiplicative constant of the inner product (`1.0` when the
        /// spine has none).
        coeff: f64,
        /// Optional parameter factor of the inner product.
        param: Option<u16>,
        /// Species factor of the inner product.
        inner: u16,
        /// Species factor multiplying the affine term.
        outer: u16,
    },
    /// General flat bytecode.
    Bytecode(ByteProgram),
}

/// A rate expression lowered to directly executable form.
///
/// Build one with [`RateProgram::compile`]; evaluate with
/// [`RateProgram::eval`] (stack registers) or [`RateProgram::eval_with`]
/// (caller-shared registers). Implements
/// [`CompiledRate`], so it plugs straight into
/// [`TransitionClass::compiled`](mfu_ctmc::transition::TransitionClass::compiled).
#[derive(Debug, Clone, PartialEq)]
pub struct RateProgram {
    kind: ProgramKind,
    /// Sorted, deduplicated state coordinates the program reads.
    support: Vec<usize>,
}

impl RateProgram {
    /// Lowers a compiled expression tree to a flat program.
    pub fn compile(expr: &CompiledExpr) -> RateProgram {
        let expr = fold_constants(expr);
        let mut support: Vec<usize> = Vec::new();
        collect_support(&expr, &mut support);
        support.sort_unstable();
        support.dedup();

        if let CompiledExpr::Const(v) = expr {
            return RateProgram {
                kind: ProgramKind::Const(v),
                support,
            };
        }
        if let Some(kind) = detect_mass_action(&expr) {
            return RateProgram { kind, support };
        }
        if let Some(kind) = detect_affine_product(&expr) {
            return RateProgram { kind, support };
        }

        let mut lowering = Lowering {
            ops: Vec::new(),
            consts: Vec::new(),
            max_register: 0,
        };
        lowering.emit(&expr, 0);
        RateProgram {
            kind: ProgramKind::Bytecode(ByteProgram {
                ops: fuse_leaf_operands(lowering.ops),
                consts: lowering.consts,
                registers: lowering.max_register as usize + 1,
            }),
            support,
        }
    }

    /// The lowered shape (for introspection, tests and benches).
    pub fn kind(&self) -> &ProgramKind {
        &self.kind
    }

    /// `true` when the program avoids the interpreter loop entirely
    /// (constant or mass-action shape).
    pub fn is_fast_path(&self) -> bool {
        !matches!(self.kind, ProgramKind::Bytecode(_))
    }

    /// Scratch registers needed by [`RateProgram::eval_with`] (0 for fast
    /// paths).
    pub fn registers(&self) -> usize {
        match &self.kind {
            ProgramKind::Bytecode(p) => p.registers,
            _ => 0,
        }
    }

    /// Sorted state coordinates the program reads.
    pub fn species_support(&self) -> &[usize] {
        &self.support
    }

    /// Evaluates the program with stack-allocated registers (fast-path
    /// shapes never touch the register file at all).
    #[inline]
    pub fn eval(&self, x: &StateVec, theta: &[f64]) -> f64 {
        match &self.kind {
            ProgramKind::Const(v) => *v,
            ProgramKind::MassAction {
                coeff,
                param,
                species,
                len,
            } => mass_action(x, theta, *coeff, *param, species, *len),
            ProgramKind::AffineProduct {
                base,
                coeff,
                param,
                inner,
                outer,
            } => affine_product(x, theta, *base, *coeff, *param, *inner, *outer),
            ProgramKind::Bytecode(p) => p.eval_tiered(x, theta),
        }
    }

    /// Evaluates the program over a caller-provided register file (shared
    /// across the programs of a model by [`ProgramSet`]).
    ///
    /// # Panics
    ///
    /// Panics if `regs` is shorter than [`RateProgram::registers`].
    #[inline]
    pub fn eval_with(&self, x: &StateVec, theta: &[f64], regs: &mut [f64]) -> f64 {
        match &self.kind {
            ProgramKind::Const(v) => *v,
            ProgramKind::MassAction {
                coeff,
                param,
                species,
                len,
            } => mass_action(x, theta, *coeff, *param, species, *len),
            ProgramKind::AffineProduct {
                base,
                coeff,
                param,
                inner,
                outer,
            } => affine_product(x, theta, *base, *coeff, *param, *inner, *outer),
            ProgramKind::Bytecode(p) => p.eval_with(x, theta, regs),
        }
    }

    /// Evaluates the program over a [`SoaBatch`] of `width` states in one
    /// instruction pass, writing one rate per lane into `out`. Lane `l` is
    /// bit-identical to `self.eval(&x.lane_state(l), theta_of_lane_l)` —
    /// same floating-point operations in the same order, the lanes merely
    /// advance together (see the [module docs](self)).
    ///
    /// Fast-path shapes evaluate row-at-a-time without touching a register
    /// slab; bytecode programs run over a tiered `width`-strided slab.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.width()` or a per-lane `theta` batch does
    /// not cover every lane.
    #[inline]
    pub fn eval_batch_into(&self, x: &SoaBatch, theta: BatchTheta<'_>, out: &mut [f64]) {
        let width = x.width();
        assert_eq!(out.len(), width, "one output slot per lane");
        assert!(theta.covers(width), "per-lane theta width mismatch");
        if let ProgramKind::Bytecode(p) = &self.kind {
            let need = p.registers * width;
            if need <= BATCH_SLAB_SMALL {
                let mut regs = [0.0_f64; BATCH_SLAB_SMALL];
                p.run_batch(x, &theta, &mut regs, out);
            } else if need <= BATCH_SLAB_LARGE {
                let mut regs = [0.0_f64; BATCH_SLAB_LARGE];
                p.run_batch(x, &theta, &mut regs, out);
            } else {
                let mut regs = vec![0.0_f64; need];
                p.run_batch(x, &theta, &mut regs, out);
            }
        } else {
            self.eval_batch_fast(x, &theta, out);
        }
    }

    /// Batched evaluation over a caller-provided `width`-strided register
    /// slab (shared across the programs of a model by
    /// [`ProgramSet::eval_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.width()`, or (in debug builds) if `regs`
    /// is shorter than `self.registers() · x.width()`.
    pub fn eval_batch_with(
        &self,
        x: &SoaBatch,
        theta: &BatchTheta<'_>,
        regs: &mut [f64],
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), x.width(), "one output slot per lane");
        if let ProgramKind::Bytecode(p) = &self.kind {
            p.run_batch(x, theta, regs, out);
        } else {
            self.eval_batch_fast(x, theta, out);
        }
    }

    /// The non-bytecode shapes, row-at-a-time.
    #[inline]
    fn eval_batch_fast(&self, x: &SoaBatch, theta: &BatchTheta<'_>, out: &mut [f64]) {
        match &self.kind {
            ProgramKind::Const(v) => out.fill(*v),
            ProgramKind::MassAction {
                coeff,
                param,
                species,
                len,
            } => mass_action_batch(x, theta, *coeff, *param, species, *len, out),
            ProgramKind::AffineProduct {
                base,
                coeff,
                param,
                inner,
                outer,
            } => affine_product_batch(x, theta, *base, *coeff, *param, *inner, *outer, out),
            ProgramKind::Bytecode(_) => unreachable!("bytecode handled by the callers"),
        }
    }

    /// Probes the program at `(x, theta)` against the numeric-health
    /// contract the simulation engines enforce at this same boundary
    /// ([`mfu_guard::rate_is_healthy`]): a rate must be finite and
    /// non-negative. Returns the offending value, or `None` when healthy.
    pub fn probe_health(&self, x: &StateVec, theta: &[f64]) -> Option<f64> {
        let rate = self.eval(x, theta);
        if mfu_guard::rate_is_healthy(rate) {
            None
        } else {
            Some(rate)
        }
    }
}

impl CompiledRate for RateProgram {
    fn eval(&self, x: &StateVec, theta: &[f64]) -> f64 {
        RateProgram::eval(self, x, theta)
    }

    fn species_support(&self) -> &[usize] {
        &self.support
    }

    fn eval_batch_into(&self, x: &SoaBatch, theta: BatchTheta<'_>, out: &mut [f64]) {
        RateProgram::eval_batch_into(self, x, theta, out);
    }
}

/// The rate programs of all rules of a model, sharing one scratch register
/// file sized for the largest program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgramSet {
    programs: Vec<RateProgram>,
    registers: usize,
}

impl ProgramSet {
    /// Bundles programs, recording the shared register-file size.
    pub fn new(programs: Vec<RateProgram>) -> Self {
        let registers = programs
            .iter()
            .map(RateProgram::registers)
            .max()
            .unwrap_or(0);
        ProgramSet {
            programs,
            registers,
        }
    }

    /// Number of programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The individual programs, in rule order.
    pub fn programs(&self) -> &[RateProgram] {
        &self.programs
    }

    /// Size of the shared register file.
    pub fn registers(&self) -> usize {
        self.registers
    }

    /// Evaluates every program in one pass, feeding `(rule_index, rate)` to
    /// `sink`. The shared register file lives on the stack — zeroed once per
    /// call and sized to the smallest masked tier that fits, so bytecode
    /// programs run the bounds-check-free interpreter — with a heap fallback
    /// for pathological sets.
    #[inline]
    pub fn eval_each(&self, x: &StateVec, theta: &[f64], mut sink: impl FnMut(usize, f64)) {
        if self.registers <= SMALL_REGISTERS {
            self.eval_each_masked::<SMALL_REGISTERS, { SMALL_REGISTERS - 1 }>(x, theta, &mut sink);
        } else if self.registers <= STACK_REGISTERS {
            self.eval_each_masked::<STACK_REGISTERS, { STACK_REGISTERS - 1 }>(x, theta, &mut sink);
        } else {
            let mut regs = vec![0.0; self.registers];
            for (k, program) in self.programs.iter().enumerate() {
                sink(k, program.eval_with(x, theta, &mut regs));
            }
        }
    }

    /// One masked-tier pass: every register index is `< N` (checked by
    /// [`ProgramSet::eval_each`]), so `run::<MASK>` elides bounds checks.
    #[inline]
    fn eval_each_masked<const N: usize, const MASK: usize>(
        &self,
        x: &StateVec,
        theta: &[f64],
        sink: &mut impl FnMut(usize, f64),
    ) {
        let mut regs = [0.0_f64; N];
        for (k, program) in self.programs.iter().enumerate() {
            let value = match &program.kind {
                ProgramKind::Bytecode(p) => p.run::<MASK>(x, theta, &mut regs),
                _ => program.eval_with(x, theta, &mut regs),
            };
            sink(k, value);
        }
    }

    /// Evaluates every program into `out` (one slot per rule).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`ProgramSet::len`].
    pub fn eval_into(&self, x: &StateVec, theta: &[f64], out: &mut [f64]) {
        assert!(out.len() >= self.programs.len(), "output slice too short");
        self.eval_each(x, theta, |k, r| out[k] = r);
    }

    /// Evaluates every program over a [`SoaBatch`] of `width` states in one
    /// pass per program, writing rule-major rows into `out`: the rate of
    /// rule `k` for lane `l` lands in `out[k · width + l]`. The shared
    /// `width`-strided register slab is tiered like the scalar file (stack
    /// slabs for the common sizes, heap fallback for pathological sets).
    ///
    /// Each lane of each row is bit-identical to the scalar
    /// [`ProgramSet::eval_into`] on that lane's `(x, ϑ)` — see the
    /// [module docs](self).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `len() · x.width()` or a per-lane
    /// `theta` batch does not cover every lane.
    pub fn eval_batch_into(&self, x: &SoaBatch, theta: BatchTheta<'_>, out: &mut [f64]) {
        let width = x.width();
        assert!(
            out.len() >= self.programs.len() * width,
            "output slice too short"
        );
        assert!(theta.covers(width), "per-lane theta width mismatch");
        let need = self.registers * width;
        if need <= BATCH_SLAB_SMALL {
            let mut regs = [0.0_f64; BATCH_SLAB_SMALL];
            self.eval_batch_all(x, &theta, &mut regs, out, width);
        } else if need <= BATCH_SLAB_LARGE {
            let mut regs = [0.0_f64; BATCH_SLAB_LARGE];
            self.eval_batch_all(x, &theta, &mut regs, out, width);
        } else {
            let mut regs = vec![0.0_f64; need];
            self.eval_batch_all(x, &theta, &mut regs, out, width);
        }
    }

    /// One batched pass over every program with a shared register slab.
    fn eval_batch_all(
        &self,
        x: &SoaBatch,
        theta: &BatchTheta<'_>,
        regs: &mut [f64],
        out: &mut [f64],
        width: usize,
    ) {
        for (k, program) in self.programs.iter().enumerate() {
            program.eval_batch_with(x, theta, regs, &mut out[k * width..(k + 1) * width]);
        }
    }

    /// Probes every program at `(x, theta)` and returns the first unhealthy
    /// one as `(program index, offending value)`; `None` when all rates are
    /// finite and non-negative. See [`RateProgram::probe_health`].
    pub fn first_unhealthy(&self, x: &StateVec, theta: &[f64]) -> Option<(usize, f64)> {
        self.programs
            .iter()
            .enumerate()
            .find_map(|(k, program)| program.probe_health(x, theta).map(|value| (k, value)))
    }
}

/// Stack-discipline register allocator: the result of lowering `expr` with
/// base register `b` lands in `r[b]`, using registers `b..` as scratch.
struct Lowering {
    ops: Vec<Op>,
    consts: Vec<f64>,
    max_register: u16,
}

impl Lowering {
    fn emit(&mut self, expr: &CompiledExpr, dst: u16) {
        self.max_register = self.max_register.max(dst);
        match expr {
            CompiledExpr::Const(v) => {
                let idx = self.intern_const(*v);
                self.ops.push(Op::Const { dst, idx });
            }
            CompiledExpr::Species(i) => self.ops.push(Op::Species {
                dst,
                idx: narrow(*i),
            }),
            CompiledExpr::Param(j) => self.ops.push(Op::Param {
                dst,
                idx: narrow(*j),
            }),
            CompiledExpr::Neg(a) => {
                self.emit(a, dst);
                self.ops.push(Op::Neg { dst, a: dst });
            }
            CompiledExpr::Add(a, b) => {
                self.emit_binary(a, b, dst, |dst, a, b| Op::Add { dst, a, b })
            }
            CompiledExpr::Sub(a, b) => {
                self.emit_binary(a, b, dst, |dst, a, b| Op::Sub { dst, a, b })
            }
            CompiledExpr::Mul(a, b) => {
                self.emit_binary(a, b, dst, |dst, a, b| Op::Mul { dst, a, b })
            }
            CompiledExpr::Div(a, b) => {
                self.emit_binary(a, b, dst, |dst, a, b| Op::Div { dst, a, b })
            }
            CompiledExpr::Pow(a, b) | CompiledExpr::Call2(Builtin::Pow, a, b) => {
                // x^n strength reduction: IEEE `pow` is exact for exponents 0
                // and 1; small integer exponents become straight multiplies.
                // The tree interpreter applies the *same* reduction (shared
                // `expr::unrolls`/`unrolled_pow`), so `^` stays inside the
                // bit-exact lowering contract.
                if let CompiledExpr::Const(n) = **b {
                    if n == 0.0 {
                        let idx = self.intern_const(1.0);
                        self.ops.push(Op::Const { dst, idx });
                        return;
                    }
                    if n == 1.0 {
                        self.emit(a, dst);
                        return;
                    }
                    if unrolls(n) {
                        self.emit(a, dst);
                        self.ops.push(Op::PowInt {
                            dst,
                            a: dst,
                            n: n as u16,
                        });
                        return;
                    }
                }
                self.emit_binary(a, b, dst, |dst, a, b| Op::Pow { dst, a, b });
            }
            CompiledExpr::Call1(f, a) => {
                self.emit(a, dst);
                self.ops.push(match f {
                    Builtin::Abs => Op::Abs { dst, a: dst },
                    Builtin::Exp => Op::Exp { dst, a: dst },
                    Builtin::Log => Op::Log { dst, a: dst },
                    Builtin::Sqrt => Op::Sqrt { dst, a: dst },
                    Builtin::Min | Builtin::Max | Builtin::Pow => {
                        unreachable!("binary builtin with one argument")
                    }
                });
            }
            CompiledExpr::Call2(f, a, b) => {
                let make = match f {
                    Builtin::Min => |dst, a, b| Op::Min { dst, a, b },
                    Builtin::Max => |dst, a, b| Op::Max { dst, a, b },
                    Builtin::Pow => unreachable!("pow handled above"),
                    Builtin::Abs | Builtin::Exp | Builtin::Log | Builtin::Sqrt => {
                        unreachable!("unary builtin with two arguments")
                    }
                };
                self.emit_binary(a, b, dst, make);
            }
            CompiledExpr::Cmp(op, a, b) => {
                let op = *op;
                self.emit(a, dst);
                self.emit(b, dst + 1);
                self.ops.push(Op::Cmp {
                    op,
                    dst,
                    a: dst,
                    b: dst + 1,
                });
            }
            CompiledExpr::Select(cond, then, els) => {
                // straight-line lowering: condition, then-branch and
                // else-branch all evaluate, the select picks branch-free
                self.emit(cond, dst);
                self.emit(then, dst + 1);
                self.emit(els, dst + 2);
                self.ops.push(Op::Select {
                    dst,
                    cond: dst,
                    a: dst + 1,
                    b: dst + 2,
                });
            }
        }
    }

    fn emit_binary(
        &mut self,
        a: &CompiledExpr,
        b: &CompiledExpr,
        dst: u16,
        make: fn(u16, u16, u16) -> Op,
    ) {
        self.emit(a, dst);
        self.emit(b, dst + 1);
        self.ops.push(make(dst, dst, dst + 1));
    }

    fn intern_const(&mut self, v: f64) -> u16 {
        let found = self.consts.iter().position(|c| c.to_bits() == v.to_bits());
        let idx = found.unwrap_or_else(|| {
            self.consts.push(v);
            self.consts.len() - 1
        });
        narrow(idx)
    }
}

/// The affine-product fast path: `(base + coeff · ϑ_p? · x_i) · x_j`, with
/// every operation in the tree's order.
#[inline(always)]
fn affine_product(
    x: &StateVec,
    theta: &[f64],
    base: f64,
    coeff: f64,
    param: Option<u16>,
    inner: u16,
    outer: u16,
) -> f64 {
    let mut m = coeff;
    if let Some(p) = param {
        m *= theta[p as usize];
    }
    m *= x[inner as usize];
    (base + m) * x[outer as usize]
}

/// The mass-action fast path: `coeff · ϑ_p? · x_i (· x_j)`, multiplied in
/// source order.
#[inline(always)]
fn mass_action(
    x: &StateVec,
    theta: &[f64],
    coeff: f64,
    param: Option<u16>,
    species: &[u16; 2],
    len: u8,
) -> f64 {
    let mut r = coeff;
    if let Some(p) = param {
        r *= theta[p as usize];
    }
    for &i in &species[..len as usize] {
        r *= x[i as usize];
    }
    r
}

/// Multiplies a parameter factor into every lane of `out` (broadcast for a
/// shared theta, row-wise for per-lane thetas).
#[inline(always)]
fn mul_param_row(out: &mut [f64], theta: &BatchTheta<'_>, p: u16) {
    match theta {
        BatchTheta::Shared(t) => {
            let v = t[p as usize];
            for o in out.iter_mut() {
                *o *= v;
            }
        }
        BatchTheta::PerLane(b) => {
            for (o, &v) in out.iter_mut().zip(b.row(p as usize)) {
                *o *= v;
            }
        }
    }
}

/// Batched mass-action fast path: per lane the exact factor order of
/// [`mass_action`] — `coeff`, then `ϑ_p?`, then the species in source
/// order — so every lane is bit-identical to the scalar fast path.
#[inline]
fn mass_action_batch(
    x: &SoaBatch,
    theta: &BatchTheta<'_>,
    coeff: f64,
    param: Option<u16>,
    species: &[u16; 2],
    len: u8,
    out: &mut [f64],
) {
    // A single lane skips the row-slice machinery: same factor order,
    // scalar arithmetic, so the width-1 batch costs what a scalar call
    // costs.
    if out.len() == 1 {
        let mut r = coeff;
        if let Some(p) = param {
            r *= theta.get(p as usize, 0);
        }
        for &i in &species[..len as usize] {
            r *= x.get(i as usize, 0);
        }
        out[0] = r;
        return;
    }
    out.fill(coeff);
    if let Some(p) = param {
        mul_param_row(out, theta, p);
    }
    for &i in &species[..len as usize] {
        for (o, &v) in out.iter_mut().zip(x.row(i as usize)) {
            *o *= v;
        }
    }
}

/// Batched affine-product fast path: per lane the exact operation order of
/// [`affine_product`] — `m = coeff · ϑ_p? · x_inner`, then
/// `(base + m) · x_outer`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn affine_product_batch(
    x: &SoaBatch,
    theta: &BatchTheta<'_>,
    base: f64,
    coeff: f64,
    param: Option<u16>,
    inner: u16,
    outer: u16,
    out: &mut [f64],
) {
    // Width-1 scalar specialisation, same operation order (see
    // `mass_action_batch`).
    if out.len() == 1 {
        let mut m = coeff;
        if let Some(p) = param {
            m *= theta.get(p as usize, 0);
        }
        m *= x.get(inner as usize, 0);
        out[0] = (base + m) * x.get(outer as usize, 0);
        return;
    }
    out.fill(coeff);
    if let Some(p) = param {
        mul_param_row(out, theta, p);
    }
    for (o, &v) in out.iter_mut().zip(x.row(inner as usize)) {
        *o *= v;
    }
    for (o, &v) in out.iter_mut().zip(x.row(outer as usize)) {
        *o = (base + *o) * v;
    }
}

fn narrow(i: usize) -> u16 {
    u16::try_from(i).expect("rate expression exceeds 65535 distinct indices")
}

/// Peephole fusion of leaf loads into the arithmetic instruction consuming
/// them, halving dispatch count for the typical polynomial rate. The stack
/// lowering discipline guarantees the patterns: a binary op's right operand
/// is always computed immediately before it in register `dst + 1`, so
/// `Load(d+1); Arith{dst: d, a: d, b: d+1}` fuses to [`Op::BinLeaf`], and a
/// left leaf (`Load(d); BinLeaf{dst: d, a: d}`) then fuses to
/// [`Op::BinLeafLeaf`]. The arithmetic (operand values and operation) is
/// untouched, so fusion preserves results bit for bit.
fn fuse_leaf_operands(ops: Vec<Op>) -> Vec<Op> {
    fn as_load(op: &Op) -> Option<(LeafSource, u16, u16)> {
        match *op {
            Op::Const { dst, idx } => Some((LeafSource::Const, idx, dst)),
            Op::Species { dst, idx } => Some((LeafSource::Species, idx, dst)),
            Op::Param { dst, idx } => Some((LeafSource::Param, idx, dst)),
            _ => None,
        }
    }
    fn as_arith(op: &Op) -> Option<(ArithOp, u16, u16, u16)> {
        match *op {
            Op::Add { dst, a, b } => Some((ArithOp::Add, dst, a, b)),
            Op::Sub { dst, a, b } => Some((ArithOp::Sub, dst, a, b)),
            Op::Mul { dst, a, b } => Some((ArithOp::Mul, dst, a, b)),
            Op::Div { dst, a, b } => Some((ArithOp::Div, dst, a, b)),
            _ => None,
        }
    }

    /// Register sources an instruction reads (leaf loads read none).
    fn reads_register(op: &Op, r: u16) -> bool {
        match *op {
            Op::Const { .. } | Op::Species { .. } | Op::Param { .. } | Op::BinLeafLeaf { .. } => {
                false
            }
            Op::Neg { a, .. }
            | Op::PowInt { a, .. }
            | Op::Abs { a, .. }
            | Op::Exp { a, .. }
            | Op::Log { a, .. }
            | Op::Sqrt { a, .. }
            | Op::BinLeaf { a, .. } => a == r,
            Op::Add { a, b, .. }
            | Op::Sub { a, b, .. }
            | Op::Mul { a, b, .. }
            | Op::Div { a, b, .. }
            | Op::Pow { a, b, .. }
            | Op::Min { a, b, .. }
            | Op::Max { a, b, .. }
            | Op::Cmp { a, b, .. } => a == r || b == r,
            Op::Select { cond, a, b, .. } => cond == r || a == r || b == r,
        }
    }

    /// The register an instruction writes.
    fn writes_register(op: &Op) -> u16 {
        match *op {
            Op::Const { dst, .. }
            | Op::Species { dst, .. }
            | Op::Param { dst, .. }
            | Op::Neg { dst, .. }
            | Op::Add { dst, .. }
            | Op::Sub { dst, .. }
            | Op::Mul { dst, .. }
            | Op::Div { dst, .. }
            | Op::Pow { dst, .. }
            | Op::PowInt { dst, .. }
            | Op::Min { dst, .. }
            | Op::Max { dst, .. }
            | Op::Abs { dst, .. }
            | Op::Exp { dst, .. }
            | Op::Log { dst, .. }
            | Op::Sqrt { dst, .. }
            | Op::BinLeaf { dst, .. }
            | Op::BinLeafLeaf { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Select { dst, .. } => dst,
        }
    }

    let mut fused: Vec<Op> = Vec::with_capacity(ops.len());
    for op in ops {
        // round 1: right operand is a leaf load
        if let Some((arith, dst, a, b)) = as_arith(&op) {
            if let Some(&prev) = fused.last() {
                if let Some((leaf, idx, load_dst)) = as_load(&prev) {
                    if load_dst == b && a != b {
                        fused.pop();
                        let bin_leaf = Op::BinLeaf {
                            op: arith,
                            leaf,
                            dst,
                            a,
                            idx,
                        };
                        // round 2: left operand is a leaf load too
                        if let Some(&prev2) = fused.last() {
                            if let Some((leaf_a, a_idx, load2_dst)) = as_load(&prev2) {
                                if load2_dst == a && dst == a {
                                    fused.pop();
                                    fused.push(Op::BinLeafLeaf {
                                        op: arith,
                                        leaf_a,
                                        a_idx,
                                        leaf_b: leaf,
                                        b_idx: idx,
                                        dst,
                                    });
                                    continue;
                                }
                            }
                        }
                        fused.push(bin_leaf);
                        continue;
                    }
                }
            }
        }
        fused.push(op);
    }

    // round 3: commutative absorption of a *non-adjacent* left leaf — for
    // `r_d = r_a ⊕ r_b` with ⊕ ∈ {+, ·}, when register `a` was defined by a
    // leaf load untouched since (the stack discipline guarantees the ops in
    // between only work above `a`), rewrite to `r_d = r_b ⊕ leaf`. IEEE
    // addition and multiplication are exactly commutative, so the result is
    // unchanged bit for bit.
    let mut i = 0;
    while i < fused.len() {
        if let Some((arith, dst, a, b)) = as_arith(&fused[i]) {
            // `dst == a` (stack discipline) ensures the loaded value cannot
            // be read again after this op, so the load really is dead.
            if dst == a && matches!(arith, ArithOp::Add | ArithOp::Mul) {
                let defining = (0..i).rev().find(|&j| writes_register(&fused[j]) == a);
                if let Some(j) = defining {
                    let untouched = fused[j + 1..i].iter().all(|op| !reads_register(op, a));
                    if untouched {
                        if let Some((leaf, idx, _)) = as_load(&fused[j]) {
                            fused[i] = Op::BinLeaf {
                                op: arith,
                                leaf,
                                dst,
                                a: b,
                                idx,
                            };
                            fused.remove(j);
                            continue; // indices shifted; revisit position i-1
                        }
                    }
                }
            }
        }
        i += 1;
    }
    fused
}

fn collect_support(expr: &CompiledExpr, out: &mut Vec<usize>) {
    match expr {
        CompiledExpr::Species(i) => out.push(*i),
        CompiledExpr::Const(_) | CompiledExpr::Param(_) => {}
        CompiledExpr::Neg(a) | CompiledExpr::Call1(_, a) => collect_support(a, out),
        CompiledExpr::Add(a, b)
        | CompiledExpr::Sub(a, b)
        | CompiledExpr::Mul(a, b)
        | CompiledExpr::Div(a, b)
        | CompiledExpr::Pow(a, b)
        | CompiledExpr::Cmp(_, a, b)
        | CompiledExpr::Call2(_, a, b) => {
            collect_support(a, out);
            collect_support(b, out);
        }
        CompiledExpr::Select(c, t, e) => {
            // the VM evaluates both branches, and even the tree interpreter
            // can switch branches whenever a condition species changes —
            // so a guarded rate depends on every coordinate either side
            // (or the condition) reads
            collect_support(c, out);
            collect_support(t, out);
            collect_support(e, out);
        }
    }
}

/// Recognises left-leaning product spines of simple leaves:
/// `[Const]? · [Param]? · Species · [Species]?` in that factor order.
///
/// Only left-leaning spines (`((c·ϑ)·x)·y`) qualify because the fast path
/// multiplies left to right; accepting an arbitrarily shaped `Mul` tree
/// would reassociate the product and change the result by an ulp — enough to
/// desynchronise bit-exact trajectory comparisons against the tree
/// interpreter.
fn detect_mass_action(expr: &CompiledExpr) -> Option<ProgramKind> {
    let mut factors = Vec::new();
    flatten_left_spine(expr, &mut factors)?;

    let mut coeff = 1.0;
    let mut param: Option<u16> = None;
    let mut species = [0u16; 2];
    let mut len = 0u8;
    let mut stage = 0; // 0: const, 1: param, 2: species
    for factor in factors {
        match factor {
            CompiledExpr::Const(v) if stage == 0 => {
                coeff = *v;
                stage = 1;
            }
            CompiledExpr::Param(j) if stage <= 1 => {
                param = Some(narrow(*j));
                stage = 2;
            }
            CompiledExpr::Species(i) => {
                if len == 2 {
                    return None;
                }
                species[len as usize] = narrow(*i);
                len += 1;
                stage = 3;
            }
            _ => return None,
        }
    }
    if len == 0 && param.is_none() {
        return None; // pure constants are handled earlier
    }
    Some(ProgramKind::MassAction {
        coeff,
        param,
        species,
        len,
    })
}

/// Recognises `(base + <mass-action chain with one species>) · x_outer` —
/// the epidemic infection shape `(a + ϑ·I)·S` and its variants. Evaluation
/// order matches the tree exactly (inner product left to right, then the
/// addition, then the outer multiplication).
fn detect_affine_product(expr: &CompiledExpr) -> Option<ProgramKind> {
    let CompiledExpr::Mul(affine, outer) = expr else {
        return None;
    };
    let CompiledExpr::Species(outer) = **outer else {
        return None;
    };
    let CompiledExpr::Add(base, chain) = &**affine else {
        return None;
    };
    let CompiledExpr::Const(base) = **base else {
        return None;
    };
    match detect_mass_action(chain)? {
        ProgramKind::MassAction {
            coeff,
            param,
            species,
            len: 1,
        } => Some(ProgramKind::AffineProduct {
            base,
            coeff,
            param,
            inner: species[0],
            outer: narrow(outer),
        }),
        _ => None,
    }
}

/// Collects the factors of a left-leaning multiplication spine whose right
/// operands are all leaves; returns `None` for any other shape.
fn flatten_left_spine<'e>(expr: &'e CompiledExpr, out: &mut Vec<&'e CompiledExpr>) -> Option<()> {
    match expr {
        CompiledExpr::Mul(a, b) if is_leaf(b) => {
            flatten_left_spine(a, out)?;
            out.push(b);
            Some(())
        }
        leaf if is_leaf(leaf) => {
            out.push(leaf);
            Some(())
        }
        _ => None,
    }
}

fn is_leaf(expr: &CompiledExpr) -> bool {
    matches!(
        expr,
        CompiledExpr::Const(_) | CompiledExpr::Species(_) | CompiledExpr::Param(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Box<CompiledExpr> {
        Box::new(CompiledExpr::Const(v))
    }
    fn s(i: usize) -> Box<CompiledExpr> {
        Box::new(CompiledExpr::Species(i))
    }
    fn p(j: usize) -> Box<CompiledExpr> {
        Box::new(CompiledExpr::Param(j))
    }
    fn mul(a: Box<CompiledExpr>, b: Box<CompiledExpr>) -> Box<CompiledExpr> {
        Box::new(CompiledExpr::Mul(a, b))
    }

    fn x() -> StateVec {
        StateVec::from([0.7, 0.3, 0.125])
    }

    #[test]
    fn constants_fold_to_const_programs() {
        let expr = CompiledExpr::Add(c(1.5), Box::new(CompiledExpr::Neg(c(0.5))));
        let program = RateProgram::compile(&expr);
        assert!(matches!(program.kind(), ProgramKind::Const(v) if *v == 1.0));
        assert!(program.species_support().is_empty());
        assert_eq!(program.eval(&x(), &[]), 1.0);
        assert_eq!(program.registers(), 0);
    }

    #[test]
    fn mass_action_shapes_are_detected_and_exact() {
        // b * I
        let e1 = mul(c(5.0), s(1));
        // contact * S * I  (left spine)
        let e2 = mul(mul(p(0), s(0)), s(1));
        // lambda * route * Idle
        let e3 = mul(mul(c(2.0), p(0)), s(2));
        // S * I
        let e4 = mul(s(0), s(1));
        for (expr, support) in [
            (&e1, vec![1]),
            (&e2, vec![0, 1]),
            (&e3, vec![2]),
            (&e4, vec![0, 1]),
        ] {
            let program = RateProgram::compile(expr);
            assert!(
                matches!(program.kind(), ProgramKind::MassAction { .. }),
                "{expr:?} should lower to mass action"
            );
            assert!(program.is_fast_path());
            assert_eq!(program.species_support(), &support[..]);
            for theta in [[1.0], [4.2], [10.0]] {
                let tree = expr.eval(&x(), &theta);
                let vm = program.eval(&x(), &theta);
                assert_eq!(tree.to_bits(), vm.to_bits(), "{expr:?} at ϑ={theta:?}");
            }
        }
    }

    #[test]
    fn non_left_spines_fall_back_to_bytecode() {
        // (S * I) * (contact * S): right operand is not a leaf
        let expr = mul(mul(s(0), s(1)), mul(p(0), s(0)));
        let program = RateProgram::compile(&expr);
        assert!(matches!(program.kind(), ProgramKind::Bytecode(_)));
        // bytecode still matches the tree bit for bit
        let tree = expr.eval(&x(), &[3.0]);
        assert_eq!(tree.to_bits(), program.eval(&x(), &[3.0]).to_bits());
    }

    #[test]
    fn three_species_products_fall_back_to_bytecode() {
        let expr = mul(mul(mul(c(2.0), s(0)), s(1)), s(2));
        let program = RateProgram::compile(&expr);
        assert!(matches!(program.kind(), ProgramKind::Bytecode(_)));
        assert_eq!(
            expr.eval(&x(), &[]).to_bits(),
            program.eval(&x(), &[]).to_bits()
        );
    }

    #[test]
    fn infection_shape_gets_the_affine_product_fast_path() {
        // (a + contact * I) * S — the SIR infection rate
        let expr = mul(Box::new(CompiledExpr::Add(c(0.1), mul(p(0), s(1)))), s(0));
        let program = RateProgram::compile(&expr);
        assert!(matches!(program.kind(), ProgramKind::AffineProduct { .. }));
        assert!(program.is_fast_path());
        assert_eq!(program.species_support(), &[0, 1]);
        for theta in [1.0, 2.5, 10.0] {
            let tree = expr.eval(&x(), &[theta]);
            let vm = program.eval(&x(), &[theta]);
            assert_eq!(tree.to_bits(), vm.to_bits());
        }
    }

    #[test]
    fn bytecode_matches_tree_bit_for_bit_without_pow() {
        // c · (total − (S + I)) — a reduced-coordinate conservation rate;
        // no fast-path shape applies.
        let expr = mul(
            c(0.8),
            Box::new(CompiledExpr::Sub(
                c(1.0),
                Box::new(CompiledExpr::Add(s(0), s(1))),
            )),
        );
        let program = RateProgram::compile(&expr);
        assert!(matches!(program.kind(), ProgramKind::Bytecode(_)));
        assert_eq!(program.species_support(), &[0, 1]);
        for theta in [1.0, 2.5, 10.0] {
            let tree = expr.eval(&x(), &[theta]);
            let vm = program.eval(&x(), &[theta]);
            assert_eq!(tree.to_bits(), vm.to_bits());
        }
    }

    #[test]
    fn builtins_lower_and_evaluate() {
        let expr = CompiledExpr::Call2(
            Builtin::Max,
            c(0.0),
            Box::new(CompiledExpr::Sub(
                Box::new(CompiledExpr::Call1(Builtin::Sqrt, s(0))),
                Box::new(CompiledExpr::Call1(
                    Builtin::Exp,
                    Box::new(CompiledExpr::Neg(s(1))),
                )),
            )),
        );
        let program = RateProgram::compile(&expr);
        let tree = expr.eval(&x(), &[]);
        assert_eq!(tree.to_bits(), program.eval(&x(), &[]).to_bits());
        // div + log + abs + min coverage
        let expr = CompiledExpr::Call2(
            Builtin::Min,
            Box::new(CompiledExpr::Div(
                Box::new(CompiledExpr::Call1(Builtin::Log, c(9.0))),
                Box::new(CompiledExpr::Call1(
                    Builtin::Abs,
                    Box::new(CompiledExpr::Neg(s(0))),
                )),
            )),
            p(0),
        );
        let program = RateProgram::compile(&expr);
        let tree = expr.eval(&x(), &[0.5]);
        assert_eq!(tree.to_bits(), program.eval(&x(), &[0.5]).to_bits());
    }

    #[test]
    fn power_strength_reduction() {
        // x^2 → x·x
        let sq = CompiledExpr::Pow(s(1), c(2.0));
        let program = RateProgram::compile(&sq);
        match program.kind() {
            ProgramKind::Bytecode(p) => {
                assert!(p
                    .ops()
                    .iter()
                    .any(|op| matches!(op, Op::PowInt { n: 2, .. })));
                assert!(!p.ops().iter().any(|op| matches!(op, Op::Pow { .. })));
            }
            other => panic!("expected bytecode, got {other:?}"),
        }
        let v = program.eval(&x(), &[]);
        assert!((v - 0.09).abs() < 1e-15);

        // x^1 is the identity, x^0 is one
        let one = RateProgram::compile(&CompiledExpr::Pow(s(0), c(1.0)));
        assert_eq!(one.eval(&x(), &[]), 0.7);
        let unit = RateProgram::compile(&CompiledExpr::Pow(s(0), c(0.0)));
        assert_eq!(unit.eval(&x(), &[]), 1.0);

        // fractional and large exponents keep powf
        let frac = RateProgram::compile(&CompiledExpr::Pow(s(0), c(0.5)));
        match frac.kind() {
            ProgramKind::Bytecode(p) => {
                assert!(p.ops().iter().any(|op| matches!(op, Op::Pow { .. })));
            }
            other => panic!("expected bytecode, got {other:?}"),
        }
        assert_eq!(frac.eval(&x(), &[]).to_bits(), 0.7f64.powf(0.5).to_bits());
    }

    #[test]
    fn guarded_rates_lower_to_branch_free_selects() {
        use crate::ast::CmpOp;
        // when (Q1 + Q2 > 1e-12) { 5 * Q1 / (Q1 + Q2) } else { 0 } — the
        // GPS service shape
        let load = || Box::new(CompiledExpr::Add(s(0), s(1)));
        let expr = CompiledExpr::Select(
            Box::new(CompiledExpr::Cmp(CmpOp::Gt, load(), c(1e-12))),
            Box::new(CompiledExpr::Div(mul(c(5.0), s(0)), load())),
            c(0.0),
        );
        let program = RateProgram::compile(&expr);
        let ProgramKind::Bytecode(p) = program.kind() else {
            panic!(
                "guarded rate should lower to bytecode, got {:?}",
                program.kind()
            );
        };
        assert!(p.ops().iter().any(|op| matches!(op, Op::Cmp { .. })));
        assert!(p.ops().iter().any(|op| matches!(op, Op::Select { .. })));
        assert_eq!(program.species_support(), &[0, 1]);

        // busy and idle states, bit-identical to the tree
        for state in [[0.7, 0.3, 0.0], [0.0, 0.0, 0.0], [0.0, 0.4, 0.0]] {
            let x = StateVec::from(state);
            let tree = expr.eval(&x, &[]);
            let vm = program.eval(&x, &[]);
            assert_eq!(tree.to_bits(), vm.to_bits(), "state {state:?}");
            assert!(vm.is_finite(), "guard must mask the 0/0 branch");
        }
    }

    #[test]
    fn comparison_programs_yield_indicators() {
        use crate::ast::CmpOp;
        for (op, expect) in [
            (CmpOp::Lt, 0.0),
            (CmpOp::Le, 0.0),
            (CmpOp::Gt, 1.0),
            (CmpOp::Ge, 1.0),
            (CmpOp::Eq, 0.0),
            (CmpOp::Ne, 1.0),
        ] {
            // S(0) = 0.7 vs 0.3
            let expr = CompiledExpr::Cmp(CmpOp::Eq, s(0), s(0));
            assert_eq!(RateProgram::compile(&expr).eval(&x(), &[]), 1.0);
            let expr = CompiledExpr::Cmp(op, s(0), s(1));
            let program = RateProgram::compile(&expr);
            assert_eq!(program.eval(&x(), &[]), expect, "{op:?}");
            assert_eq!(
                expr.eval(&x(), &[]).to_bits(),
                program.eval(&x(), &[]).to_bits()
            );
        }
    }

    #[test]
    fn constant_guard_conditions_fold_before_lowering() {
        use crate::ast::CmpOp;
        // when 1 > 2 { S/0 } else { 2 * S } — dead branch disappears
        let expr = CompiledExpr::Select(
            Box::new(CompiledExpr::Cmp(CmpOp::Gt, c(1.0), c(2.0))),
            Box::new(CompiledExpr::Div(s(0), c(0.0))),
            mul(c(2.0), s(0)),
        );
        let program = RateProgram::compile(&expr);
        assert!(
            matches!(program.kind(), ProgramKind::MassAction { .. }),
            "folded guard should reach the mass-action fast path, got {:?}",
            program.kind()
        );
        assert_eq!(program.eval(&x(), &[]), 1.4);
    }

    #[test]
    fn shared_register_file_reuses_between_programs() {
        let set = ProgramSet::new(vec![
            RateProgram::compile(&mul(c(5.0), s(1))),
            // c · (1 − (S + I)) forces a genuine bytecode program
            RateProgram::compile(&mul(
                c(0.1),
                Box::new(CompiledExpr::Sub(
                    c(1.0),
                    Box::new(CompiledExpr::Add(s(0), s(1))),
                )),
            )),
        ]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert!(set.registers() >= 2);
        let mut out = [0.0; 2];
        set.eval_into(&x(), &[2.0], &mut out);
        assert!((out[0] - 1.5).abs() < 1e-15);
        assert!((out[1] - 0.1 * (1.0 - (0.7 + 0.3))).abs() < 1e-15);
        assert_eq!(set.programs().len(), 2);
    }

    #[test]
    fn deep_programs_fall_back_to_heap_registers() {
        // right-leaning addition chain deeper than the stack register file
        let mut expr = CompiledExpr::Species(0);
        for _ in 0..(STACK_REGISTERS + 8) {
            expr = CompiledExpr::Add(s(0), Box::new(expr));
        }
        let program = RateProgram::compile(&expr);
        assert!(program.registers() > STACK_REGISTERS);
        let expected = expr.eval(&x(), &[]);
        assert_eq!(expected.to_bits(), program.eval(&x(), &[]).to_bits());
    }

    #[test]
    fn program_implements_compiled_rate() {
        use mfu_ctmc::transition::TransitionClass;
        use std::sync::Arc;
        let program = RateProgram::compile(&mul(mul(p(0), s(0)), s(1)));
        let class = TransitionClass::compiled("infect", [-1.0, 1.0, 0.0], Arc::new(program));
        assert!(class.rate_fn().is_compiled());
        assert_eq!(class.species_support(), Some(&[0, 1][..]));
        assert!((class.rate(&x(), &[2.0]) - 0.42).abs() < 1e-15);
    }

    #[test]
    fn health_probes_flag_nan_and_negative_rates() {
        // θ₀ · x₀ is healthy at positive inputs and negative at θ₀ < 0
        let program = RateProgram::compile(&mul(p(0), s(0)));
        assert_eq!(program.probe_health(&x(), &[2.0]), None);
        assert_eq!(program.probe_health(&x(), &[-2.0]), Some(-1.4));
        assert!(program
            .probe_health(&x(), &[f64::NAN])
            .is_some_and(f64::is_nan));

        let set = ProgramSet::new(vec![
            RateProgram::compile(&c(1.0)),
            RateProgram::compile(&mul(p(0), s(0))),
        ]);
        assert_eq!(set.first_unhealthy(&x(), &[1.0]), None);
        assert_eq!(set.first_unhealthy(&x(), &[-2.0]), Some((1, -1.4)));
    }
}
