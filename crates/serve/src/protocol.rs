//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request. Three operations:
//!
//! ```json
//! {"op":"bound","model":"sir","method":"pontryagin","horizon":3.0}
//! {"op":"bound","source":"model m; ...","method":"hull","box":{"contact":[2,5]}}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! A `bound` request names either a registry scenario (`"model"`) or an
//! inline source (`"source"`), picks a method, and may narrow the
//! parameter box per parameter (`"box"`; axes not mentioned keep the
//! model's declared interval). Responses always carry `"ok"`; successful
//! bound responses add `"cache"` (`"hit"`/`"miss"`), a numeric
//! `"cache_hit"` twin (`1`/`0`, so `json_check --require` can gate it),
//! `"elapsed_ns"` and the full artifact:
//!
//! ```json
//! {"ok":true,"cache":"hit","cache_hit":1,"elapsed_ns":1234,"artifact":{...}}
//! {"ok":false,"error":"unknown scenario `sri`"}
//! ```

use mfu_core::artifact::{BoundArtifact, BoundMethod};
use mfu_core::json::Json;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compute (or fetch) transient bounds.
    Bound(BoundRequest),
    /// Report cache statistics.
    Stats,
    /// Stop the server after responding.
    Shutdown,
}

/// The payload of a `bound` request.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundRequest {
    /// Registry scenario name (exclusive with `source`).
    pub model: Option<String>,
    /// Inline DSL source (exclusive with `model`).
    pub source: Option<String>,
    /// Bounding method to run.
    pub method: BoundMethod,
    /// Analysis horizon; defaults to the scenario's declared horizon (or
    /// 3.0 for inline sources).
    pub horizon: Option<f64>,
    /// Per-parameter box overrides `(name, lo, hi)`, in request order.
    pub box_overrides: Vec<(String, f64, f64)>,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field; the server echoes it
    /// back inside an `{"ok":false,...}` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = mfu_core::json::parse(line)?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request field `op` missing or not a string")?;
        match op {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "bound" => {
                let text = |key: &str| -> Result<Option<String>, String> {
                    match json.get(key) {
                        None => Ok(None),
                        Some(v) => v
                            .as_str()
                            .map(|s| Some(s.to_string()))
                            .ok_or_else(|| format!("request field `{key}` is not a string")),
                    }
                };
                let model = text("model")?;
                let source = text("source")?;
                match (&model, &source) {
                    (None, None) => {
                        return Err("bound request needs `model` or `source`".to_string())
                    }
                    (Some(_), Some(_)) => {
                        return Err("bound request takes `model` or `source`, not both".to_string())
                    }
                    _ => {}
                }
                let method_name = json
                    .get("method")
                    .and_then(Json::as_str)
                    .ok_or("request field `method` missing or not a string")?;
                let method = BoundMethod::from_name(method_name)
                    .ok_or_else(|| format!("unknown bound method `{method_name}`"))?;
                let horizon = match json.get("horizon") {
                    None => None,
                    Some(v) => Some(
                        v.as_f64()
                            .ok_or("request field `horizon` is not a number")?,
                    ),
                };
                let mut box_overrides = Vec::new();
                if let Some(overrides) = json.get("box") {
                    let entries = overrides
                        .as_object()
                        .ok_or("request field `box` is not an object")?;
                    for (name, bounds) in entries {
                        let pair = bounds
                            .as_array()
                            .filter(|a| a.len() == 2)
                            .ok_or_else(|| format!("box entry `{name}` is not a [lo, hi] pair"))?;
                        let lo = pair[0]
                            .as_f64()
                            .ok_or_else(|| format!("box entry `{name}` lo is not a number"))?;
                        let hi = pair[1]
                            .as_f64()
                            .ok_or_else(|| format!("box entry `{name}` hi is not a number"))?;
                        box_overrides.push((name.clone(), lo, hi));
                    }
                }
                Ok(Request::Bound(BoundRequest {
                    model,
                    source,
                    method,
                    horizon,
                    box_overrides,
                }))
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// Renders a successful bound response line (without the trailing newline).
#[must_use]
pub fn bound_response(artifact: &BoundArtifact, cache_hit: bool, elapsed_ns: u64) -> String {
    Json::object([
        ("ok", Json::Bool(true)),
        (
            "cache",
            Json::string(if cache_hit { "hit" } else { "miss" }),
        ),
        ("cache_hit", Json::Number(if cache_hit { 1.0 } else { 0.0 })),
        ("elapsed_ns", Json::Number(elapsed_ns as f64)),
        ("artifact", artifact.to_json()),
    ])
    .render()
}

/// Renders an error response line.
#[must_use]
pub fn error_response(message: &str) -> String {
    Json::object([("ok", Json::Bool(false)), ("error", Json::string(message))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_requests_parse() {
        let req = Request::parse(
            r#"{"op":"bound","model":"sir","method":"hull","horizon":1.5,"box":{"contact":[2,5]}}"#,
        )
        .unwrap();
        match req {
            Request::Bound(bound) => {
                assert_eq!(bound.model.as_deref(), Some("sir"));
                assert_eq!(bound.source, None);
                assert_eq!(bound.method, BoundMethod::Hull);
                assert_eq!(bound.horizon, Some(1.5));
                assert_eq!(bound.box_overrides, vec![("contact".to_string(), 2.0, 5.0)]);
            }
            other => panic!("expected bound, got {other:?}"),
        }
        assert_eq!(Request::parse(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_field_names() {
        let cases = [
            ("not json", "JSON"),
            (r#"{"op":"dance"}"#, "unknown op"),
            (r#"{"op":"bound","method":"hull"}"#, "`model` or `source`"),
            (
                r#"{"op":"bound","model":"sir","source":"x","method":"hull"}"#,
                "not both",
            ),
            (r#"{"op":"bound","model":"sir"}"#, "`method`"),
            (
                r#"{"op":"bound","model":"sir","method":"simplex"}"#,
                "unknown bound method",
            ),
            (
                r#"{"op":"bound","model":"sir","method":"hull","horizon":"soon"}"#,
                "`horizon`",
            ),
            (
                r#"{"op":"bound","model":"sir","method":"hull","box":{"contact":[1]}}"#,
                "[lo, hi]",
            ),
        ];
        for (line, needle) in cases {
            let err = Request::parse(line).expect_err(line);
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "{line}: error `{err}` does not mention `{needle}`"
            );
        }
    }

    #[test]
    fn responses_carry_the_numeric_cache_hit_twin() {
        let artifact = BoundArtifact {
            model: "m".into(),
            model_hash: "00".into(),
            method: BoundMethod::Hull,
            horizon: 1.0,
            param_box: vec![],
            species: vec!["X".into()],
            lower: vec![0.0],
            upper: vec![1.0],
            truncated: false,
            cost: Default::default(),
        };
        let hit = bound_response(&artifact, true, 42);
        let parsed = mfu_core::json::parse(&hit).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(parsed.get("cache_hit").and_then(Json::as_f64), Some(1.0));
        assert_eq!(parsed.get("elapsed_ns").and_then(Json::as_f64), Some(42.0));
        assert!(parsed.get("artifact").is_some());

        let miss = bound_response(&artifact, false, 7);
        let parsed = mfu_core::json::parse(&miss).unwrap();
        assert_eq!(parsed.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(parsed.get("cache_hit").and_then(Json::as_f64), Some(0.0));

        let err = error_response("no such \"model\"");
        let parsed = mfu_core::json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("no such \"model\"")
        );
    }
}
