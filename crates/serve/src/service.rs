//! The query service: two-tier cache in front of the bounding engines.
//!
//! Tier one is a [`ModelInterner`]: sources are content-hashed after
//! validation and compiled once per hash. Tier two is a bounded
//! [`LruCache`] of [`BoundArtifact`]s keyed by the *query cell* — (model
//! hash, method, effective parameter box, horizon), every float by its
//! IEEE-754 bits. The paper's guarantee makes the second tier sound:
//! bounds hold for every query in the same (box, horizon) cell, so a
//! cached artifact answers all of them, bit-identically — a hit returns
//! the very artifact the cold computation produced.
//!
//! Engine options (hull step and grid, Pontryagin grid and tolerances,
//! run budgets) are pinned server-side in [`ServiceOptions`], *not* taken
//! from requests — otherwise they would have to join the cache key and
//! hits would become accidental. Budget-truncated results are returned to
//! the caller (marked `truncated`) but never cached: they are valid
//! prefixes, not extremal bounds.

use std::sync::Mutex;
use std::time::Instant;

use crate::cache::LruCache;
use mfu_core::artifact::{ArtifactCost, BoundArtifact, BoundMethod, ParamRange};
use mfu_core::drift::ImpreciseDrift;
use mfu_core::hull::{DifferentialHull, HullOptions};
use mfu_core::json::Json;
use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_lang::hash::ModelInterner;
use mfu_lang::scenarios::ScenarioRegistry;
use mfu_lang::CompiledModel;
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::StateVec;
use mfu_obs::{Counter, Metrics, Obs, Tracer};

use crate::protocol::{bound_response, error_response, BoundRequest, Request};
use std::sync::Arc;

/// Server-side knobs: cache capacities and pinned engine options.
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// Bound on the artifact cache (LRU past it). Zero caches nothing.
    pub artifact_cap: usize,
    /// Optional bound on the compiled-model interner.
    pub model_cap: Option<usize>,
    /// Hull integration options used for every `"method":"hull"` query.
    pub hull: HullOptions,
    /// Pontryagin sweep options used for every `"method":"pontryagin"`
    /// query.
    pub pontryagin: PontryaginOptions,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            artifact_cap: 64,
            model_cap: None,
            hull: HullOptions::default(),
            // The CLI's default sweep resolution, good to ~1e-3 on the
            // registry models while keeping cold queries interactive.
            pontryagin: PontryaginOptions {
                grid_intervals: 120,
                ..Default::default()
            },
        }
    }
}

/// A drift with its parameter box replaced (narrowed or widened) by a
/// request override. Delegates evaluation verbatim; the trait's default
/// candidate/extremal machinery then enumerates the *override* box.
struct WithBox<D> {
    inner: D,
    params: ParamSpace,
}

impl<D: ImpreciseDrift> ImpreciseDrift for WithBox<D> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn params(&self) -> &ParamSpace {
        &self.params
    }

    fn drift_into(&self, x: &StateVec, theta: &[f64], out: &mut StateVec) {
        self.inner.drift_into(x, theta, out);
    }

    fn drift_batch_into(&self, x: &SoaBatch, theta: &BatchTheta<'_>, out: &mut SoaBatch) {
        self.inner.drift_batch_into(x, theta, out);
    }

    fn theta_refinement(&self) -> usize {
        self.inner.theta_refinement()
    }
}

/// Cache key: the query cell, floats by bit pattern so lookup equality is
/// exactly the bit-identity the hot path guarantees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ArtifactKey {
    model_hash: u128,
    method: BoundMethod,
    horizon_bits: u64,
    box_bits: Vec<(u64, u64)>,
}

/// The outcome of a bound query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The artifact answering the query (shared with the cache on a hit).
    pub artifact: Arc<BoundArtifact>,
    /// `true` when the artifact came out of the cache.
    pub cache_hit: bool,
    /// Wall-clock nanoseconds this query took inside the service.
    pub elapsed_ns: u64,
}

struct ServiceState {
    interner: ModelInterner,
    artifacts: LruCache<ArtifactKey, Arc<BoundArtifact>>,
}

/// The long-running query service behind `mfu serve`.
///
/// Thread-safe: connection handlers share one service. The lock covers
/// only cache lookups and insertions — cold computations run outside it,
/// so a slow query never blocks hits on other models. Two clients racing
/// the same cold cell may both compute it; the results are bit-identical
/// (the engines are deterministic), so last-insert-wins is benign.
pub struct QueryService {
    registry: ScenarioRegistry,
    options: ServiceOptions,
    state: Mutex<ServiceState>,
    metrics: Metrics,
}

impl QueryService {
    /// A service over the built-in scenario registry.
    #[must_use]
    pub fn new(options: ServiceOptions) -> Self {
        Self::with_registry(ScenarioRegistry::with_builtins(), options)
    }

    /// A service over a caller-supplied registry.
    #[must_use]
    pub fn with_registry(registry: ScenarioRegistry, options: ServiceOptions) -> Self {
        let interner = match options.model_cap {
            Some(cap) => ModelInterner::with_capacity(cap),
            None => ModelInterner::new(),
        };
        QueryService {
            registry,
            options,
            state: Mutex::new(ServiceState {
                interner,
                artifacts: LruCache::new(options.artifact_cap),
            }),
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a metrics recorder; hits, misses and evictions land on the
    /// `Serve*` counters.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The scenario registry this service answers `"model"` queries from.
    pub fn registry(&self) -> &ScenarioRegistry {
        &self.registry
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        // A poisoned lock means another handler panicked mid-insert; the
        // caches only ever hold complete entries, so continuing is safe.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Answers a bound query, computing cold or serving from cache.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown scenarios, invalid sources, bad box
    /// overrides, or engine failures.
    pub fn bound(&self, request: &BoundRequest) -> Result<QueryOutcome, String> {
        let started = Instant::now();

        // Resolve the source and default horizon.
        let (source, display_name, default_horizon) = match (&request.model, &request.source) {
            (Some(name), None) => {
                let scenario = self
                    .registry
                    .get(name)
                    .ok_or_else(|| format!("unknown scenario `{name}`"))?;
                (
                    scenario.source().to_string(),
                    name.clone(),
                    scenario.horizon(),
                )
            }
            (None, Some(source)) => (source.clone(), String::new(), 3.0),
            _ => return Err("bound request needs exactly one of `model`/`source`".to_string()),
        };
        let horizon = request.horizon.unwrap_or(default_horizon);
        if !horizon.is_finite() || horizon <= 0.0 {
            return Err(format!(
                "horizon must be finite and positive, got {horizon}"
            ));
        }

        // Tier one: intern the model (compiles only on a miss).
        let (hash, model) = {
            let mut state = self.lock_state();
            let hits_before = state.interner.hits();
            let interned = state
                .interner
                .intern_source(&source)
                .map_err(|e| e.to_string())?;
            if state.interner.hits() > hits_before {
                self.metrics.add(Counter::ServeModelHits, 1);
            } else {
                self.metrics.add(Counter::ServeModelMisses, 1);
            }
            interned
        };
        let display_name = if display_name.is_empty() {
            model.name().to_string()
        } else {
            display_name
        };

        let params = effective_params(&model, &request.box_overrides)?;
        let key = ArtifactKey {
            model_hash: hash.0,
            method: request.method,
            horizon_bits: horizon.to_bits(),
            box_bits: params
                .intervals()
                .iter()
                .map(|iv| (iv.lo().to_bits(), iv.hi().to_bits()))
                .collect(),
        };

        // Tier two: artifact lookup.
        if let Some(artifact) = self.lock_state().artifacts.get(&key).cloned() {
            self.metrics.add(Counter::ServeArtifactHits, 1);
            return Ok(QueryOutcome {
                artifact,
                cache_hit: true,
                elapsed_ns: started.elapsed().as_nanos() as u64,
            });
        }
        self.metrics.add(Counter::ServeArtifactMisses, 1);

        // Cold: compute outside the lock.
        let artifact = Arc::new(match request.method {
            BoundMethod::Hull => {
                self.compute_hull(&model, &params, horizon, &display_name, hash)?
            }
            BoundMethod::Pontryagin => {
                self.compute_pontryagin(&model, &params, horizon, &display_name, hash)?
            }
        });
        if !artifact.truncated {
            let mut state = self.lock_state();
            let evictions_before = state.artifacts.evictions();
            state.artifacts.insert(key, Arc::clone(&artifact));
            let evicted = state.artifacts.evictions() - evictions_before;
            drop(state);
            if evicted > 0 {
                self.metrics.add(Counter::ServeArtifactEvictions, evicted);
            }
        }
        Ok(QueryOutcome {
            artifact,
            cache_hit: false,
            elapsed_ns: started.elapsed().as_nanos() as u64,
        })
    }

    fn compute_hull(
        &self,
        model: &CompiledModel,
        params: &ParamSpace,
        horizon: f64,
        display_name: &str,
        hash: mfu_lang::ModelHash,
    ) -> Result<BoundArtifact, String> {
        // A fresh recorder per computation: the snapshot then *is* the
        // cost of this query, immune to concurrent queries' counters.
        let metrics = Metrics::enabled();
        let drift = WithBox {
            inner: model.drift(),
            params: params.clone(),
        };
        let started = Instant::now();
        let bounds = DifferentialHull::new(&drift, self.options.hull)
            .with_obs(Obs {
                metrics: metrics.clone(),
                tracer: Tracer::disabled(),
            })
            .bounds(&model.initial_state(), horizon)
            .map_err(|e| e.to_string())?;
        let wall_ns = started.elapsed().as_nanos() as u64;
        let cost = cost_from(&metrics, wall_ns);
        Ok(BoundArtifact::from_hull_bounds(
            display_name,
            hash.to_string(),
            model.species().to_vec(),
            param_ranges(params),
            horizon,
            &bounds,
            cost,
        ))
    }

    fn compute_pontryagin(
        &self,
        model: &CompiledModel,
        params: &ParamSpace,
        horizon: f64,
        display_name: &str,
        hash: mfu_lang::ModelHash,
    ) -> Result<BoundArtifact, String> {
        let metrics = Metrics::enabled();
        let solver = PontryaginSolver::new(self.options.pontryagin).with_obs(Obs {
            metrics: metrics.clone(),
            tracer: Tracer::disabled(),
        });
        // Conservative models analyse in reduced coordinates, where the
        // last declared species is eliminated; bounding that species needs
        // the full-dimensional drift (the CLI's selection rule).
        let reduced_x0 = model.reduced_initial_state();
        let full_x0 = model.initial_state();
        let reduced_dim = reduced_x0.dim();
        let reduced_drift = WithBox {
            inner: model.reduced_drift(),
            params: params.clone(),
        };
        let full_drift = WithBox {
            inner: model.drift(),
            params: params.clone(),
        };
        let started = Instant::now();
        let mut lower = Vec::with_capacity(model.dim());
        let mut upper = Vec::with_capacity(model.dim());
        for coordinate in 0..model.dim() {
            let (lo, hi) = if coordinate < reduced_dim {
                solver.coordinate_extremes(&reduced_drift, &reduced_x0, horizon, coordinate)
            } else {
                solver.coordinate_extremes(&full_drift, &full_x0, horizon, coordinate)
            }
            .map_err(|e| format!("Pontryagin bound failed on `{display_name}`: {e}"))?;
            lower.push(lo);
            upper.push(hi);
        }
        let wall_ns = started.elapsed().as_nanos() as u64;
        // The sweep has no explicit truncation report; a tripped wall
        // clock is the conservative proxy (the budget ends sweeps early,
        // degrading the extremals, so such artifacts must not be cached).
        let truncated = match self.options.pontryagin.budget.wall_clock {
            Some(limit) => started.elapsed() >= limit,
            None => false,
        };
        let cost = cost_from(&metrics, wall_ns);
        Ok(BoundArtifact {
            model: display_name.to_string(),
            model_hash: hash.to_string(),
            method: BoundMethod::Pontryagin,
            horizon,
            param_box: param_ranges(params),
            species: model.species().to_vec(),
            lower,
            upper,
            truncated,
            cost,
        })
    }

    /// Cache statistics as a JSON object with numeric leaves only.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        let state = self.lock_state();
        Json::object([
            ("artifact_len", Json::Number(state.artifacts.len() as f64)),
            (
                "artifact_cap",
                Json::Number(state.artifacts.capacity() as f64),
            ),
            (
                "artifact_evictions",
                Json::Number(state.artifacts.evictions() as f64),
            ),
            ("model_len", Json::Number(state.interner.len() as f64)),
            ("model_hits", Json::Number(state.interner.hits() as f64)),
            ("model_misses", Json::Number(state.interner.misses() as f64)),
            (
                "model_evictions",
                Json::Number(state.interner.evictions() as f64),
            ),
        ])
    }

    /// Handles one request line, returning the response line (without a
    /// trailing newline) and whether the client asked for shutdown.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        match Request::parse(line) {
            Err(message) => (error_response(&message), false),
            Ok(Request::Stats) => (
                Json::object([("ok", Json::Bool(true)), ("stats", self.stats_json())]).render(),
                false,
            ),
            Ok(Request::Shutdown) => (
                Json::object([("ok", Json::Bool(true)), ("shutdown", Json::Number(1.0))]).render(),
                true,
            ),
            Ok(Request::Bound(request)) => match self.bound(&request) {
                Err(message) => (error_response(&message), false),
                Ok(outcome) => (
                    bound_response(&outcome.artifact, outcome.cache_hit, outcome.elapsed_ns),
                    false,
                ),
            },
        }
    }
}

fn cost_from(metrics: &Metrics, wall_ns: u64) -> ArtifactCost {
    match metrics.snapshot() {
        Some(snap) => ArtifactCost {
            wall_ns,
            rk4_steps: snap.counter(Counter::CoreRk4Steps),
            jacobian_evals: snap.counter(Counter::CoreJacobianEvals),
            sweeps: snap.counter(Counter::CorePontryaginSweeps),
            hull_vertex_evals: snap.counter(Counter::CoreHullVertexEvals),
        },
        None => ArtifactCost {
            wall_ns,
            ..ArtifactCost::default()
        },
    }
}

fn param_ranges(params: &ParamSpace) -> Vec<ParamRange> {
    params
        .names()
        .iter()
        .zip(params.intervals())
        .map(|(name, iv)| ParamRange {
            name: name.clone(),
            lo: iv.lo(),
            hi: iv.hi(),
        })
        .collect()
}

fn effective_params(
    model: &CompiledModel,
    overrides: &[(String, f64, f64)],
) -> Result<ParamSpace, String> {
    if overrides.is_empty() {
        return Ok(model.params().clone());
    }
    let names = model.params().names();
    let mut intervals = model.params().intervals().to_vec();
    for (name, lo, hi) in overrides {
        let index = names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| format!("unknown parameter `{name}`"))?;
        intervals[index] =
            Interval::new(*lo, *hi).map_err(|e| format!("box entry `{name}`: {e}"))?;
    }
    ParamSpace::new(names.iter().cloned().zip(intervals).collect()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BoundRequest;

    fn fast_options() -> ServiceOptions {
        ServiceOptions {
            artifact_cap: 8,
            model_cap: None,
            hull: HullOptions {
                step: 1e-2,
                time_intervals: 10,
                ..Default::default()
            },
            pontryagin: PontryaginOptions {
                grid_intervals: 40,
                ..Default::default()
            },
        }
    }

    fn sir_request(method: BoundMethod) -> BoundRequest {
        BoundRequest {
            model: Some("sir".to_string()),
            source: None,
            method,
            horizon: Some(1.0),
            box_overrides: vec![],
        }
    }

    #[test]
    fn second_query_hits_and_returns_the_same_artifact() {
        let service = QueryService::new(fast_options()).with_metrics(Metrics::enabled());
        let cold = service.bound(&sir_request(BoundMethod::Hull)).unwrap();
        assert!(!cold.cache_hit);
        let hot = service.bound(&sir_request(BoundMethod::Hull)).unwrap();
        assert!(hot.cache_hit);
        assert!(Arc::ptr_eq(&cold.artifact, &hot.artifact));
        let snap = service.metrics.snapshot().unwrap();
        assert_eq!(snap.counter(Counter::ServeArtifactHits), 1);
        assert_eq!(snap.counter(Counter::ServeArtifactMisses), 1);
        assert_eq!(snap.counter(Counter::ServeModelMisses), 1);
        assert_eq!(snap.counter(Counter::ServeModelHits), 1);
    }

    #[test]
    fn methods_and_horizons_occupy_distinct_cells() {
        let service = QueryService::new(fast_options());
        let hull = service.bound(&sir_request(BoundMethod::Hull)).unwrap();
        let pont = service
            .bound(&sir_request(BoundMethod::Pontryagin))
            .unwrap();
        assert!(!pont.cache_hit, "method is part of the key");
        assert_ne!(hull.artifact.method, pont.artifact.method);
        let mut shorter = sir_request(BoundMethod::Hull);
        shorter.horizon = Some(0.5);
        assert!(
            !service.bound(&shorter).unwrap().cache_hit,
            "horizon is part of the key"
        );
    }

    #[test]
    fn box_overrides_narrow_the_cell_and_the_box() {
        let service = QueryService::new(fast_options());
        let mut narrowed = sir_request(BoundMethod::Hull);
        narrowed.box_overrides = vec![("contact".to_string(), 2.0, 4.0)];
        let cold = service.bound(&narrowed).unwrap();
        assert!(!cold.cache_hit);
        assert_eq!(cold.artifact.param_box[0].lo, 2.0);
        assert_eq!(cold.artifact.param_box[0].hi, 4.0);
        // Same override spelled by a fresh request: same cell.
        assert!(service.bound(&narrowed).unwrap().cache_hit);
        // The declared box is a different cell.
        assert!(
            !service
                .bound(&sir_request(BoundMethod::Hull))
                .unwrap()
                .cache_hit
        );

        let mut unknown = sir_request(BoundMethod::Hull);
        unknown.box_overrides = vec![("contcat".to_string(), 2.0, 4.0)];
        assert!(service.bound(&unknown).unwrap_err().contains("contcat"));
    }

    #[test]
    fn interning_dedupes_the_rescaled_twin() {
        // `sir_1e6` differs from `sir` only in the model header, which the
        // content hash ignores: same compiled model, same artifact cell.
        let service = QueryService::new(fast_options());
        let cold = service.bound(&sir_request(BoundMethod::Hull)).unwrap();
        let mut twin = sir_request(BoundMethod::Hull);
        twin.model = Some("sir_1e6".to_string());
        let hot = service.bound(&twin).unwrap();
        assert!(hot.cache_hit);
        assert!(Arc::ptr_eq(&cold.artifact, &hot.artifact));
    }

    #[test]
    fn inline_sources_and_registry_models_share_cells() {
        let service = QueryService::new(fast_options());
        let registry = ScenarioRegistry::with_builtins();
        let source = registry.get("sis").unwrap().source().to_string();
        let inline = BoundRequest {
            model: None,
            source: Some(source),
            method: BoundMethod::Hull,
            horizon: Some(1.0),
            box_overrides: vec![],
        };
        assert!(!service.bound(&inline).unwrap().cache_hit);
        let mut named = sir_request(BoundMethod::Hull);
        named.model = Some("sis".to_string());
        assert!(
            service.bound(&named).unwrap().cache_hit,
            "inline source and registry name hash to the same cell"
        );
    }

    #[test]
    fn lru_eviction_at_the_service_level_is_deterministic() {
        let mut options = fast_options();
        options.artifact_cap = 2;
        let service = QueryService::new(options).with_metrics(Metrics::enabled());
        let request = |name: &str| BoundRequest {
            model: Some(name.to_string()),
            source: None,
            method: BoundMethod::Hull,
            horizon: Some(0.5),
            box_overrides: vec![],
        };
        assert!(!service.bound(&request("sir")).unwrap().cache_hit);
        assert!(!service.bound(&request("sis")).unwrap().cache_hit);
        assert!(!service.bound(&request("seir")).unwrap().cache_hit); // evicts sir
        assert!(service.bound(&request("seir")).unwrap().cache_hit);
        assert!(service.bound(&request("sis")).unwrap().cache_hit);
        assert!(
            !service.bound(&request("sir")).unwrap().cache_hit,
            "oldest entry must have been evicted"
        );
        let snap = service.metrics.snapshot().unwrap();
        assert_eq!(snap.counter(Counter::ServeArtifactEvictions), 2);
    }

    #[test]
    fn bad_requests_surface_messages_not_panics() {
        let service = QueryService::new(fast_options());
        let mut unknown = sir_request(BoundMethod::Hull);
        unknown.model = Some("sri".to_string());
        assert!(service.bound(&unknown).unwrap_err().contains("sri"));

        let mut bad_horizon = sir_request(BoundMethod::Hull);
        bad_horizon.horizon = Some(-1.0);
        assert!(service.bound(&bad_horizon).unwrap_err().contains("horizon"));

        let inline = BoundRequest {
            model: None,
            source: Some("model broken;".to_string()),
            method: BoundMethod::Hull,
            horizon: None,
            box_overrides: vec![],
        };
        assert!(service.bound(&inline).is_err());
    }

    #[test]
    fn handle_line_speaks_the_protocol() {
        let service = QueryService::new(fast_options());
        let (response, stop) =
            service.handle_line(r#"{"op":"bound","model":"sir","method":"hull","horizon":1.0}"#);
        assert!(!stop);
        let parsed = mfu_core::json::parse(&response).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("cache").and_then(Json::as_str), Some("miss"));

        let (response, _) = service.handle_line(r#"{"op":"stats"}"#);
        let parsed = mfu_core::json::parse(&response).unwrap();
        assert_eq!(
            parsed
                .get("stats")
                .and_then(|s| s.get("artifact_len"))
                .and_then(Json::as_f64),
            Some(1.0)
        );

        let (response, stop) = service.handle_line(r#"{"op":"shutdown"}"#);
        assert!(stop);
        assert!(response.contains("\"ok\":true"));

        let (response, stop) = service.handle_line("garbage");
        assert!(!stop);
        assert!(response.contains("\"ok\":false"));
    }
}
