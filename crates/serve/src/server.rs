//! The TCP front-end: line-delimited JSON over a plain socket.
//!
//! `nc`-friendly by construction — one request per line, one response
//! line back — because the vendored HTTP-adjacent dependencies are stubs
//! and a framing protocol this small needs none of them. Each accepted
//! connection gets a thread; handlers share the [`QueryService`] (whose
//! lock covers only cache bookkeeping, so concurrent cold queries
//! overlap). A `shutdown` request flips an atomic flag and the handler
//! then pokes the listener with a loopback connect so the blocking
//! `accept` wakes up and observes the flag.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::service::QueryService;

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<QueryService>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7464"`, port `0` for ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, service: QueryService) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared query service (for in-process inspection in tests).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Accepts and serves connections until a client sends `shutdown`.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (per-connection I/O errors only end
    /// that connection).
    pub fn run(&self) -> std::io::Result<()> {
        let local = self.local_addr()?;
        std::thread::scope(|scope| {
            for connection in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = connection?;
                let service = Arc::clone(&self.service);
                let shutdown = Arc::clone(&self.shutdown);
                scope.spawn(move || handle_connection(stream, &service, &shutdown, local));
            }
            Ok(())
        })
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &QueryService,
    shutdown: &AtomicBool,
    local: SocketAddr,
) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = service.handle_line(&line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the blocking accept so `run` observes the flag.
            let _ = TcpStream::connect(local);
            break;
        }
    }
}

/// One-shot client: sends `line` to `addr` and returns the response line.
///
/// # Errors
///
/// Propagates connection and I/O failures; an empty response (server
/// closed early) is reported as [`std::io::ErrorKind::UnexpectedEof`].
pub fn query_line(addr: &str, line: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let read = reader.read_line(&mut response)?;
    if read == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        ));
    }
    while response.ends_with('\n') || response.ends_with('\r') {
        response.pop();
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceOptions;
    use mfu_core::hull::HullOptions;
    use mfu_core::json::{parse, Json};

    fn test_server() -> (std::thread::JoinHandle<std::io::Result<()>>, String) {
        let options = ServiceOptions {
            artifact_cap: 8,
            hull: HullOptions {
                step: 1e-2,
                time_intervals: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        let server = Server::bind("127.0.0.1:0", QueryService::new(options)).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());
        (handle, addr)
    }

    #[test]
    fn round_trip_over_tcp_hits_on_the_second_query() {
        let (handle, addr) = test_server();
        let request = r#"{"op":"bound","model":"sir","method":"hull","horizon":0.5}"#;
        let first = parse(&query_line(&addr, request).unwrap()).unwrap();
        assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
        let second = parse(&query_line(&addr, request).unwrap()).unwrap();
        assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(second.get("cache_hit").and_then(Json::as_f64), Some(1.0));

        let stats = parse(&query_line(&addr, r#"{"op":"stats"}"#).unwrap()).unwrap();
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("artifact_len"))
                .and_then(Json::as_f64),
            Some(1.0)
        );

        let bye = parse(&query_line(&addr, r#"{"op":"shutdown"}"#).unwrap()).unwrap();
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn errors_come_back_as_json_lines() {
        let (handle, addr) = test_server();
        let response =
            query_line(&addr, r#"{"op":"bound","model":"sri","method":"hull"}"#).unwrap();
        let parsed = parse(&response).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert!(parsed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("sri"));
        query_line(&addr, r#"{"op":"shutdown"}"#).unwrap();
        handle.join().unwrap().unwrap();
    }
}
