//! Long-running query service for imprecise mean-field bounds.
//!
//! The paper's value proposition is cheap, *reusable* guarantees: a bound
//! computed once for a (parameter box, horizon) cell answers every later
//! query in that cell. This crate turns that observation into a server:
//!
//! * [`cache`] — a deterministic bounded LRU map (stamp-ordered, no wall
//!   clocks) used by the artifact tier;
//! * [`protocol`] — line-delimited JSON requests/responses (`bound`,
//!   `stats`, `shutdown`) over the hand-rolled [`mfu_core::json`] layer;
//! * [`service`] — the [`service::QueryService`]: a two-tier cache in
//!   front of the hull and Pontryagin engines. Tier one interns compiled
//!   models by canonical content hash ([`mfu_lang::hash`]); tier two maps
//!   (model hash, method, box, horizon) — floats by bit pattern — to the
//!   exact [`mfu_core::artifact::BoundArtifact`] the cold computation
//!   produced, so hits are bit-identical to cold answers by construction;
//! * [`server`] — a plain-TCP front-end (`mfu serve`) with a one-shot
//!   client helper (`mfu query`): thread per connection, clean shutdown
//!   via a protocol request.
//!
//! ```no_run
//! use mfu_serve::server::{query_line, Server};
//! use mfu_serve::service::{QueryService, ServiceOptions};
//!
//! let server = Server::bind("127.0.0.1:0", QueryService::new(ServiceOptions::default()))?;
//! let addr = server.local_addr()?.to_string();
//! std::thread::spawn(move || server.run());
//! let response = query_line(&addr, r#"{"op":"bound","model":"sir","method":"hull"}"#)?;
//! assert!(response.contains("\"ok\":true"));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::LruCache;
pub use protocol::{BoundRequest, Request};
pub use server::{query_line, Server};
pub use service::{QueryOutcome, QueryService, ServiceOptions};
