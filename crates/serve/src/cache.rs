//! A deterministic least-recently-used cache with bounded capacity.
//!
//! Recency is tracked with stamps drawn from a monotone counter, not wall
//! clocks: every lookup hit and every insertion takes a fresh stamp, and
//! eviction removes the entry with the smallest stamp. Stamps are unique,
//! so ties cannot occur and eviction order is a pure function of the
//! operation sequence — the property the serve-layer determinism tests
//! pin down.

use std::collections::HashMap;
use std::hash::Hash;

/// Bounded map with LRU eviction.
///
/// ```
/// use mfu_serve::cache::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.insert("sir", 1);
/// cache.insert("sis", 2);
/// cache.get(&"sir"); // refresh: "sir" is now the most recently used
/// cache.insert("seir", 3); // evicts "sis", the least recently used
/// assert!(cache.contains(&"sir") && !cache.contains(&"sis"));
/// assert_eq!(cache.evictions(), 1);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    entries: HashMap<K, (V, u64)>,
    capacity: usize,
    stamp: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. Capacity zero caches
    /// nothing (every insert is dropped immediately).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            entries: HashMap::new(),
            capacity,
            stamp: 0,
            evictions: 0,
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far to stay within the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Looks `key` up, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let stamp = self.touch();
        let (value, last_used) = self.entries.get_mut(key)?;
        *last_used = stamp;
        Some(&*value)
    }

    /// `true` when `key` is present, *without* refreshing its recency.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts `key → value` as most recently used, evicting the least
    /// recently used entries while over capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.touch();
        self.entries.insert(key, (value, stamp));
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    self.entries.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_refresh_recency() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // "b" is now LRU
        cache.insert("c", 3);
        assert!(cache.contains(&"a"));
        assert!(!cache.contains(&"b"));
        assert!(cache.contains(&"c"));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn eviction_order_is_deterministic() {
        // The same operation sequence must always leave the same survivor
        // set, run after run (HashMap iteration order must not leak in).
        let run = || {
            let mut cache = LruCache::new(3);
            for k in 0..6u32 {
                cache.insert(k, k);
                if k % 2 == 0 {
                    cache.get(&0);
                }
            }
            let mut held: Vec<u32> = (0..6).filter(|k| cache.contains(k)).collect();
            held.sort_unstable();
            (held, cache.evictions())
        };
        let first = run();
        for _ in 0..20 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = LruCache::new(0);
        cache.insert("a", 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn contains_does_not_refresh() {
        let mut cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert!(cache.contains(&"a")); // peek, not a touch
        cache.insert("c", 3);
        assert!(!cache.contains(&"a"), "peeked entry must still be LRU");
    }
}
