use crate::{NumError, Result, StateVec};

use super::{Integrator, OdeSystem, Rk4};

/// Options controlling [`equilibrium`] search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquilibriumOptions {
    /// Length of each integration burst between convergence checks.
    pub burst: f64,
    /// Integration step used inside each burst.
    pub step: f64,
    /// Convergence threshold on the sup norm of the vector field.
    pub drift_tolerance: f64,
    /// Maximum total integration time before giving up.
    pub max_time: f64,
}

impl Default for EquilibriumOptions {
    fn default() -> Self {
        EquilibriumOptions {
            burst: 5.0,
            step: 1e-2,
            drift_tolerance: 1e-9,
            max_time: 10_000.0,
        }
    }
}

/// Integrates an autonomous system until it settles at an equilibrium.
///
/// The system is integrated in bursts of [`EquilibriumOptions::burst`] time
/// units; after each burst the vector field at the current state is
/// evaluated, and the search stops once its sup norm drops below
/// [`EquilibriumOptions::drift_tolerance`].
///
/// This is how per-parameter fixed points of the uncertain mean field are
/// computed (they seed the Birkhoff-centre construction of Section V-C of the
/// paper). The function assumes the trajectory converges to a stable fixed
/// point; limit cycles or divergence surface as a
/// [`NumError::NoConvergence`] error when `max_time` is exhausted.
///
/// # Errors
///
/// Returns an error if integration fails or the drift has not fallen below
/// the tolerance after `max_time` time units.
///
/// # Example
///
/// ```
/// use mfu_num::ode::{equilibrium, EquilibriumOptions, FnSystem};
/// use mfu_num::StateVec;
///
/// // logistic growth settles at x = 1
/// let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = x[0] * (1.0 - x[0]));
/// let fp = equilibrium(&sys, StateVec::from(vec![0.2]), &EquilibriumOptions::default())?;
/// assert!((fp[0] - 1.0).abs() < 1e-6);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
pub fn equilibrium(
    system: &dyn OdeSystem,
    x0: StateVec,
    options: &EquilibriumOptions,
) -> Result<StateVec> {
    if options.burst <= 0.0 || options.step <= 0.0 || options.drift_tolerance <= 0.0 {
        return Err(NumError::invalid_argument(
            "equilibrium options must have positive burst, step and tolerance",
        ));
    }
    let solver = Rk4::with_step(options.step);
    let mut x = x0;
    let mut elapsed = 0.0;
    let mut drift = StateVec::zeros(system.dim());
    loop {
        system.rhs(0.0, &x, &mut drift);
        if drift.norm_inf() < options.drift_tolerance {
            return Ok(x);
        }
        if elapsed >= options.max_time {
            return Err(NumError::NoConvergence {
                method: "equilibrium",
                iterations: (elapsed / options.burst) as usize,
                residual: drift.norm_inf(),
            });
        }
        x = solver.final_state(system, 0.0, x, options.burst)?;
        elapsed += options.burst;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::FnSystem;

    #[test]
    fn finds_logistic_fixed_point() {
        let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| {
            dx[0] = x[0] * (1.0 - x[0])
        });
        let fp = equilibrium(&sys, StateVec::from([0.1]), &EquilibriumOptions::default()).unwrap();
        assert!((fp[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn finds_linear_system_origin() {
        let sys = FnSystem::new(2, |_t, x: &StateVec, dx: &mut StateVec| {
            dx[0] = -x[0] + 0.5 * x[1];
            dx[1] = -2.0 * x[1];
        });
        let fp = equilibrium(
            &sys,
            StateVec::from([3.0, -2.0]),
            &EquilibriumOptions::default(),
        )
        .unwrap();
        assert!(fp.norm_inf() < 1e-6);
    }

    #[test]
    fn reports_non_convergence_for_rotation() {
        // Pure rotation never settles: the drift magnitude stays at 1.
        let sys = FnSystem::new(2, |_t, x: &StateVec, dx: &mut StateVec| {
            dx[0] = x[1];
            dx[1] = -x[0];
        });
        let options = EquilibriumOptions {
            max_time: 20.0,
            ..EquilibriumOptions::default()
        };
        let res = equilibrium(&sys, StateVec::from([1.0, 0.0]), &options);
        assert!(matches!(res, Err(NumError::NoConvergence { .. })));
    }

    #[test]
    fn rejects_invalid_options() {
        let sys = FnSystem::new(1, |_t, _x: &StateVec, dx: &mut StateVec| dx[0] = 0.0);
        let options = EquilibriumOptions {
            burst: -1.0,
            ..EquilibriumOptions::default()
        };
        assert!(equilibrium(&sys, StateVec::from([0.0]), &options).is_err());
    }

    #[test]
    fn starting_at_the_fixed_point_returns_immediately() {
        let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = -x[0]);
        let fp = equilibrium(&sys, StateVec::from([0.0]), &EquilibriumOptions::default()).unwrap();
        assert_eq!(fp[0], 0.0);
    }
}
