//! Explicit ODE integrators and dense trajectory output.
//!
//! The mean-field limits of population processes are ordinary differential
//! equations (for the uncertain case) or selections of differential
//! inclusions driven by a parameter signal (for the imprecise case). This
//! module provides the integrators used throughout the workspace:
//!
//! * [`Euler`] — explicit Euler with a fixed step, mainly for testing and as
//!   a baseline;
//! * [`Rk4`] — the classic fourth-order Runge–Kutta scheme with a fixed step;
//! * [`Dopri45`] — the adaptive Dormand–Prince 4(5) embedded pair with PI
//!   step-size control, the default solver for all analyses;
//! * [`Trajectory`] — dense output with linear interpolation between accepted
//!   steps;
//! * [`equilibrium`] — integration until the vector field becomes negligibly
//!   small, used to find fixed points of the uncertain mean field.
//!
//! All integrators implement the [`Integrator`] trait so that higher layers
//! can be written against the abstraction and tested with a cheap solver.

mod dopri;
mod euler;
mod rk4;
mod steady;
mod trajectory;

pub use dopri::Dopri45;
pub use euler::Euler;
pub use rk4::Rk4;
pub use steady::{equilibrium, EquilibriumOptions};
pub use trajectory::Trajectory;

use crate::{Result, StateVec};

/// A (possibly time-dependent) vector field `ẋ = f(t, x)`.
///
/// Implementors only need to provide the dimension and the right-hand side;
/// the integrators take care of the rest. The right-hand side writes its
/// result into `dx` to avoid allocating on every evaluation.
///
/// # Example
///
/// ```
/// use mfu_num::ode::OdeSystem;
/// use mfu_num::StateVec;
///
/// /// Harmonic oscillator `ẍ = -x` as a first-order system.
/// struct Oscillator;
///
/// impl OdeSystem for Oscillator {
///     fn dim(&self) -> usize { 2 }
///     fn rhs(&self, _t: f64, x: &StateVec, dx: &mut StateVec) {
///         dx[0] = x[1];
///         dx[1] = -x[0];
///     }
/// }
/// ```
pub trait OdeSystem {
    /// Dimension of the state space.
    fn dim(&self) -> usize;

    /// Evaluates the vector field at time `t` and state `x`, writing into `dx`.
    fn rhs(&self, t: f64, x: &StateVec, dx: &mut StateVec);

    /// Evaluates the vector field and returns a freshly allocated vector.
    ///
    /// This is a convenience for call sites where allocation is not a
    /// concern; hot loops should use [`OdeSystem::rhs`] directly.
    fn rhs_owned(&self, t: f64, x: &StateVec) -> StateVec {
        let mut dx = StateVec::zeros(self.dim());
        self.rhs(t, x, &mut dx);
        dx
    }
}

/// Adapter turning a closure `f(t, x, dx)` into an [`OdeSystem`].
///
/// # Example
///
/// ```
/// use mfu_num::ode::{FnSystem, Integrator, Rk4};
/// use mfu_num::StateVec;
///
/// let decay = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = -x[0]);
/// let traj = Rk4::with_step(1e-3).integrate(&decay, 0.0, StateVec::from(vec![1.0]), 1.0)?;
/// assert!((traj.last_state()[0] - (-1.0f64).exp()).abs() < 1e-6);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F> FnSystem<F>
where
    F: Fn(f64, &StateVec, &mut StateVec),
{
    /// Creates a new closure-backed system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F> OdeSystem for FnSystem<F>
where
    F: Fn(f64, &StateVec, &mut StateVec),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, x: &StateVec, dx: &mut StateVec) {
        (self.f)(t, x, dx);
    }
}

impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn rhs(&self, t: f64, x: &StateVec, dx: &mut StateVec) {
        (**self).rhs(t, x, dx)
    }
}

/// A numerical scheme that integrates an [`OdeSystem`] over a time interval.
///
/// Integration always proceeds forward in time (`t_end >= t0`); callers that
/// need a backward pass (for example the costate equation in the Pontryagin
/// sweep) should reparametrise time as `s = T - t`.
pub trait Integrator {
    /// Integrates `system` from `(t0, x0)` to `t_end`, returning the dense trajectory.
    ///
    /// # Errors
    ///
    /// Returns an error if the inputs are inconsistent (e.g. `t_end < t0`,
    /// dimension mismatch), if a non-finite value is produced, or — for
    /// adaptive schemes — if the step size underflows.
    fn integrate(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        x0: StateVec,
        t_end: f64,
    ) -> Result<Trajectory>;

    /// Integrates and returns only the final state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Integrator::integrate`].
    fn final_state(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        x0: StateVec,
        t_end: f64,
    ) -> Result<StateVec> {
        Ok(self.integrate(system, t0, x0, t_end)?.last_state().clone())
    }
}

pub(crate) fn check_inputs(
    system: &dyn OdeSystem,
    t0: f64,
    x0: &StateVec,
    t_end: f64,
) -> Result<()> {
    if x0.dim() != system.dim() {
        return Err(crate::NumError::DimensionMismatch {
            expected: system.dim(),
            found: x0.dim(),
        });
    }
    if !t0.is_finite() || !t_end.is_finite() {
        return Err(crate::NumError::invalid_argument(
            "integration bounds must be finite",
        ));
    }
    if t_end < t0 {
        return Err(crate::NumError::invalid_argument(format!(
            "t_end ({t_end}) must not precede t0 ({t0})"
        )));
    }
    if !x0.is_finite() {
        return Err(crate::NumError::non_finite("initial condition"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_system_evaluates_closure() {
        let sys = FnSystem::new(2, |_t, x: &StateVec, dx: &mut StateVec| {
            dx[0] = x[1];
            dx[1] = -x[0];
        });
        assert_eq!(sys.dim(), 2);
        let dx = sys.rhs_owned(0.0, &StateVec::from([1.0, 0.0]));
        assert_eq!(dx.as_slice(), &[0.0, -1.0]);
    }

    #[test]
    fn reference_impl_delegates() {
        let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = 2.0 * x[0]);
        let r = &sys;
        assert_eq!(OdeSystem::dim(&r), 1);
        assert_eq!(r.rhs_owned(0.0, &StateVec::from([3.0]))[0], 6.0);
    }

    #[test]
    fn check_inputs_rejects_bad_bounds() {
        let sys = FnSystem::new(1, |_t, _x: &StateVec, dx: &mut StateVec| dx[0] = 0.0);
        let x0 = StateVec::from([0.0]);
        assert!(check_inputs(&sys, 0.0, &x0, -1.0).is_err());
        assert!(check_inputs(&sys, 0.0, &x0, f64::NAN).is_err());
        assert!(check_inputs(&sys, 0.0, &StateVec::from([0.0, 0.0]), 1.0).is_err());
        assert!(check_inputs(&sys, 0.0, &StateVec::from([f64::INFINITY]), 1.0).is_err());
        assert!(check_inputs(&sys, 0.0, &x0, 1.0).is_ok());
    }
}
