use serde::{Deserialize, Serialize};

use crate::{NumError, Result, StateVec};

/// Dense output of an ODE integration: a time grid and the state at each node.
///
/// Trajectories support linear interpolation between stored nodes (accurate
/// enough for plotting and for the fixed-grid resampling used by the
/// Pontryagin sweep) and resampling onto uniform grids.
///
/// # Example
///
/// ```
/// use mfu_num::ode::Trajectory;
/// use mfu_num::StateVec;
///
/// let mut traj = Trajectory::new(2);
/// traj.push(0.0, StateVec::from(vec![0.0, 1.0]))?;
/// traj.push(1.0, StateVec::from(vec![1.0, 0.0]))?;
/// let mid = traj.at(0.5)?;
/// assert_eq!(mid.as_slice(), &[0.5, 0.5]);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    dim: usize,
    times: Vec<f64>,
    states: Vec<StateVec>,
}

impl Trajectory {
    /// Creates an empty trajectory for states of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Trajectory {
            dim,
            times: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Creates an empty trajectory with capacity for `capacity` nodes.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        Trajectory {
            dim,
            times: Vec::with_capacity(capacity),
            states: Vec::with_capacity(capacity),
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nodes.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when no node has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The stored time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The stored states, aligned with [`Trajectory::times`].
    pub fn states(&self) -> &[StateVec] {
        &self.states
    }

    /// Appends a node `(t, x)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` has the wrong dimension or `t` is not strictly
    /// larger than the last stored time (the grid must be increasing).
    pub fn push(&mut self, t: f64, x: StateVec) -> Result<()> {
        if x.dim() != self.dim {
            return Err(NumError::DimensionMismatch {
                expected: self.dim,
                found: x.dim(),
            });
        }
        if let Some(&last) = self.times.last() {
            if t <= last {
                return Err(NumError::invalid_argument(format!(
                    "trajectory times must be strictly increasing ({t} after {last})"
                )));
            }
        }
        self.times.push(t);
        self.states.push(x);
        Ok(())
    }

    /// First stored time.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn first_time(&self) -> f64 {
        *self.times.first().expect("empty trajectory")
    }

    /// Last stored time.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("empty trajectory")
    }

    /// Last stored state.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_state(&self) -> &StateVec {
        self.states.last().expect("empty trajectory")
    }

    /// Iterates over `(time, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &StateVec)> {
        self.times.iter().copied().zip(self.states.iter())
    }

    /// Linear interpolation of the state at time `t`.
    ///
    /// Times outside the stored range are clamped to the first / last node,
    /// which is the behaviour expected when sampling a steady-state tail.
    ///
    /// # Errors
    ///
    /// Returns an error if the trajectory is empty or `t` is not finite.
    pub fn at(&self, t: f64) -> Result<StateVec> {
        if self.is_empty() {
            return Err(NumError::invalid_argument(
                "cannot interpolate an empty trajectory",
            ));
        }
        if !t.is_finite() {
            return Err(NumError::invalid_argument(
                "interpolation time must be finite",
            ));
        }
        if t <= self.first_time() {
            return Ok(self.states[0].clone());
        }
        if t >= self.last_time() {
            return Ok(self.last_state().clone());
        }
        // binary search for the bracketing interval
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).unwrap())
        {
            Ok(i) => return Ok(self.states[i].clone()),
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let w = (t - t0) / (t1 - t0);
        let mut out = self.states[idx - 1].clone();
        out *= 1.0 - w;
        out.add_scaled(w, &self.states[idx]);
        Ok(out)
    }

    /// Extracts the scalar time series of coordinate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    pub fn coordinate(&self, i: usize) -> Vec<f64> {
        assert!(i < self.dim, "coordinate index out of range");
        self.states.iter().map(|x| x[i]).collect()
    }

    /// Resamples the trajectory on `n + 1` uniformly spaced times spanning the
    /// stored range.
    ///
    /// # Errors
    ///
    /// Returns an error if the trajectory is empty or `n == 0`.
    pub fn resample(&self, n: usize) -> Result<Trajectory> {
        if self.is_empty() {
            return Err(NumError::invalid_argument(
                "cannot resample an empty trajectory",
            ));
        }
        if n == 0 {
            return Err(NumError::invalid_argument(
                "resample requires at least one interval",
            ));
        }
        let (t0, t1) = (self.first_time(), self.last_time());
        let mut out = Trajectory::with_capacity(self.dim, n + 1);
        for k in 0..=n {
            let t = t0 + (t1 - t0) * (k as f64) / (n as f64);
            // Guard against duplicate times when t0 == t1.
            let t = if k == n { t1 } else { t };
            let x = self.at(t)?;
            if out.times.last().is_none_or(|&last| t > last) {
                out.times.push(t);
                out.states.push(x);
            }
        }
        Ok(out)
    }

    /// Maximum over stored nodes of coordinate `i`.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty or `i >= dim`.
    pub fn max_coordinate(&self, i: usize) -> f64 {
        assert!(!self.is_empty(), "empty trajectory");
        self.coordinate(i)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum over stored nodes of coordinate `i`.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty or `i >= dim`.
    pub fn min_coordinate(&self, i: usize) -> f64 {
        assert!(!self.is_empty(), "empty trajectory");
        self.coordinate(i).into_iter().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line() -> Trajectory {
        let mut traj = Trajectory::new(2);
        traj.push(0.0, StateVec::from([0.0, 2.0])).unwrap();
        traj.push(1.0, StateVec::from([1.0, 1.0])).unwrap();
        traj.push(2.0, StateVec::from([2.0, 0.0])).unwrap();
        traj
    }

    #[test]
    fn push_enforces_monotone_times_and_dimension() {
        let mut traj = Trajectory::new(1);
        traj.push(0.0, StateVec::from([1.0])).unwrap();
        assert!(traj.push(0.0, StateVec::from([1.0])).is_err());
        assert!(traj.push(-1.0, StateVec::from([1.0])).is_err());
        assert!(traj.push(1.0, StateVec::from([1.0, 2.0])).is_err());
        assert!(traj.push(1.0, StateVec::from([2.0])).is_ok());
    }

    #[test]
    fn interpolation_is_linear() {
        let traj = straight_line();
        let x = traj.at(0.25).unwrap();
        assert!((x[0] - 0.25).abs() < 1e-12);
        assert!((x[1] - 1.75).abs() < 1e-12);
    }

    #[test]
    fn interpolation_clamps_outside_range() {
        let traj = straight_line();
        assert_eq!(traj.at(-5.0).unwrap().as_slice(), &[0.0, 2.0]);
        assert_eq!(traj.at(5.0).unwrap().as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn interpolation_at_node_returns_node() {
        let traj = straight_line();
        assert_eq!(traj.at(1.0).unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn empty_trajectory_interpolation_fails() {
        let traj = Trajectory::new(1);
        assert!(traj.at(0.0).is_err());
        assert!(traj.resample(4).is_err());
    }

    #[test]
    fn resample_produces_uniform_grid() {
        let traj = straight_line();
        let dense = traj.resample(4).unwrap();
        assert_eq!(dense.len(), 5);
        assert!((dense.times()[1] - 0.5).abs() < 1e-12);
        assert!((dense.states()[1][0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coordinate_extrema() {
        let traj = straight_line();
        assert_eq!(traj.max_coordinate(0), 2.0);
        assert_eq!(traj.min_coordinate(1), 0.0);
        assert_eq!(traj.coordinate(1), vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn iter_yields_pairs() {
        let traj = straight_line();
        let collected: Vec<f64> = traj.iter().map(|(t, _)| t).collect();
        assert_eq!(collected, vec![0.0, 1.0, 2.0]);
    }
}
