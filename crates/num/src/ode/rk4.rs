use crate::{NumError, Result, StateVec};

use super::{check_inputs, Integrator, OdeSystem, Trajectory};

/// Classic fourth-order Runge–Kutta integrator with a fixed step size.
///
/// Fourth-order accurate and allocation-free in the inner loop. This is the
/// solver of choice for the forward/backward passes of the Pontryagin sweep,
/// where a fixed time grid shared by the state and the costate is required.
///
/// # Example
///
/// ```
/// use mfu_num::ode::{FnSystem, Integrator, Rk4};
/// use mfu_num::StateVec;
///
/// let decay = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = -x[0]);
/// let end = Rk4::with_step(1e-2).final_state(&decay, 0.0, StateVec::from(vec![1.0]), 1.0)?;
/// assert!((end[0] - (-1.0f64).exp()).abs() < 1e-8);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4 {
    step: f64,
}

impl Rk4 {
    /// Creates an RK4 integrator with the given step size.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn with_step(step: f64) -> Self {
        assert!(
            step > 0.0 && step.is_finite(),
            "RK4 step must be positive and finite"
        );
        Rk4 { step }
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Performs a single RK4 step of size `h` from `(t, x)`, writing into `x`.
    ///
    /// Exposed for callers that manage their own time grid (e.g. the
    /// forward–backward Pontryagin sweep).
    pub fn step_in_place(system: &dyn OdeSystem, t: f64, x: &mut StateVec, h: f64) {
        let dim = x.dim();
        let mut k1 = StateVec::zeros(dim);
        let mut k2 = StateVec::zeros(dim);
        let mut k3 = StateVec::zeros(dim);
        let mut k4 = StateVec::zeros(dim);
        let mut tmp = StateVec::zeros(dim);

        system.rhs(t, x, &mut k1);

        tmp.copy_from(x);
        tmp.add_scaled(0.5 * h, &k1);
        system.rhs(t + 0.5 * h, &tmp, &mut k2);

        tmp.copy_from(x);
        tmp.add_scaled(0.5 * h, &k2);
        system.rhs(t + 0.5 * h, &tmp, &mut k3);

        tmp.copy_from(x);
        tmp.add_scaled(h, &k3);
        system.rhs(t + h, &tmp, &mut k4);

        x.add_scaled(h / 6.0, &k1);
        x.add_scaled(h / 3.0, &k2);
        x.add_scaled(h / 3.0, &k3);
        x.add_scaled(h / 6.0, &k4);
    }
}

impl Default for Rk4 {
    fn default() -> Self {
        Rk4::with_step(1e-3)
    }
}

impl Integrator for Rk4 {
    fn integrate(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        x0: StateVec,
        t_end: f64,
    ) -> Result<Trajectory> {
        check_inputs(system, t0, &x0, t_end)?;
        let dim = system.dim();
        let span = t_end - t0;
        let n_steps = (span / self.step).ceil().max(1.0) as usize;
        let h = span / n_steps as f64;

        let mut traj = Trajectory::with_capacity(dim, n_steps + 1);
        let mut x = x0;
        traj.push(t0, x.clone())?;
        if span == 0.0 {
            return Ok(traj);
        }
        for k in 0..n_steps {
            let t = t0 + h * k as f64;
            Rk4::step_in_place(system, t, &mut x, h);
            if !x.is_finite() {
                return Err(NumError::non_finite(format!("RK4 step at t = {t}")));
            }
            let t_next = if k + 1 == n_steps {
                t_end
            } else {
                t0 + h * (k + 1) as f64
            };
            traj.push(t_next, x.clone())?;
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::FnSystem;

    #[test]
    fn fourth_order_accuracy_on_exponential() {
        let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = -x[0]);
        let exact = (-1.0f64).exp();
        let end = Rk4::with_step(1e-2)
            .final_state(&sys, 0.0, StateVec::from([1.0]), 1.0)
            .unwrap();
        assert!((end[0] - exact).abs() < 1e-9);
    }

    #[test]
    fn order_of_convergence_is_about_four() {
        let sys = FnSystem::new(1, |t, _x: &StateVec, dx: &mut StateVec| {
            dx[0] = (t).cos() * (t).sin()
        });
        let exact = 0.5 * (1.0f64.sin()).powi(2);
        let err = |h: f64| {
            let end = Rk4::with_step(h)
                .final_state(&sys, 0.0, StateVec::from([0.0]), 1.0)
                .unwrap();
            (end[0] - exact).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        // halving the step should reduce the error roughly by 2^4 = 16
        let order = (e1 / e2).log2();
        assert!(order > 3.0, "observed order {order} too low");
    }

    #[test]
    fn oscillator_conserves_energy_approximately() {
        let sys = FnSystem::new(2, |_t, x: &StateVec, dx: &mut StateVec| {
            dx[0] = x[1];
            dx[1] = -x[0];
        });
        let traj = Rk4::with_step(1e-3)
            .integrate(
                &sys,
                0.0,
                StateVec::from([1.0, 0.0]),
                2.0 * std::f64::consts::PI,
            )
            .unwrap();
        let end = traj.last_state();
        assert!((end[0] - 1.0).abs() < 1e-6);
        assert!(end[1].abs() < 1e-6);
    }

    #[test]
    fn trajectory_times_cover_the_whole_interval() {
        let sys = FnSystem::new(1, |_t, _x: &StateVec, dx: &mut StateVec| dx[0] = 1.0);
        let traj = Rk4::with_step(0.3)
            .integrate(&sys, 0.0, StateVec::from([0.0]), 1.0)
            .unwrap();
        assert!((traj.first_time() - 0.0).abs() < 1e-15);
        assert!((traj.last_time() - 1.0).abs() < 1e-15);
        // end state equals elapsed time for ẋ = 1
        assert!((traj.last_state()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_backwards_integration() {
        let sys = FnSystem::new(1, |_t, _x: &StateVec, dx: &mut StateVec| dx[0] = 1.0);
        assert!(Rk4::default()
            .integrate(&sys, 1.0, StateVec::from([0.0]), 0.0)
            .is_err());
    }
}
