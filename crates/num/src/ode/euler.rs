use crate::{NumError, Result, StateVec};

use super::{check_inputs, Integrator, OdeSystem, Trajectory};

/// Explicit Euler integrator with a fixed step size.
///
/// First-order accurate; it is provided as a baseline and for tests where the
/// exact order of a scheme matters. Production analyses should prefer
/// [`Rk4`](super::Rk4) or [`Dopri45`](super::Dopri45).
///
/// # Example
///
/// ```
/// use mfu_num::ode::{Euler, FnSystem, Integrator};
/// use mfu_num::StateVec;
///
/// let decay = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = -x[0]);
/// let end = Euler::with_step(1e-4).final_state(&decay, 0.0, StateVec::from(vec![1.0]), 1.0)?;
/// assert!((end[0] - (-1.0f64).exp()).abs() < 1e-3);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Euler {
    step: f64,
}

impl Euler {
    /// Creates an Euler integrator with the given step size.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn with_step(step: f64) -> Self {
        assert!(
            step > 0.0 && step.is_finite(),
            "Euler step must be positive and finite"
        );
        Euler { step }
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }
}

impl Default for Euler {
    fn default() -> Self {
        Euler::with_step(1e-3)
    }
}

impl Integrator for Euler {
    fn integrate(
        &self,
        system: &dyn OdeSystem,
        t0: f64,
        x0: StateVec,
        t_end: f64,
    ) -> Result<Trajectory> {
        check_inputs(system, t0, &x0, t_end)?;
        let dim = system.dim();
        let span = t_end - t0;
        let n_steps = (span / self.step).ceil().max(1.0) as usize;
        let h = span / n_steps as f64;

        let mut traj = Trajectory::with_capacity(dim, n_steps + 1);
        let mut x = x0;
        let mut dx = StateVec::zeros(dim);
        traj.push(t0, x.clone())?;
        if span == 0.0 {
            return Ok(traj);
        }
        for k in 0..n_steps {
            let t = t0 + h * k as f64;
            system.rhs(t, &x, &mut dx);
            x.add_scaled(h, &dx);
            if !x.is_finite() {
                return Err(NumError::non_finite(format!("Euler step at t = {t}")));
            }
            let t_next = if k + 1 == n_steps {
                t_end
            } else {
                t0 + h * (k + 1) as f64
            };
            traj.push(t_next, x.clone())?;
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::FnSystem;

    #[test]
    fn integrates_linear_growth_exactly() {
        // ẋ = 2 has exact solution x(t) = x0 + 2t regardless of the scheme.
        let sys = FnSystem::new(1, |_t, _x: &StateVec, dx: &mut StateVec| dx[0] = 2.0);
        let end = Euler::with_step(0.1)
            .final_state(&sys, 0.0, StateVec::from([1.0]), 3.0)
            .unwrap();
        assert!((end[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_convergence() {
        // error should shrink roughly linearly with the step size
        let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = -x[0]);
        let exact = (-1.0f64).exp();
        let err = |h: f64| {
            let end = Euler::with_step(h)
                .final_state(&sys, 0.0, StateVec::from([1.0]), 1.0)
                .unwrap();
            (end[0] - exact).abs()
        };
        let e1 = err(1e-2);
        let e2 = err(1e-3);
        let ratio = e1 / e2;
        assert!(
            ratio > 5.0 && ratio < 20.0,
            "expected ~10x error reduction, got {ratio}"
        );
    }

    #[test]
    fn zero_span_returns_initial_state() {
        let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = x[0]);
        let traj = Euler::default()
            .integrate(&sys, 2.0, StateVec::from([5.0]), 2.0)
            .unwrap();
        assert_eq!(traj.len(), 1);
        assert_eq!(traj.last_state().as_slice(), &[5.0]);
    }

    #[test]
    fn detects_divergence_to_non_finite() {
        let sys = FnSystem::new(1, |_t, x: &StateVec, dx: &mut StateVec| dx[0] = x[0] * x[0]);
        let res = Euler::with_step(0.5).integrate(&sys, 0.0, StateVec::from([1e200]), 10.0);
        assert!(matches!(res, Err(NumError::NonFinite { .. })));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        let _ = Euler::with_step(0.0);
    }
}
