//! Finite-difference Jacobians of vector fields.
//!
//! The Pontryagin costate equation `-ṗ = (∂f/∂x)ᵀ p` requires the Jacobian of
//! the drift with respect to the state. Models in this workspace only expose
//! the drift itself, so the Jacobian is approximated with central finite
//! differences — accurate to second order in the perturbation size, which is
//! ample given the smooth polynomial drifts of population models.

use crate::{NumError, Result, StateVec};

/// A dense row-major matrix of drift partial derivatives.
///
/// `entry(i, j)` is `∂f_i / ∂x_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct Jacobian {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Jacobian {
    /// Creates a zero matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Jacobian {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows (output dimension of the vector field).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (input dimension of the vector field).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(i, j) = ∂f_i/∂x_j`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "Jacobian index out of range"
        );
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set_entry(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "Jacobian index out of range"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Sets every entry to zero (reuse a matrix across evaluations).
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// The induced `∞`-norm `max_i Σ_j |J_ij|` (maximum absolute row sum).
    ///
    /// `‖J‖∞ · h` bounds the per-step growth factor a frozen-Jacobian
    /// integrator can impose, which makes this the natural gauge for "is
    /// this matrix resolvable at step `h`". Non-finite entries propagate
    /// (the result is non-finite), so callers can fold the finiteness check
    /// into the same comparison.
    pub fn inf_norm(&self) -> f64 {
        let mut norm = 0.0_f64;
        for row in self.data.chunks_exact(self.cols.max(1)) {
            let sum = row.iter().fold(0.0_f64, |s, v| s + v.abs());
            if sum.is_nan() {
                return f64::NAN;
            }
            norm = norm.max(sum);
        }
        norm
    }

    /// Computes `Jᵀ p`, the product of the transposed Jacobian with a vector.
    ///
    /// This is exactly the contraction appearing in the costate equation
    /// `-ṗ = (∂f/∂x)ᵀ p`.
    ///
    /// # Errors
    ///
    /// Returns an error if `p` does not have `rows` components.
    pub fn transpose_mul(&self, p: &StateVec) -> Result<StateVec> {
        let mut out = StateVec::zeros(self.cols);
        self.transpose_mul_into(p, &mut out)?;
        Ok(out)
    }

    /// Computes `Jᵀ p` into a preallocated vector (the allocation-free
    /// variant for inner loops).
    ///
    /// # Errors
    ///
    /// Returns an error if `p` does not have `rows` components or `out` does
    /// not have `cols` components.
    pub fn transpose_mul_into(&self, p: &StateVec, out: &mut StateVec) -> Result<()> {
        if p.dim() != self.rows {
            return Err(NumError::DimensionMismatch {
                expected: self.rows,
                found: p.dim(),
            });
        }
        if out.dim() != self.cols {
            return Err(NumError::DimensionMismatch {
                expected: self.cols,
                found: out.dim(),
            });
        }
        out.fill_zero();
        for i in 0..self.rows {
            let pi = p[i];
            if pi == 0.0 {
                continue;
            }
            for j in 0..self.cols {
                out[j] += self.data[i * self.cols + j] * pi;
            }
        }
        Ok(())
    }

    /// Computes `J v`, the ordinary matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns an error if `v` does not have `cols` components.
    pub fn mul(&self, v: &StateVec) -> Result<StateVec> {
        if v.dim() != self.cols {
            return Err(NumError::DimensionMismatch {
                expected: self.cols,
                found: v.dim(),
            });
        }
        let mut out = StateVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self.data[i * self.cols + j] * v[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }
}

/// Approximates the Jacobian of `f` at `x` by central finite differences.
///
/// `f` maps a [`StateVec`] of dimension `x.dim()` to a [`StateVec`] of
/// dimension `output_dim`; `h` is the perturbation size (a good default is
/// `1e-6`).
///
/// # Errors
///
/// Returns an error if `h` is not strictly positive, if `f` returns a vector
/// of the wrong dimension, or if any evaluation is non-finite.
///
/// # Example
///
/// ```
/// use mfu_num::jacobian::finite_difference_jacobian;
/// use mfu_num::StateVec;
///
/// // f(x, y) = (x*y, x + 2y)
/// let f = |v: &StateVec| StateVec::from(vec![v[0] * v[1], v[0] + 2.0 * v[1]]);
/// let jac = finite_difference_jacobian(&f, &StateVec::from(vec![2.0, 3.0]), 2, 1e-6)?;
/// assert!((jac.entry(0, 0) - 3.0).abs() < 1e-6);
/// assert!((jac.entry(0, 1) - 2.0).abs() < 1e-6);
/// assert!((jac.entry(1, 0) - 1.0).abs() < 1e-6);
/// assert!((jac.entry(1, 1) - 2.0).abs() < 1e-6);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
pub fn finite_difference_jacobian<F>(
    f: &F,
    x: &StateVec,
    output_dim: usize,
    h: f64,
) -> Result<Jacobian>
where
    F: Fn(&StateVec) -> StateVec,
{
    if h <= 0.0 || !h.is_finite() {
        return Err(NumError::invalid_argument(
            "finite-difference step must be positive",
        ));
    }
    let n = x.dim();
    let mut jac = Jacobian::zeros(output_dim, n);
    let mut x_plus = x.clone();
    let mut x_minus = x.clone();
    for j in 0..n {
        x_plus.copy_from(x);
        x_minus.copy_from(x);
        x_plus[j] += h;
        x_minus[j] -= h;
        let f_plus = f(&x_plus);
        let f_minus = f(&x_minus);
        if f_plus.dim() != output_dim || f_minus.dim() != output_dim {
            return Err(NumError::DimensionMismatch {
                expected: output_dim,
                found: f_plus.dim(),
            });
        }
        for i in 0..output_dim {
            let d = (f_plus[i] - f_minus[i]) / (2.0 * h);
            if !d.is_finite() {
                return Err(NumError::non_finite(format!("jacobian entry ({i}, {j})")));
            }
            jac.set_entry(i, j, d);
        }
    }
    Ok(jac)
}

/// Preallocated work buffers for
/// [`finite_difference_jacobian_into`]: two perturbed states and two drift
/// evaluations. Create once, reuse across every Jacobian of the same shape.
#[derive(Debug, Clone)]
pub struct JacobianScratch {
    x_plus: StateVec,
    x_minus: StateVec,
    f_plus: StateVec,
    f_minus: StateVec,
}

impl JacobianScratch {
    /// Buffers for a vector field from dimension `input_dim` to
    /// `output_dim`.
    pub fn new(input_dim: usize, output_dim: usize) -> Self {
        JacobianScratch {
            x_plus: StateVec::zeros(input_dim),
            x_minus: StateVec::zeros(input_dim),
            f_plus: StateVec::zeros(output_dim),
            f_minus: StateVec::zeros(output_dim),
        }
    }
}

/// Allocation-free central-difference Jacobian: the vector field writes into
/// a caller buffer and the matrix plus all temporaries are preallocated.
///
/// This is the inner-loop variant of [`finite_difference_jacobian`] used by
/// the Pontryagin costate sweep, which evaluates one Jacobian per grid
/// interval per iteration.
///
/// # Errors
///
/// Returns an error if `h` is not strictly positive, if `jac`/`scratch`
/// shapes do not match `x`, or if any evaluation is non-finite. On error the
/// contents of `jac` are unspecified.
pub fn finite_difference_jacobian_into<F>(
    f: &mut F,
    x: &StateVec,
    h: f64,
    jac: &mut Jacobian,
    scratch: &mut JacobianScratch,
) -> Result<()>
where
    F: FnMut(&StateVec, &mut StateVec),
{
    if h <= 0.0 || !h.is_finite() {
        return Err(NumError::invalid_argument(
            "finite-difference step must be positive",
        ));
    }
    let n = x.dim();
    let output_dim = jac.rows();
    if jac.cols() != n {
        return Err(NumError::DimensionMismatch {
            expected: n,
            found: jac.cols(),
        });
    }
    if scratch.x_plus.dim() != n || scratch.x_minus.dim() != n {
        return Err(NumError::DimensionMismatch {
            expected: n,
            found: scratch.x_plus.dim(),
        });
    }
    if scratch.f_plus.dim() != output_dim || scratch.f_minus.dim() != output_dim {
        return Err(NumError::DimensionMismatch {
            expected: output_dim,
            found: scratch.f_plus.dim(),
        });
    }
    for j in 0..n {
        scratch.x_plus.copy_from(x);
        scratch.x_minus.copy_from(x);
        scratch.x_plus[j] += h;
        scratch.x_minus[j] -= h;
        f(&scratch.x_plus, &mut scratch.f_plus);
        f(&scratch.x_minus, &mut scratch.f_minus);
        for i in 0..output_dim {
            let d = (scratch.f_plus[i] - scratch.f_minus[i]) / (2.0 * h);
            if !d.is_finite() {
                return Err(NumError::non_finite(format!("jacobian entry ({i}, {j})")));
            }
            jac.set_entry(i, j, d);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(v: &StateVec) -> StateVec {
        StateVec::from([v[0] * v[0] + v[1], 3.0 * v[0] * v[1]])
    }

    #[test]
    fn central_differences_match_analytic_jacobian() {
        let x = StateVec::from([1.5, -2.0]);
        let jac = finite_difference_jacobian(&quadratic, &x, 2, 1e-6).unwrap();
        assert!((jac.entry(0, 0) - 3.0).abs() < 1e-6); // 2*x0
        assert!((jac.entry(0, 1) - 1.0).abs() < 1e-6);
        assert!((jac.entry(1, 0) + 6.0).abs() < 1e-6); // 3*x1
        assert!((jac.entry(1, 1) - 4.5).abs() < 1e-6); // 3*x0
    }

    #[test]
    fn transpose_mul_matches_manual_computation() {
        let x = StateVec::from([1.0, 2.0]);
        let jac = finite_difference_jacobian(&quadratic, &x, 2, 1e-6).unwrap();
        let p = StateVec::from([1.0, -1.0]);
        let jt_p = jac.transpose_mul(&p).unwrap();
        // J = [[2, 1], [6, 3]]; Jᵀ p = [2*1 + 6*(-1), 1*1 + 3*(-1)] = [-4, -2]
        assert!((jt_p[0] + 4.0).abs() < 1e-5);
        assert!((jt_p[1] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn mul_matches_manual_computation() {
        let mut jac = Jacobian::zeros(2, 2);
        jac.set_entry(0, 0, 1.0);
        jac.set_entry(0, 1, 2.0);
        jac.set_entry(1, 0, -1.0);
        jac.set_entry(1, 1, 0.5);
        let v = StateVec::from([2.0, 4.0]);
        let out = jac.mul(&v).unwrap();
        assert_eq!(out.as_slice(), &[10.0, 0.0]);
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let jac = Jacobian::zeros(2, 3);
        assert!(jac.transpose_mul(&StateVec::zeros(3)).is_err());
        assert!(jac.mul(&StateVec::zeros(2)).is_err());
    }

    #[test]
    fn rejects_invalid_step() {
        let x = StateVec::from([0.0]);
        let f = |v: &StateVec| v.clone();
        assert!(finite_difference_jacobian(&f, &x, 1, 0.0).is_err());
        assert!(finite_difference_jacobian(&f, &x, 1, f64::NAN).is_err());
    }

    #[test]
    fn rejects_inconsistent_output_dimension() {
        let x = StateVec::from([1.0]);
        let f = |v: &StateVec| StateVec::from([v[0], v[0]]);
        assert!(finite_difference_jacobian(&f, &x, 1, 1e-6).is_err());
    }

    #[test]
    fn into_variant_matches_allocating_variant_bit_for_bit() {
        let x = StateVec::from([1.5, -2.0]);
        let reference = finite_difference_jacobian(&quadratic, &x, 2, 1e-6).unwrap();
        let mut jac = Jacobian::zeros(2, 2);
        let mut scratch = JacobianScratch::new(2, 2);
        let mut f = |v: &StateVec, out: &mut StateVec| out.copy_from(&quadratic(v));
        finite_difference_jacobian_into(&mut f, &x, 1e-6, &mut jac, &mut scratch).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(
                    reference.entry(i, j).to_bits(),
                    jac.entry(i, j).to_bits(),
                    "entry ({i}, {j})"
                );
            }
        }
        // buffers are reusable across calls
        finite_difference_jacobian_into(&mut f, &x, 1e-6, &mut jac, &mut scratch).unwrap();
        assert_eq!(reference.entry(1, 0).to_bits(), jac.entry(1, 0).to_bits());
    }

    #[test]
    fn into_variant_validates_shapes_and_step() {
        let x = StateVec::from([1.0, 2.0]);
        let mut f = |v: &StateVec, out: &mut StateVec| out.copy_from(&quadratic(v));
        let mut scratch = JacobianScratch::new(2, 2);
        let mut wrong_cols = Jacobian::zeros(2, 3);
        assert!(
            finite_difference_jacobian_into(&mut f, &x, 1e-6, &mut wrong_cols, &mut scratch)
                .is_err()
        );
        let mut jac = Jacobian::zeros(2, 2);
        assert!(finite_difference_jacobian_into(&mut f, &x, 0.0, &mut jac, &mut scratch).is_err());
        let mut wrong_scratch = JacobianScratch::new(3, 2);
        assert!(
            finite_difference_jacobian_into(&mut f, &x, 1e-6, &mut jac, &mut wrong_scratch)
                .is_err()
        );
    }

    #[test]
    fn transpose_mul_into_reuses_buffer_and_validates() {
        let mut jac = Jacobian::zeros(2, 2);
        jac.set_entry(0, 0, 2.0);
        jac.set_entry(0, 1, 1.0);
        jac.set_entry(1, 0, 6.0);
        jac.set_entry(1, 1, 3.0);
        let p = StateVec::from([1.0, -1.0]);
        let mut out = StateVec::from([9.0, 9.0]); // stale contents must be overwritten
        jac.transpose_mul_into(&p, &mut out).unwrap();
        assert_eq!(out.as_slice(), &[-4.0, -2.0]);
        let mut wrong = StateVec::zeros(3);
        assert!(jac.transpose_mul_into(&p, &mut wrong).is_err());
        jac.fill_zero();
        assert_eq!(jac.entry(1, 0), 0.0);
    }

    #[test]
    fn inf_norm_is_the_max_absolute_row_sum() {
        let mut jac = Jacobian::zeros(2, 3);
        jac.set_entry(0, 0, 1.0);
        jac.set_entry(0, 1, -2.0);
        jac.set_entry(0, 2, 0.5);
        jac.set_entry(1, 0, -1.0);
        jac.set_entry(1, 1, 1.0);
        assert_eq!(jac.inf_norm(), 3.5);
        assert_eq!(Jacobian::zeros(0, 0).inf_norm(), 0.0);
        jac.set_entry(1, 2, f64::NAN);
        assert!(jac.inf_norm().is_nan());
    }
}
