//! Numerical substrate for the `mean-field-uncertain` workspace.
//!
//! This crate provides the low-level numerical building blocks used by the
//! mean-field analysis of uncertain and imprecise population processes
//! (Bortolussi & Gast, DSN 2016):
//!
//! * [`StateVec`] — a small dense state vector with element-wise arithmetic,
//!   used for population densities, drifts and costates;
//! * the [`batch`] module — coordinate-major structure-of-arrays batches
//!   ([`batch::SoaBatch`]) carrying many states or parameter vectors for
//!   lane-parallel evaluators;
//! * the [`ode`] module — explicit ODE integrators (Euler, classic RK4 and an
//!   adaptive Dormand–Prince 4(5) pair) together with dense
//!   [`Trajectory`](ode::Trajectory) output and interpolation;
//! * the [`rootfind`] module — bisection, Brent's method and golden-section
//!   minimisation, used for fixed points and robust parameter tuning;
//! * the [`jacobian`] module — finite-difference Jacobians of vector fields,
//!   used by the Pontryagin costate equations;
//! * the [`geometry`] module — 2-D polygons, convex hulls, point-in-polygon
//!   and distance queries, used to represent Birkhoff centres and reachable
//!   regions;
//! * the [`grid`] module — uniform time grids and linear interpolation on
//!   them.
//!
//! # Example
//!
//! Integrate the logistic equation with the adaptive Dormand–Prince solver:
//!
//! ```
//! use mfu_num::ode::{Dopri45, Integrator, OdeSystem};
//! use mfu_num::StateVec;
//!
//! struct Logistic;
//! impl OdeSystem for Logistic {
//!     fn dim(&self) -> usize { 1 }
//!     fn rhs(&self, _t: f64, x: &StateVec, dx: &mut StateVec) {
//!         dx[0] = x[0] * (1.0 - x[0]);
//!     }
//! }
//!
//! let solver = Dopri45::default();
//! let traj = solver.integrate(&Logistic, 0.0, StateVec::from(vec![0.1]), 20.0)?;
//! let end = traj.last_state();
//! assert!((end[0] - 1.0).abs() < 1e-4);
//! # Ok::<(), mfu_num::NumError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod vector;

pub mod batch;
pub mod geometry;
pub mod grid;
pub mod jacobian;
pub mod ode;
pub mod rootfind;

pub use error::NumError;
pub use vector::StateVec;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NumError>;
