//! Uniform time grids and piecewise-linear signals on them.
//!
//! The Pontryagin forward–backward sweep stores the state, costate and
//! extremal control on a shared uniform time grid; this module provides that
//! grid and a piecewise-linear [`GridSignal`] that can be sampled at
//! arbitrary times during the opposite-direction pass.

use serde::{Deserialize, Serialize};

use crate::{NumError, Result, StateVec};

/// A uniform time grid `t_k = t0 + k·h`, `k = 0..=n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeGrid {
    t0: f64,
    t1: f64,
    n: usize,
}

impl TimeGrid {
    /// Creates a grid with `n` intervals spanning `[t0, t1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `t1 <= t0`, `n == 0`, or the bounds are not finite.
    pub fn new(t0: f64, t1: f64, n: usize) -> Result<Self> {
        if !t0.is_finite() || !t1.is_finite() || t1 <= t0 {
            return Err(NumError::invalid_argument(format!(
                "invalid grid bounds [{t0}, {t1}]"
            )));
        }
        if n == 0 {
            return Err(NumError::invalid_argument(
                "time grid requires at least one interval",
            ));
        }
        Ok(TimeGrid { t0, t1, n })
    }

    /// Start of the grid.
    pub fn start(&self) -> f64 {
        self.t0
    }

    /// End of the grid.
    pub fn end(&self) -> f64 {
        self.t1
    }

    /// Number of intervals.
    pub fn intervals(&self) -> usize {
        self.n
    }

    /// Number of nodes (`intervals + 1`).
    pub fn nodes(&self) -> usize {
        self.n + 1
    }

    /// Grid spacing.
    pub fn step(&self) -> f64 {
        (self.t1 - self.t0) / self.n as f64
    }

    /// The `k`-th node.
    ///
    /// # Panics
    ///
    /// Panics if `k > intervals`.
    pub fn node(&self, k: usize) -> f64 {
        assert!(k <= self.n, "grid node index out of range");
        if k == self.n {
            self.t1
        } else {
            self.t0 + self.step() * k as f64
        }
    }

    /// Iterates over all node times.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..=self.n).map(move |k| self.node(k))
    }

    /// Returns the index of the interval containing `t`, clamped to the grid.
    pub fn interval_of(&self, t: f64) -> usize {
        if t <= self.t0 {
            return 0;
        }
        if t >= self.t1 {
            return self.n - 1;
        }
        let idx = ((t - self.t0) / self.step()).floor() as usize;
        idx.min(self.n - 1)
    }
}

/// A vector-valued signal stored on a [`TimeGrid`], interpolated linearly.
///
/// # Example
///
/// ```
/// use mfu_num::grid::{GridSignal, TimeGrid};
/// use mfu_num::StateVec;
///
/// let grid = TimeGrid::new(0.0, 1.0, 2)?;
/// let values = vec![
///     StateVec::from(vec![0.0]),
///     StateVec::from(vec![1.0]),
///     StateVec::from(vec![4.0]),
/// ];
/// let signal = GridSignal::new(grid, values)?;
/// assert!((signal.at(0.25)[0] - 0.5).abs() < 1e-12);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSignal {
    grid: TimeGrid,
    values: Vec<StateVec>,
}

impl GridSignal {
    /// Creates a signal from node values aligned with the grid.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of values does not equal the number of
    /// grid nodes, or if the values have inconsistent dimensions.
    pub fn new(grid: TimeGrid, values: Vec<StateVec>) -> Result<Self> {
        if values.len() != grid.nodes() {
            return Err(NumError::DimensionMismatch {
                expected: grid.nodes(),
                found: values.len(),
            });
        }
        let dim = values[0].dim();
        if values.iter().any(|v| v.dim() != dim) {
            return Err(NumError::invalid_argument(
                "grid signal values have inconsistent dimensions",
            ));
        }
        Ok(GridSignal { grid, values })
    }

    /// Creates a constant signal on the grid.
    pub fn constant(grid: TimeGrid, value: StateVec) -> Self {
        let values = vec![value; grid.nodes()];
        GridSignal { grid, values }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// The node values.
    pub fn values(&self) -> &[StateVec] {
        &self.values
    }

    /// Mutable access to a node value.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn value_mut(&mut self, k: usize) -> &mut StateVec {
        &mut self.values[k]
    }

    /// Dimension of the signal values.
    pub fn dim(&self) -> usize {
        self.values[0].dim()
    }

    /// Linear interpolation at time `t` (clamped to the grid range).
    pub fn at(&self, t: f64) -> StateVec {
        if t <= self.grid.start() {
            return self.values[0].clone();
        }
        if t >= self.grid.end() {
            return self.values[self.grid.intervals()].clone();
        }
        let k = self.grid.interval_of(t);
        let (t0, t1) = (self.grid.node(k), self.grid.node(k + 1));
        let w = (t - t0) / (t1 - t0);
        let mut out = self.values[k].clone();
        out *= 1.0 - w;
        out.add_scaled(w, &self.values[k + 1]);
        out
    }

    /// Value held on the interval containing `t` (piecewise-constant,
    /// left-continuous sampling — appropriate for bang-bang controls).
    pub fn at_piecewise_constant(&self, t: f64) -> StateVec {
        let k = self.grid.interval_of(t);
        self.values[k].clone()
    }

    /// Largest sup-norm difference between the node values of two signals.
    ///
    /// # Errors
    ///
    /// Returns an error if the signals live on grids of different sizes or
    /// have different dimensions.
    pub fn distance_inf(&self, other: &GridSignal) -> Result<f64> {
        if self.values.len() != other.values.len() {
            return Err(NumError::DimensionMismatch {
                expected: self.values.len(),
                found: other.values.len(),
            });
        }
        if self.dim() != other.dim() {
            return Err(NumError::DimensionMismatch {
                expected: self.dim(),
                found: other.dim(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(other.values.iter())
            .fold(0.0_f64, |m, (a, b)| m.max(a.distance_inf(b))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_nodes_and_step() {
        let grid = TimeGrid::new(0.0, 2.0, 4).unwrap();
        assert_eq!(grid.nodes(), 5);
        assert!((grid.step() - 0.5).abs() < 1e-15);
        assert_eq!(grid.node(0), 0.0);
        assert_eq!(grid.node(4), 2.0);
        let times: Vec<f64> = grid.iter().collect();
        assert_eq!(times.len(), 5);
        assert!((times[2] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn grid_rejects_degenerate_bounds() {
        assert!(TimeGrid::new(1.0, 1.0, 4).is_err());
        assert!(TimeGrid::new(0.0, -1.0, 4).is_err());
        assert!(TimeGrid::new(0.0, 1.0, 0).is_err());
        assert!(TimeGrid::new(f64::NAN, 1.0, 1).is_err());
    }

    #[test]
    fn interval_of_clamps() {
        let grid = TimeGrid::new(0.0, 1.0, 4).unwrap();
        assert_eq!(grid.interval_of(-1.0), 0);
        assert_eq!(grid.interval_of(0.3), 1);
        assert_eq!(grid.interval_of(2.0), 3);
    }

    #[test]
    fn signal_interpolates_linearly() {
        let grid = TimeGrid::new(0.0, 1.0, 2).unwrap();
        let signal = GridSignal::new(
            grid,
            vec![
                StateVec::from([0.0]),
                StateVec::from([1.0]),
                StateVec::from([4.0]),
            ],
        )
        .unwrap();
        assert!((signal.at(0.25)[0] - 0.5).abs() < 1e-12);
        assert!((signal.at(0.75)[0] - 2.5).abs() < 1e-12);
        assert_eq!(signal.at(-1.0)[0], 0.0);
        assert_eq!(signal.at(2.0)[0], 4.0);
    }

    #[test]
    fn piecewise_constant_sampling_uses_left_node() {
        let grid = TimeGrid::new(0.0, 1.0, 2).unwrap();
        let signal = GridSignal::new(
            grid,
            vec![
                StateVec::from([1.0]),
                StateVec::from([2.0]),
                StateVec::from([3.0]),
            ],
        )
        .unwrap();
        assert_eq!(signal.at_piecewise_constant(0.25)[0], 1.0);
        assert_eq!(signal.at_piecewise_constant(0.75)[0], 2.0);
    }

    #[test]
    fn constant_signal_everywhere_equal() {
        let grid = TimeGrid::new(0.0, 3.0, 3).unwrap();
        let signal = GridSignal::constant(grid, StateVec::from([7.0]));
        assert_eq!(signal.at(1.234)[0], 7.0);
    }

    #[test]
    fn signal_validation() {
        let grid = TimeGrid::new(0.0, 1.0, 2).unwrap();
        assert!(GridSignal::new(grid.clone(), vec![StateVec::from([0.0])]).is_err());
        let mixed = vec![
            StateVec::from([0.0]),
            StateVec::from([0.0, 1.0]),
            StateVec::from([0.0]),
        ];
        assert!(GridSignal::new(grid, mixed).is_err());
    }

    #[test]
    fn distance_between_signals() {
        let grid = TimeGrid::new(0.0, 1.0, 1).unwrap();
        let a = GridSignal::new(
            grid.clone(),
            vec![StateVec::from([0.0]), StateVec::from([1.0])],
        )
        .unwrap();
        let b = GridSignal::new(grid, vec![StateVec::from([0.5]), StateVec::from([1.0])]).unwrap();
        assert!((a.distance_inf(&b).unwrap() - 0.5).abs() < 1e-15);
    }
}
