//! Structure-of-arrays batches for lane-parallel evaluation.
//!
//! The bounds pipeline evaluates the same drift/rate expressions at many
//! points at once — every corner of the parameter box in the differential
//! hull, every Θ-vertex probe of a Pontryagin sweep, every trajectory of an
//! ensemble. [`SoaBatch`] is the shared carrier for those point sets: a
//! coordinate-major (structure-of-arrays) slab of `width` lanes, so that an
//! evaluator can advance *all* lanes through each operation before moving to
//! the next, with every per-coordinate row contiguous in memory.
//!
//! Layout: `values[row · width + lane]` holds coordinate `row` of lane
//! `lane`. A batch of states uses one row per state coordinate; a batch of
//! parameter vectors uses one row per parameter. [`BatchTheta`] wraps the
//! two parameter layouts batched evaluators accept: one `theta` shared by
//! every lane, or a per-lane [`SoaBatch`] of parameter vectors.
//!
//! Nothing in this module performs arithmetic on lane values; the layout
//! exists so batched evaluators (the `mfu-lang` VM, the drift backends) can
//! guarantee *bit-identical* results to their scalar paths — each lane sees
//! exactly the same sequence of floating-point operations as a scalar call
//! on that lane's data, lanes merely advance together.
//!
//! ```
//! use mfu_num::batch::{BatchTheta, SoaBatch};
//!
//! // two 3-dimensional states, transposed into coordinate-major rows
//! let batch = SoaBatch::from_lanes(&[[0.7, 0.3, 0.0], [0.6, 0.4, 0.0]]);
//! assert_eq!((batch.rows(), batch.width()), (3, 2));
//! assert_eq!(batch.row(1), &[0.3, 0.4]); // coordinate 1: one value per lane
//! assert_eq!(batch.get(0, 1), 0.6); // coordinate 0 of lane 1
//!
//! // one parameter vector shared by every lane
//! let theta = [2.0];
//! let theta = BatchTheta::Shared(&theta);
//! let mut scratch = Vec::new();
//! assert_eq!(theta.lane(1, &mut scratch), &[2.0]);
//! ```

use crate::StateVec;

/// A coordinate-major (structure-of-arrays) batch of `width` lanes of
/// `rows`-dimensional points.
///
/// See the [module docs](self) for the layout. The container is layout +
/// accessors only; batched evaluators define the arithmetic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SoaBatch {
    values: Vec<f64>,
    rows: usize,
    width: usize,
}

impl SoaBatch {
    /// A zero-filled batch of `width` lanes with `rows` coordinates each.
    pub fn zeros(rows: usize, width: usize) -> Self {
        SoaBatch {
            values: vec![0.0; rows * width],
            rows,
            width,
        }
    }

    /// Builds a batch from lane points (array-of-structures → SoA
    /// transpose): lane `l` of the result holds `lanes[l]`.
    ///
    /// # Panics
    ///
    /// Panics if the lanes disagree on dimension.
    pub fn from_lanes<S: AsRef<[f64]>>(lanes: &[S]) -> Self {
        let rows = lanes.first().map_or(0, |lane| lane.as_ref().len());
        let mut batch = SoaBatch::zeros(rows, lanes.len());
        for (l, lane) in lanes.iter().enumerate() {
            batch.set_lane(l, lane.as_ref());
        }
        batch
    }

    /// Number of coordinates per lane.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// `true` when the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// Reshapes the batch in place (for scratch reuse across calls); the
    /// contents afterwards are unspecified — callers overwrite every lane.
    pub fn reset(&mut self, rows: usize, width: usize) {
        self.values.clear();
        self.values.resize(rows * width, 0.0);
        self.rows = rows;
        self.width = width;
    }

    /// Sets every value of the batch to `v`.
    pub fn fill(&mut self, v: f64) {
        self.values.fill(v);
    }

    /// The contiguous row of coordinate `i`: one value per lane.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.width..(i + 1) * self.width]
    }

    /// Mutable row of coordinate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.values[i * self.width..(i + 1) * self.width]
    }

    /// Coordinate `i` of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn get(&self, i: usize, lane: usize) -> f64 {
        assert!(lane < self.width, "lane out of range");
        self.values[i * self.width + lane]
    }

    /// Overwrites lane `lane` with `point` (AoS → SoA scatter).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `point` has the wrong dimension.
    pub fn set_lane(&mut self, lane: usize, point: &[f64]) {
        assert!(lane < self.width, "lane out of range");
        assert_eq!(point.len(), self.rows, "lane dimension mismatch");
        for (i, &v) in point.iter().enumerate() {
            self.values[i * self.width + lane] = v;
        }
    }

    /// Copies lane `lane` into `out` (SoA → AoS gather).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or `out` has the wrong dimension.
    pub fn copy_lane_into(&self, lane: usize, out: &mut [f64]) {
        assert!(lane < self.width, "lane out of range");
        assert_eq!(out.len(), self.rows, "lane dimension mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.values[i * self.width + lane];
        }
    }

    /// Lane `lane` as a freshly allocated [`StateVec`] (convenience for
    /// scalar fallbacks and tests).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_state(&self, lane: usize) -> StateVec {
        let mut out = StateVec::zeros(self.rows);
        self.copy_lane_into(lane, out.as_mut_slice());
        out
    }

    /// The raw coordinate-major slab.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// Parameter vectors for a batched evaluation: one `theta` shared by every
/// lane, or a per-lane batch (one row per parameter).
#[derive(Debug, Clone, Copy)]
pub enum BatchTheta<'a> {
    /// Every lane evaluates with the same parameter vector.
    Shared(&'a [f64]),
    /// Lane `l` evaluates with parameter vector
    /// `[batch.get(0, l), batch.get(1, l), …]`.
    PerLane(&'a SoaBatch),
}

impl<'a> BatchTheta<'a> {
    /// Number of parameters per lane.
    pub fn params(&self) -> usize {
        match self {
            BatchTheta::Shared(theta) => theta.len(),
            BatchTheta::PerLane(batch) => batch.rows(),
        }
    }

    /// `true` when the layout provides a value for every one of `width`
    /// lanes (shared thetas fit any width).
    pub fn covers(&self, width: usize) -> bool {
        match self {
            BatchTheta::Shared(_) => true,
            BatchTheta::PerLane(batch) => batch.width() == width,
        }
    }

    /// Parameter `j` of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[inline]
    pub fn get(&self, j: usize, lane: usize) -> f64 {
        match self {
            BatchTheta::Shared(theta) => theta[j],
            BatchTheta::PerLane(batch) => batch.get(j, lane),
        }
    }

    /// The parameter vector of lane `lane`, gathered into `buf` when the
    /// layout is per-lane (scalar-fallback helper: the returned slice is
    /// exactly what a scalar evaluator would receive for this lane).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range for a per-lane layout.
    pub fn lane<'b>(&self, lane: usize, buf: &'b mut Vec<f64>) -> &'b [f64]
    where
        'a: 'b,
    {
        match self {
            BatchTheta::Shared(theta) => theta,
            BatchTheta::PerLane(batch) => {
                buf.clear();
                buf.resize(batch.rows(), 0.0);
                batch.copy_lane_into(lane, buf);
                buf
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_coordinate_major() {
        let batch = SoaBatch::from_lanes(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.width(), 2);
        // row i is contiguous: one value per lane
        assert_eq!(batch.row(0), &[1.0, 4.0]);
        assert_eq!(batch.row(1), &[2.0, 5.0]);
        assert_eq!(batch.row(2), &[3.0, 6.0]);
        assert_eq!(batch.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(batch.get(2, 1), 6.0);
    }

    #[test]
    fn lane_scatter_and_gather_round_trip() {
        let mut batch = SoaBatch::zeros(2, 3);
        batch.set_lane(1, &[7.0, 8.0]);
        let mut out = [0.0; 2];
        batch.copy_lane_into(1, &mut out);
        assert_eq!(out, [7.0, 8.0]);
        batch.copy_lane_into(0, &mut out);
        assert_eq!(out, [0.0, 0.0]);
        assert_eq!(batch.lane_state(1).as_slice(), &[7.0, 8.0]);
    }

    #[test]
    fn gather_preserves_nan_payloads() {
        let quiet = f64::NAN;
        let payload = f64::from_bits(quiet.to_bits() ^ 0x55);
        let mut batch = SoaBatch::zeros(1, 2);
        batch.set_lane(0, &[payload]);
        assert_eq!(batch.get(0, 0).to_bits(), payload.to_bits());
        assert_eq!(batch.lane_state(0)[0].to_bits(), payload.to_bits());
    }

    #[test]
    fn reset_reshapes_for_scratch_reuse() {
        let mut batch = SoaBatch::zeros(2, 2);
        batch.set_lane(0, &[1.0, 2.0]);
        batch.reset(3, 5);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.width(), 5);
        assert_eq!(batch.as_slice().len(), 15);
    }

    #[test]
    fn batch_theta_layouts_agree_on_lane_views() {
        let shared = [0.5, 1.5];
        let theta = BatchTheta::Shared(&shared);
        assert_eq!(theta.params(), 2);
        assert!(theta.covers(17));
        assert_eq!(theta.get(1, 9), 1.5);

        let per_lane = SoaBatch::from_lanes(&[[0.5, 1.5], [2.5, 3.5]]);
        let theta = BatchTheta::PerLane(&per_lane);
        assert_eq!(theta.params(), 2);
        assert!(theta.covers(2));
        assert!(!theta.covers(3));
        assert_eq!(theta.get(0, 1), 2.5);
        let mut buf = Vec::new();
        assert_eq!(theta.lane(1, &mut buf), &[2.5, 3.5]);
        let mut buf = Vec::new();
        assert_eq!(BatchTheta::Shared(&shared).lane(0, &mut buf), &[0.5, 1.5]);
    }

    #[test]
    fn from_lanes_accepts_empty() {
        let batch = SoaBatch::from_lanes::<Vec<f64>>(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.rows(), 0);
    }
}
