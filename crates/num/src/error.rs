use std::fmt;

/// Error type for numerical routines in `mfu-num`.
///
/// All fallible public functions in this crate return [`NumError`] inside a
/// [`Result`](crate::Result). The variants carry enough context to diagnose
/// the failure without inspecting internal state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A scalar argument was outside its admissible range.
    InvalidArgument {
        /// Human readable description of the offending argument.
        message: String,
    },
    /// An iterative method did not converge within its iteration budget.
    NoConvergence {
        /// Name of the method that failed to converge.
        method: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual or error estimate at the last iterate.
        residual: f64,
    },
    /// The adaptive step-size controller reduced the step below its minimum.
    StepSizeUnderflow {
        /// Time at which the underflow occurred.
        time: f64,
        /// Step size at which integration was abandoned.
        step: f64,
    },
    /// A computation produced a non-finite (NaN or infinite) value.
    NonFinite {
        /// Description of where the non-finite value appeared.
        context: String,
    },
}

impl NumError {
    /// Creates an [`NumError::InvalidArgument`] from anything printable.
    pub fn invalid_argument(message: impl Into<String>) -> Self {
        NumError::InvalidArgument {
            message: message.into(),
        }
    }

    /// Creates a [`NumError::NonFinite`] from anything printable.
    pub fn non_finite(context: impl Into<String>) -> Self {
        NumError::NonFinite {
            context: context.into(),
        }
    }
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumError::InvalidArgument { message } => write!(f, "invalid argument: {message}"),
            NumError::NoConvergence {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::StepSizeUnderflow { time, step } => {
                write!(f, "step size underflow at t = {time} (h = {step:.3e})")
            }
            NumError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = NumError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert_eq!(err.to_string(), "dimension mismatch: expected 3, found 2");
    }

    #[test]
    fn display_invalid_argument() {
        let err = NumError::invalid_argument("negative tolerance");
        assert_eq!(err.to_string(), "invalid argument: negative tolerance");
    }

    #[test]
    fn display_no_convergence_mentions_method() {
        let err = NumError::NoConvergence {
            method: "brent",
            iterations: 40,
            residual: 1e-3,
        };
        let text = err.to_string();
        assert!(text.contains("brent"));
        assert!(text.contains("40"));
    }

    #[test]
    fn display_step_underflow_and_non_finite() {
        let err = NumError::StepSizeUnderflow {
            time: 1.5,
            step: 1e-16,
        };
        assert!(err.to_string().contains("underflow"));
        let err = NumError::non_finite("drift evaluation");
        assert!(err.to_string().contains("drift evaluation"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<NumError>();
    }
}
