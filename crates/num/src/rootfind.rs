//! Scalar root finding and one-dimensional minimisation.
//!
//! These routines back two pieces of the reproduction:
//!
//! * fixed-point refinement of mean-field ODEs (root of a drift component);
//! * robust tuning of design parameters (Section VI-C of the paper), where a
//!   worst-case objective computed by the Pontryagin sweep is minimised over
//!   a scalar design parameter — done here with golden-section search, which
//!   only requires unimodality, not derivatives.

use crate::{NumError, Result};

/// Options shared by the iterative scalar solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Absolute tolerance on the argument.
    pub x_tolerance: f64,
    /// Absolute tolerance on the function value (root finders only).
    pub f_tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            x_tolerance: 1e-10,
            f_tolerance: 1e-12,
            max_iterations: 200,
        }
    }
}

fn validate_bracket(a: f64, b: f64) -> Result<()> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(NumError::invalid_argument(format!(
            "invalid bracket [{a}, {b}]"
        )));
    }
    Ok(())
}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// # Errors
///
/// Returns an error if the bracket is invalid, if `f(a)` and `f(b)` have the
/// same sign, or if the iteration budget is exhausted before the bracket
/// shrinks below the tolerance.
///
/// # Example
///
/// ```
/// use mfu_num::rootfind::{bisection, SolverOptions};
///
/// let root = bisection(|x| x * x - 2.0, 0.0, 2.0, &SolverOptions::default())?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-9);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
pub fn bisection<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    options: &SolverOptions,
) -> Result<f64> {
    validate_bracket(a, b)?;
    let (mut lo, mut hi) = (a, b);
    let (mut f_lo, f_hi) = (f(lo), f(hi));
    if f_lo.abs() <= options.f_tolerance {
        return Ok(lo);
    }
    if f_hi.abs() <= options.f_tolerance {
        return Ok(hi);
    }
    if f_lo * f_hi > 0.0 {
        return Err(NumError::invalid_argument(
            "bisection requires a sign change over the bracket",
        ));
    }
    for _ in 0..options.max_iterations {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid.abs() <= options.f_tolerance || (hi - lo) * 0.5 < options.x_tolerance {
            return Ok(mid);
        }
        if f_lo * f_mid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            f_lo = f_mid;
        }
    }
    Err(NumError::NoConvergence {
        method: "bisection",
        iterations: options.max_iterations,
        residual: hi - lo,
    })
}

/// Finds a root of `f` in `[a, b]` with Brent's method.
///
/// Brent's method combines bisection, the secant method and inverse quadratic
/// interpolation; it converges superlinearly on smooth problems while keeping
/// the robustness of bisection.
///
/// # Errors
///
/// Returns an error if the bracket is invalid, if `f(a)` and `f(b)` have the
/// same sign, or on iteration exhaustion.
///
/// # Example
///
/// ```
/// use mfu_num::rootfind::{brent, SolverOptions};
///
/// let root = brent(|x| x.cos() - x, 0.0, 1.0, &SolverOptions::default())?;
/// assert!((root - 0.7390851332151607).abs() < 1e-10);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    options: &SolverOptions,
) -> Result<f64> {
    validate_bracket(a, b)?;
    let (mut a, mut b) = (a, b);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa.abs() <= options.f_tolerance {
        return Ok(a);
    }
    if fb.abs() <= options.f_tolerance {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumError::invalid_argument(
            "brent requires a sign change over the bracket",
        ));
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..options.max_iterations {
        if fb.abs() <= options.f_tolerance || (b - a).abs() < options.x_tolerance {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // inverse quadratic interpolation
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // secant
            b - fb * (b - a) / (fb - fa)
        };

        let lower = (3.0 * a + b) / 4.0;
        let cond1 = !((lower.min(b) < s) && (s < lower.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < options.x_tolerance;
        let cond5 = !mflag && (c - d).abs() < options.x_tolerance;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumError::NoConvergence {
        method: "brent",
        iterations: options.max_iterations,
        residual: fb.abs(),
    })
}

/// Minimises a unimodal function on `[a, b]` by golden-section search.
///
/// Returns the pair `(x_min, f(x_min))`. Used by the robust-tuning routine of
/// the paper's Section VI-C, where the worst-case queue length is (observed
/// to be) convex in the GPS weight.
///
/// # Errors
///
/// Returns an error if the bracket is invalid or the iteration budget is
/// exhausted before the bracket shrinks below `x_tolerance`.
///
/// # Example
///
/// ```
/// use mfu_num::rootfind::{golden_section_min, SolverOptions};
///
/// let (x, fx) = golden_section_min(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0,
///                                  &SolverOptions::default())?;
/// assert!((x - 3.0).abs() < 1e-6);
/// assert!((fx - 1.0).abs() < 1e-9);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    options: &SolverOptions,
) -> Result<(f64, f64)> {
    validate_bracket(a, b)?;
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut lo, mut hi) = (a, b);
    let mut x1 = hi - inv_phi * (hi - lo);
    let mut x2 = lo + inv_phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..options.max_iterations {
        if (hi - lo).abs() < options.x_tolerance {
            let x = 0.5 * (lo + hi);
            return Ok((x, f(x)));
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - inv_phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + inv_phi * (hi - lo);
            f2 = f(x2);
        }
    }
    // Golden-section contraction is slow but monotone; after exhausting the
    // budget the midpoint is still a sensible answer, but we surface the lack
    // of convergence so callers can widen the budget when it matters.
    Err(NumError::NoConvergence {
        method: "golden_section_min",
        iterations: options.max_iterations,
        residual: hi - lo,
    })
}

/// Minimises `f` over `[a, b]` by evaluating it on a uniform grid of
/// `n + 1` points and returning the best `(x, f(x))` pair.
///
/// This is the derivative-free fallback used when the objective is not known
/// to be unimodal (for instance a coarse pre-scan before golden-section
/// refinement).
///
/// # Errors
///
/// Returns an error if the bracket is invalid or `n == 0`.
pub fn grid_min<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> Result<(f64, f64)> {
    validate_bracket(a, b)?;
    if n == 0 {
        return Err(NumError::invalid_argument(
            "grid_min requires at least one interval",
        ));
    }
    let mut best = (a, f(a));
    for k in 1..=n {
        let x = a + (b - a) * (k as f64) / (n as f64);
        let fx = f(x);
        if fx < best.1 {
            best = (x, fx);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_finds_sqrt_two() {
        let root = bisection(|x| x * x - 2.0, 0.0, 2.0, &SolverOptions::default()).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn bisection_rejects_same_sign_bracket() {
        let res = bisection(|x| x * x + 1.0, -1.0, 1.0, &SolverOptions::default());
        assert!(res.is_err());
    }

    #[test]
    fn bisection_accepts_root_at_endpoint() {
        let root = bisection(|x| x, 0.0, 1.0, &SolverOptions::default()).unwrap();
        assert_eq!(root, 0.0);
    }

    #[test]
    fn brent_matches_known_fixed_point() {
        let root = brent(|x| x.cos() - x, 0.0, 1.0, &SolverOptions::default()).unwrap();
        assert!((root - 0.739_085_133_215_160_7).abs() < 1e-9);
    }

    #[test]
    fn brent_handles_polynomial_with_flat_region() {
        let root = brent(|x| (x - 1.0).powi(3), 0.0, 2.5, &SolverOptions::default()).unwrap();
        assert!((root - 1.0).abs() < 1e-4);
    }

    #[test]
    fn brent_rejects_invalid_bracket() {
        assert!(brent(|x| x, 1.0, 0.0, &SolverOptions::default()).is_err());
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, &SolverOptions::default()).is_err());
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let (x, fx) = golden_section_min(
            |x| (x - 3.0).powi(2) + 1.0,
            -10.0,
            10.0,
            &SolverOptions::default(),
        )
        .unwrap();
        assert!((x - 3.0).abs() < 1e-6);
        assert!((fx - 1.0).abs() < 1e-10);
    }

    #[test]
    fn golden_section_on_asymmetric_function() {
        let (x, _) = golden_section_min(
            |x| (x - 0.25).abs() + 0.1 * x,
            0.0,
            1.0,
            &SolverOptions::default(),
        )
        .unwrap();
        assert!((x - 0.25).abs() < 1e-6);
    }

    #[test]
    fn golden_section_reports_budget_exhaustion() {
        let options = SolverOptions {
            max_iterations: 2,
            x_tolerance: 1e-12,
            ..Default::default()
        };
        let res = golden_section_min(|x| x * x, -1.0, 1.0, &options);
        assert!(matches!(res, Err(NumError::NoConvergence { .. })));
    }

    #[test]
    fn grid_min_picks_best_point() {
        let (x, fx) = grid_min(|x| (x - 0.3).powi(2), 0.0, 1.0, 10).unwrap();
        assert!((x - 0.3).abs() <= 0.05 + 1e-12);
        assert!(fx <= 0.01 + 1e-12);
    }

    #[test]
    fn grid_min_rejects_degenerate_input() {
        assert!(grid_min(|x| x, 0.0, 1.0, 0).is_err());
        assert!(grid_min(|x| x, 1.0, 0.0, 5).is_err());
    }
}
