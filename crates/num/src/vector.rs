use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

use serde::{Deserialize, Serialize};

/// A small dense state vector over `f64`.
///
/// [`StateVec`] is the workhorse value type of the workspace: population
/// densities, drifts, costates and bounds are all represented as `StateVec`s.
/// It wraps a `Vec<f64>` and provides element-wise arithmetic, norms and a few
/// component-wise comparisons that the differential-hull construction needs.
///
/// Arithmetic between two vectors panics when dimensions differ; this is a
/// programming error rather than a recoverable condition, mirroring the
/// convention of dense linear-algebra libraries.
///
/// # Example
///
/// ```
/// use mfu_num::StateVec;
///
/// let x = StateVec::from(vec![0.7, 0.3]);
/// let y = StateVec::from(vec![0.1, 0.2]);
/// let z = &x + &y;
/// assert!((z[0] - 0.8).abs() < 1e-12 && (z[1] - 0.5).abs() < 1e-12);
/// assert!((x.norm_inf() - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StateVec(Vec<f64>);

impl StateVec {
    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        StateVec(vec![0.0; dim])
    }

    /// Creates a vector of dimension `dim` filled with `value`.
    pub fn filled(dim: usize, value: f64) -> Self {
        StateVec(vec![value; dim])
    }

    /// Returns the dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the vector has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Returns the components as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector and returns the underlying `Vec<f64>`.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Returns an iterator over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }

    /// Returns a mutable iterator over the components.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.0.iter_mut()
    }

    /// Sets every component to zero, keeping the dimension.
    pub fn fill_zero(&mut self) {
        self.0.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Copies the components of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn copy_from(&mut self, other: &StateVec) {
        assert_eq!(self.dim(), other.dim(), "copy_from: dimension mismatch");
        self.0.copy_from_slice(&other.0);
    }

    /// In-place `self += scale * other` (a fused "axpy" update).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_scaled(&mut self, scale: f64, other: &StateVec) {
        assert_eq!(self.dim(), other.dim(), "add_scaled: dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += scale * b;
        }
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.0.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Supremum (infinity) norm.
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// L1 norm.
    pub fn norm1(&self) -> f64 {
        self.0.iter().map(|v| v.abs()).sum()
    }

    /// Dot product with `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &StateVec) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dot: dimension mismatch");
        self.0.iter().zip(other.0.iter()).map(|(a, b)| a * b).sum()
    }

    /// Supremum-norm distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn distance_inf(&self, other: &StateVec) -> f64 {
        assert_eq!(self.dim(), other.dim(), "distance_inf: dimension mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    /// Component-wise `self ≤ other` (used by differential hulls).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn le(&self, other: &StateVec) -> bool {
        assert_eq!(self.dim(), other.dim(), "le: dimension mismatch");
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Component-wise minimum of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn component_min(&self, other: &StateVec) -> StateVec {
        assert_eq!(self.dim(), other.dim(), "component_min: dimension mismatch");
        StateVec(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
        )
    }

    /// Component-wise maximum of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn component_max(&self, other: &StateVec) -> StateVec {
        assert_eq!(self.dim(), other.dim(), "component_max: dimension mismatch");
        StateVec(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        )
    }

    /// Clamps every component into `[lo, hi]`.
    pub fn clamp_scalar(&self, lo: f64, hi: f64) -> StateVec {
        StateVec(self.0.iter().map(|v| v.clamp(lo, hi)).collect())
    }

    /// Sum of all components (useful for conservation checks).
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl From<Vec<f64>> for StateVec {
    fn from(values: Vec<f64>) -> Self {
        StateVec(values)
    }
}

impl From<&[f64]> for StateVec {
    fn from(values: &[f64]) -> Self {
        StateVec(values.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for StateVec {
    fn from(values: [f64; N]) -> Self {
        StateVec(values.to_vec())
    }
}

impl FromIterator<f64> for StateVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        StateVec(iter.into_iter().collect())
    }
}

impl IntoIterator for StateVec {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a StateVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Index<usize> for StateVec {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.0[index]
    }
}

impl IndexMut<usize> for StateVec {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.0[index]
    }
}

impl fmt::Display for StateVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&StateVec> for &StateVec {
            type Output = StateVec;
            fn $method(self, rhs: &StateVec) -> StateVec {
                assert_eq!(self.dim(), rhs.dim(), concat!(stringify!($method), ": dimension mismatch"));
                StateVec(self.0.iter().zip(rhs.0.iter()).map(|(a, b)| a $op b).collect())
            }
        }

        impl $trait<StateVec> for StateVec {
            type Output = StateVec;
            fn $method(self, rhs: StateVec) -> StateVec {
                (&self).$method(&rhs)
            }
        }

        impl $trait<&StateVec> for StateVec {
            type Output = StateVec;
            fn $method(self, rhs: &StateVec) -> StateVec {
                (&self).$method(rhs)
            }
        }

        impl $trait<StateVec> for &StateVec {
            type Output = StateVec;
            fn $method(self, rhs: StateVec) -> StateVec {
                self.$method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);

impl AddAssign<&StateVec> for StateVec {
    fn add_assign(&mut self, rhs: &StateVec) {
        assert_eq!(self.dim(), rhs.dim(), "add_assign: dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&StateVec> for StateVec {
    fn sub_assign(&mut self, rhs: &StateVec) {
        assert_eq!(self.dim(), rhs.dim(), "sub_assign: dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &StateVec {
    type Output = StateVec;
    fn mul(self, rhs: f64) -> StateVec {
        StateVec(self.0.iter().map(|a| a * rhs).collect())
    }
}

impl Mul<f64> for StateVec {
    type Output = StateVec;
    fn mul(self, rhs: f64) -> StateVec {
        (&self).mul(rhs)
    }
}

impl Mul<&StateVec> for f64 {
    type Output = StateVec;
    fn mul(self, rhs: &StateVec) -> StateVec {
        rhs * self
    }
}

impl Mul<StateVec> for f64 {
    type Output = StateVec;
    fn mul(self, rhs: StateVec) -> StateVec {
        &rhs * self
    }
}

impl MulAssign<f64> for StateVec {
    fn mul_assign(&mut self, rhs: f64) {
        self.0.iter_mut().for_each(|a| *a *= rhs);
    }
}

impl Div<f64> for &StateVec {
    type Output = StateVec;
    fn div(self, rhs: f64) -> StateVec {
        StateVec(self.0.iter().map(|a| a / rhs).collect())
    }
}

impl Div<f64> for StateVec {
    type Output = StateVec;
    fn div(self, rhs: f64) -> StateVec {
        (&self).div(rhs)
    }
}

impl DivAssign<f64> for StateVec {
    fn div_assign(&mut self, rhs: f64) {
        self.0.iter_mut().for_each(|a| *a /= rhs);
    }
}

impl Neg for &StateVec {
    type Output = StateVec;
    fn neg(self) -> StateVec {
        StateVec(self.0.iter().map(|a| -a).collect())
    }
}

impl Neg for StateVec {
    type Output = StateVec;
    fn neg(self) -> StateVec {
        -&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = StateVec::zeros(3);
        assert_eq!(z.dim(), 3);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 0.0]);
        let f = StateVec::filled(2, 1.5);
        assert_eq!(f.as_slice(), &[1.5, 1.5]);
    }

    #[test]
    fn arithmetic_ops() {
        let x = StateVec::from([1.0, 2.0, 3.0]);
        let y = StateVec::from([0.5, 0.5, 0.5]);
        assert_eq!((&x + &y).as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!((&x - &y).as_slice(), &[0.5, 1.5, 2.5]);
        assert_eq!((&x * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!((2.0 * &x).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!((&x / 2.0).as_slice(), &[0.5, 1.0, 1.5]);
        assert_eq!((-&x).as_slice(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn assign_ops() {
        let mut x = StateVec::from([1.0, 2.0]);
        x += &StateVec::from([1.0, 1.0]);
        assert_eq!(x.as_slice(), &[2.0, 3.0]);
        x -= &StateVec::from([0.5, 0.5]);
        assert_eq!(x.as_slice(), &[1.5, 2.5]);
        x *= 2.0;
        assert_eq!(x.as_slice(), &[3.0, 5.0]);
        x /= 2.0;
        assert_eq!(x.as_slice(), &[1.5, 2.5]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut x = StateVec::from([1.0, 1.0]);
        x.add_scaled(0.5, &StateVec::from([2.0, 4.0]));
        assert_eq!(x.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn norms_and_dot() {
        let x = StateVec::from([3.0, -4.0]);
        assert!((x.norm2() - 5.0).abs() < 1e-12);
        assert!((x.norm1() - 7.0).abs() < 1e-12);
        assert!((x.norm_inf() - 4.0).abs() < 1e-12);
        let y = StateVec::from([1.0, 1.0]);
        assert!((x.dot(&y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_and_comparisons() {
        let x = StateVec::from([0.0, 1.0]);
        let y = StateVec::from([0.5, 0.0]);
        assert!((x.distance_inf(&y) - 1.0).abs() < 1e-12);
        assert!(!x.le(&y));
        assert_eq!(x.component_min(&y).as_slice(), &[0.0, 0.0]);
        assert_eq!(x.component_max(&y).as_slice(), &[0.5, 1.0]);
    }

    #[test]
    fn clamp_and_sum() {
        let x = StateVec::from([-1.0, 0.5, 2.0]);
        assert_eq!(x.clamp_scalar(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
        assert!((x.sum() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut x = StateVec::from([1.0, 2.0]);
        assert!(x.is_finite());
        x[1] = f64::NAN;
        assert!(!x.is_finite());
    }

    #[test]
    fn display_formats_components() {
        let x = StateVec::from([1.0, 2.0]);
        assert_eq!(x.to_string(), "[1.000000, 2.000000]");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_add_panics() {
        let _ = StateVec::from([1.0]) + StateVec::from([1.0, 2.0]);
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let x: StateVec = (0..3).map(|i| i as f64).collect();
        assert_eq!(x.as_slice(), &[0.0, 1.0, 2.0]);
        let sum: f64 = (&x).into_iter().sum();
        assert!((sum - 3.0).abs() < 1e-12);
    }
}
