//! Planar computational geometry for reachable regions and Birkhoff centres.
//!
//! The steady-state analysis of the SIR case study (Section V-C of the paper)
//! represents the Birkhoff centre of the mean-field differential inclusion as
//! a region of the `(x_S, x_I)` plane delimited by trajectories. This module
//! provides the polygon machinery needed for that construction: convex hulls,
//! point-in-polygon queries, distances and areas.

use serde::{Deserialize, Serialize};

use crate::{NumError, Result};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Returns `true` when both coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point2 {
    fn from(p: (f64, f64)) -> Self {
        Point2::new(p.0, p.1)
    }
}

/// Cross product of `(b - a)` and `(c - a)`; positive for a left turn.
fn cross(a: Point2, b: Point2, c: Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Distance from point `p` to the segment `[a, b]`.
fn point_segment_distance(p: Point2, a: Point2, b: Point2) -> f64 {
    let vx = b.x - a.x;
    let vy = b.y - a.y;
    let len2 = vx * vx + vy * vy;
    if len2 == 0.0 {
        return p.distance(&a);
    }
    let t = (((p.x - a.x) * vx + (p.y - a.y) * vy) / len2).clamp(0.0, 1.0);
    let proj = Point2::new(a.x + t * vx, a.y + t * vy);
    p.distance(&proj)
}

/// A simple polygon given by its vertices in order (closed implicitly).
///
/// The polygon is not required to be convex; point-in-polygon queries use the
/// even–odd rule and therefore work for any simple (non-self-intersecting)
/// boundary. Regions produced by the Birkhoff-centre construction are closed
/// trajectory loops, which satisfy this.
///
/// # Example
///
/// ```
/// use mfu_num::geometry::{Point2, Polygon};
///
/// let square = Polygon::new(vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(1.0, 1.0),
///     Point2::new(0.0, 1.0),
/// ])?;
/// assert!(square.contains(Point2::new(0.5, 0.5)));
/// assert!(!square.contains(Point2::new(1.5, 0.5)));
/// assert!((square.area() - 1.0).abs() < 1e-12);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point2>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than three vertices are supplied or any
    /// coordinate is non-finite.
    pub fn new(vertices: Vec<Point2>) -> Result<Self> {
        if vertices.len() < 3 {
            return Err(NumError::invalid_argument(
                "a polygon needs at least three vertices",
            ));
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(NumError::non_finite("polygon vertex"));
        }
        Ok(Polygon { vertices })
    }

    /// The polygon's vertices, in order.
    pub fn vertices(&self) -> &[Point2] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: a constructed polygon has at least three vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Signed area (positive for counter-clockwise orientation).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Absolute enclosed area.
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Centroid of the vertex set (arithmetic mean of the vertices).
    pub fn vertex_centroid(&self) -> Point2 {
        let n = self.vertices.len() as f64;
        let (sx, sy) = self
            .vertices
            .iter()
            .fold((0.0, 0.0), |(sx, sy), v| (sx + v.x, sy + v.y));
        Point2::new(sx / n, sy / n)
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    pub fn bounding_box(&self) -> (Point2, Point2) {
        let mut lo = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.vertices {
            lo.x = lo.x.min(v.x);
            lo.y = lo.y.min(v.y);
            hi.x = hi.x.max(v.x);
            hi.y = hi.y.max(v.y);
        }
        (lo, hi)
    }

    /// Even–odd point-in-polygon test (points on the boundary count as inside
    /// up to floating-point tolerance).
    pub fn contains(&self, p: Point2) -> bool {
        if self.distance_to_boundary(p) < 1e-12 {
            return true;
        }
        let n = self.vertices.len();
        let mut inside = false;
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            let intersects = ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x);
            if intersects {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the polygon boundary (zero on the boundary).
    pub fn distance_to_boundary(&self, p: Point2) -> f64 {
        let n = self.vertices.len();
        let mut best = f64::INFINITY;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            best = best.min(point_segment_distance(p, a, b));
        }
        best
    }

    /// Distance from `p` to the region enclosed by the polygon: zero when the
    /// point is inside or on the boundary, boundary distance otherwise.
    pub fn distance_to_region(&self, p: Point2) -> f64 {
        if self.contains(p) {
            0.0
        } else {
            self.distance_to_boundary(p)
        }
    }

    /// Convex hull of the polygon's vertices.
    pub fn convex_hull(&self) -> Polygon {
        convex_hull(&self.vertices).expect("a valid polygon always has a hull")
    }

    /// Fraction of the given points lying inside the polygon (or on its
    /// boundary). Useful for checking how much of an empirical stationary
    /// distribution is captured by a Birkhoff centre.
    pub fn containment_fraction<'a, I>(&self, points: I) -> f64
    where
        I: IntoIterator<Item = &'a Point2>,
    {
        let mut total = 0usize;
        let mut inside = 0usize;
        for p in points {
            total += 1;
            if self.contains(*p) {
                inside += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        inside as f64 / total as f64
    }
}

/// Computes the convex hull of a point set with Andrew's monotone chain.
///
/// The hull is returned in counter-clockwise order without the repeated
/// closing vertex.
///
/// # Errors
///
/// Returns an error if fewer than three non-collinear points are supplied.
///
/// # Example
///
/// ```
/// use mfu_num::geometry::{convex_hull, Point2};
///
/// let points = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 0.0),
///     Point2::new(1.0, 0.5), // interior
///     Point2::new(2.0, 2.0),
///     Point2::new(0.0, 2.0),
/// ];
/// let hull = convex_hull(&points)?;
/// assert_eq!(hull.len(), 4);
/// # Ok::<(), mfu_num::NumError>(())
/// ```
pub fn convex_hull(points: &[Point2]) -> Result<Polygon> {
    if points.len() < 3 {
        return Err(NumError::invalid_argument(
            "convex hull requires at least three points",
        ));
    }
    if points.iter().any(|p| !p.is_finite()) {
        return Err(NumError::non_finite("convex hull input"));
    }
    let mut sorted: Vec<Point2> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    sorted.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    if sorted.len() < 3 {
        return Err(NumError::invalid_argument(
            "convex hull requires at least three distinct points",
        ));
    }

    let mut lower: Vec<Point2> = Vec::new();
    for &p in &sorted {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point2> = Vec::new();
    for &p in sorted.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.len() < 3 {
        return Err(NumError::invalid_argument(
            "points are collinear; hull is degenerate",
        ));
    }
    Polygon::new(lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn polygon_requires_three_vertices() {
        assert!(Polygon::new(vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]).is_err());
        assert!(Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, f64::NAN),
            Point2::new(0.0, 1.0)
        ])
        .is_err());
    }

    #[test]
    fn area_and_orientation() {
        let square = unit_square();
        assert!((square.area() - 1.0).abs() < 1e-12);
        assert!(square.signed_area() > 0.0);
        let clockwise = Polygon::new(square.vertices().iter().rev().copied().collect()).unwrap();
        assert!(clockwise.signed_area() < 0.0);
        assert!((clockwise.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment_queries() {
        let square = unit_square();
        assert!(square.contains(Point2::new(0.5, 0.5)));
        assert!(square.contains(Point2::new(0.0, 0.5))); // boundary
        assert!(!square.contains(Point2::new(1.5, 0.5)));
        assert!(!square.contains(Point2::new(-0.1, -0.1)));
    }

    #[test]
    fn distances() {
        let square = unit_square();
        assert!((square.distance_to_boundary(Point2::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        assert_eq!(square.distance_to_region(Point2::new(0.5, 0.5)), 0.0);
        assert!((square.distance_to_region(Point2::new(0.5, 2.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_and_centroid() {
        let square = unit_square();
        let (lo, hi) = square.bounding_box();
        assert_eq!((lo.x, lo.y, hi.x, hi.y), (0.0, 0.0, 1.0, 1.0));
        let c = square.vertex_centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn convex_hull_drops_interior_points() {
        let points = vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 2.0),
            Point2::new(0.0, 2.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.5, 0.5),
        ];
        let hull = convex_hull(&points).unwrap();
        assert_eq!(hull.len(), 4);
        assert!((hull.area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn convex_hull_rejects_degenerate_input() {
        assert!(convex_hull(&[Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]).is_err());
        let collinear = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        ];
        assert!(convex_hull(&collinear).is_err());
        let duplicated = vec![Point2::new(0.0, 0.0); 5];
        assert!(convex_hull(&duplicated).is_err());
    }

    #[test]
    fn containment_fraction_counts_interior_points() {
        let square = unit_square();
        let points = [
            Point2::new(0.5, 0.5),
            Point2::new(0.25, 0.75),
            Point2::new(2.0, 2.0),
            Point2::new(-1.0, 0.5),
        ];
        let frac = square.containment_fraction(points.iter());
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_convex_polygon_containment() {
        // L-shaped polygon
        let ell = Polygon::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.0),
            Point2::new(2.0, 1.0),
            Point2::new(1.0, 1.0),
            Point2::new(1.0, 2.0),
            Point2::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(ell.contains(Point2::new(0.5, 1.5)));
        assert!(!ell.contains(Point2::new(1.5, 1.5)));
        assert!((ell.area() - 3.0).abs() < 1e-12);
        // The convex hull fills in the notch.
        assert!(ell.convex_hull().contains(Point2::new(1.5, 1.5)));
    }

    #[test]
    fn point_distance_helpers() {
        let p = Point2::new(3.0, 4.0);
        assert!((p.distance(&Point2::new(0.0, 0.0)) - 5.0).abs() < 1e-12);
        assert!(Point2::from((1.0, 2.0)).is_finite());
    }
}
