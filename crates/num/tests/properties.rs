//! Property-based tests for the numerical substrate.

use mfu_num::geometry::{convex_hull, Point2};
use mfu_num::ode::{Dopri45, FnSystem, Integrator, Rk4, Trajectory};
use mfu_num::rootfind::{bisection, golden_section_min, SolverOptions};
use mfu_num::StateVec;
use proptest::prelude::*;

fn finite_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vector addition and subtraction are inverses and norms satisfy the
    /// triangle inequality.
    #[test]
    fn statevec_arithmetic_is_consistent(a in finite_vec(4), b in finite_vec(4)) {
        let x = StateVec::from(a);
        let y = StateVec::from(b);
        let sum = &x + &y;
        let back = &sum - &y;
        prop_assert!(back.distance_inf(&x) < 1e-9);
        prop_assert!(sum.norm2() <= x.norm2() + y.norm2() + 1e-9);
        prop_assert!(x.norm_inf() <= x.norm1() + 1e-12);
        prop_assert!((x.dot(&y) - y.dot(&x)).abs() < 1e-9);
    }

    /// add_scaled is exactly addition of a scalar multiple.
    #[test]
    fn statevec_add_scaled_matches_operators(a in finite_vec(3), b in finite_vec(3), s in -10.0..10.0f64) {
        let mut x = StateVec::from(a.clone());
        x.add_scaled(s, &StateVec::from(b.clone()));
        let expected = StateVec::from(a) + StateVec::from(b) * s;
        prop_assert!(x.distance_inf(&expected) < 1e-9);
    }

    /// Component-wise min/max bracket both operands.
    #[test]
    fn component_extremes_bracket_operands(a in finite_vec(5), b in finite_vec(5)) {
        let x = StateVec::from(a);
        let y = StateVec::from(b);
        let lo = x.component_min(&y);
        let hi = x.component_max(&y);
        prop_assert!(lo.le(&x) && lo.le(&y));
        prop_assert!(x.le(&hi) && y.le(&hi));
    }

    /// Trajectory linear interpolation stays within the per-coordinate range
    /// of the two bracketing nodes.
    #[test]
    fn trajectory_interpolation_is_bounded(values in prop::collection::vec(finite_vec(2), 2..10), query in 0.0..1.0f64) {
        let mut traj = Trajectory::new(2);
        for (k, v) in values.iter().enumerate() {
            traj.push(k as f64, StateVec::from(v.clone())).unwrap();
        }
        let t = query * traj.last_time();
        let state = traj.at(t).unwrap();
        for i in 0..2 {
            prop_assert!(state[i] >= traj.min_coordinate(i) - 1e-9);
            prop_assert!(state[i] <= traj.max_coordinate(i) + 1e-9);
        }
    }

    /// RK4 and Dormand–Prince agree on linear systems ẋ = a x + b.
    #[test]
    fn integrators_agree_on_linear_dynamics(a in -2.0..0.5f64, b in -1.0..1.0f64, x0 in -5.0..5.0f64) {
        let system = FnSystem::new(1, move |_t, x: &StateVec, dx: &mut StateVec| dx[0] = a * x[0] + b);
        let fine = Rk4::with_step(1e-3)
            .final_state(&system, 0.0, StateVec::from([x0]), 2.0)
            .unwrap();
        let adaptive = Dopri45::default()
            .final_state(&system, 0.0, StateVec::from([x0]), 2.0)
            .unwrap();
        prop_assert!((fine[0] - adaptive[0]).abs() < 1e-5);
    }

    /// Bisection finds a point where an increasing cubic vanishes.
    #[test]
    fn bisection_finds_roots_of_shifted_cubics(shift in -5.0..5.0f64) {
        let f = |x: f64| (x - shift).powi(3) + (x - shift);
        let root = bisection(f, shift - 10.0, shift + 10.0, &SolverOptions::default()).unwrap();
        prop_assert!((root - shift).abs() < 1e-6);
    }

    /// Golden-section search locates the vertex of a random parabola.
    #[test]
    fn golden_section_finds_parabola_vertex(center in -3.0..3.0f64, scale in 0.1..5.0f64) {
        let (x, _) = golden_section_min(
            |x| scale * (x - center).powi(2),
            -10.0,
            10.0,
            &SolverOptions { x_tolerance: 1e-8, ..Default::default() },
        )
        .unwrap();
        prop_assert!((x - center).abs() < 1e-5);
    }

    /// The convex hull contains every input point.
    #[test]
    fn convex_hull_contains_inputs(points in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 4..30)) {
        let pts: Vec<Point2> = points.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        match convex_hull(&pts) {
            Ok(hull) => {
                for p in &pts {
                    prop_assert!(hull.contains(*p) || hull.distance_to_boundary(*p) < 1e-7);
                }
                prop_assert!(hull.area() >= 0.0);
            }
            Err(_) => {
                // degenerate (collinear / duplicate) input is allowed to fail
            }
        }
    }
}
