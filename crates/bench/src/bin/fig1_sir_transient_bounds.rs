//! Figure 1: upper and lower bounds on the infected fraction of the SIR
//! model, for the uncertain (constant unknown ϑ) and imprecise (time-varying
//! ϑ) interpretations.
//!
//! Paper setting: a = 0.1, b = 5, c = 1, ϑ ∈ [1, 10], x0 = (0.7, 0.3, 0),
//! horizon T = 4. The figure shows that the imprecise bounds strictly contain
//! the uncertain ones and that the gap grows with time.
//!
//! Run with `cargo run --release -p mfu-bench --bin fig1_sir_transient_bounds`.

use mfu_bench::{print_header, print_row};
use mfu_core::pontryagin::PontryaginOptions;
use mfu_core::reachability::{reach_tube, ReachTubeOptions};
use mfu_core::uncertain::UncertainAnalysis;
use mfu_models::sir::SirModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();
    let horizon = 4.0;
    let time_points = 40;

    // Uncertain: envelope of the constant-ϑ trajectories.
    let uncertain = UncertainAnalysis {
        grid_per_axis: 40,
        time_intervals: time_points,
        step: 1e-3,
    };
    let envelope = uncertain.envelope(&drift, &x0, horizon)?;

    // Imprecise: Pontryagin reach tube.
    let options = ReachTubeOptions {
        time_points,
        pontryagin: PontryaginOptions {
            grid_intervals: 250,
            ..Default::default()
        },
    };
    let tube = reach_tube(&drift, &x0, horizon, 1, &options)?;

    println!("# Figure 1: bounds on the proportion of infected nodes (SIR, theta in [1, 10])");
    print_header(&[
        "t",
        "xI_min_uncertain",
        "xI_max_uncertain",
        "xI_min_imprecise",
        "xI_max_imprecise",
    ]);
    for (k, (t, lo, hi)) in tube.rows().enumerate() {
        // envelope index k + 1 because the envelope grid includes t = 0
        print_row(&[
            t,
            envelope.lower()[k + 1][1],
            envelope.upper()[k + 1][1],
            lo,
            hi,
        ]);
    }

    // Headline numbers used in EXPERIMENTS.md.
    let last = tube.times().len() - 1;
    let gap_imprecise = tube.upper()[last] - tube.lower()[last];
    let gap_uncertain = envelope.upper()[time_points][1] - envelope.lower()[time_points][1];
    println!("# summary: at T = {horizon} the imprecise band is {:.3} wide, the uncertain band {:.3} wide", gap_imprecise, gap_uncertain);
    Ok(())
}
