//! Figure 4: differential-hull approximation versus the exact (Pontryagin)
//! imprecise bounds for the SIR transient, for ϑ^max ∈ {2, 5, 6}.
//!
//! The paper shows that the hull is accurate for ϑ^max = 2, noticeably loose
//! for ϑ^max = 5 (its bounds even leave [0, 1]) and trivial for ϑ^max = 6 at
//! large times. Both susceptible and infected fractions are reported over
//! the horizon T = 10.
//!
//! Run with `cargo run --release -p mfu-bench --bin fig4_hull_vs_pontryagin_transient`.

use mfu_bench::{print_header, print_row, print_section};
use mfu_core::hull::{DifferentialHull, HullOptions};
use mfu_core::pontryagin::PontryaginOptions;
use mfu_core::reachability::{reach_tube, ReachTubeOptions};
use mfu_models::sir::SirModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = 10.0;
    let time_points = 20;

    println!(
        "# Figure 4: differential hull vs imprecise (Pontryagin) transient bounds, theta_min = 1"
    );
    for &theta_max in &[2.0, 5.0, 6.0] {
        let sir = SirModel::paper_with_contact_max(theta_max);
        let drift = sir.reduced_drift();
        let x0 = sir.reduced_initial_state();

        // Differential hull (unclamped, exactly as in the paper: the bounds may
        // leave the simplex for large parameter ranges).
        let hull = DifferentialHull::new(
            &drift,
            HullOptions {
                step: 2e-3,
                time_intervals: time_points,
                ..Default::default()
            },
        );
        let hull_bounds = hull.bounds(&x0, horizon)?;

        // Exact imprecise bounds via Pontryagin reach tubes for S and I.
        let tube_options = ReachTubeOptions {
            time_points,
            pontryagin: PontryaginOptions {
                grid_intervals: 250,
                ..Default::default()
            },
        };
        let tube_s = reach_tube(&drift, &x0, horizon, 0, &tube_options)?;
        let tube_i = reach_tube(&drift, &x0, horizon, 1, &tube_options)?;

        print_section(&format!("theta_max = {theta_max}"));
        print_header(&[
            "t",
            "xS_min_imprecise",
            "xS_max_imprecise",
            "xS_min_hull",
            "xS_max_hull",
            "xI_min_imprecise",
            "xI_max_imprecise",
            "xI_min_hull",
            "xI_max_hull",
        ]);
        for k in 0..time_points {
            let t = tube_s.times()[k];
            print_row(&[
                t,
                tube_s.lower()[k],
                tube_s.upper()[k],
                hull_bounds.lower()[k + 1][0],
                hull_bounds.upper()[k + 1][0],
                tube_i.lower()[k],
                tube_i.upper()[k],
                hull_bounds.lower()[k + 1][1],
                hull_bounds.upper()[k + 1][1],
            ]);
        }
        let last = time_points;
        println!(
            "# summary: at T = {horizon} the hull infected band is [{:.3}, {:.3}] vs imprecise [{:.3}, {:.3}]",
            hull_bounds.lower()[last][1],
            hull_bounds.upper()[last][1],
            tube_i.lower()[time_points - 1],
            tube_i.upper()[time_points - 1],
        );
    }
    Ok(())
}
