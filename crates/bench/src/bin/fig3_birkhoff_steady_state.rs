//! Figure 3: steady-state regime of the imprecise and uncertain SIR models.
//!
//! The steady state of the imprecise model is the Birkhoff centre of the
//! mean-field differential inclusion (a two-dimensional region); the steady
//! state of the uncertain model is the curve of fixed points obtained by
//! sweeping the constant contact rate over [ϑ^min, ϑ^max]. The paper shows
//! that the curve is strictly contained in the region and that the region
//! reaches smaller x_S / larger x_I values than any fixed point.
//!
//! Run with `cargo run --release -p mfu-bench --bin fig3_birkhoff_steady_state`.

use mfu_bench::{print_header, print_row, print_section};
use mfu_core::birkhoff::{birkhoff_centre_2d, BirkhoffOptions};
use mfu_core::uncertain::UncertainAnalysis;
use mfu_models::sir::SirModel;
use mfu_num::geometry::Point2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();

    println!("# Figure 3: steady state of the SIR model (theta_max = 10 * theta_min)");

    // Uncertain: fixed points of the constant-ϑ mean field.
    let analysis = UncertainAnalysis {
        grid_per_axis: 40,
        time_intervals: 10,
        step: 2e-3,
    };
    let fixed_points = analysis.fixed_points(&drift, &x0)?;
    print_section("uncertain model: fixed-point curve (one row per constant theta)");
    print_header(&["theta", "x_S", "x_I"]);
    for fp in &fixed_points {
        print_row(&[fp.theta[0], fp.state[0], fp.state[1]]);
    }

    // Imprecise: Birkhoff centre.
    let options = BirkhoffOptions {
        settle_time: 30.0,
        boundary_samples: 160,
        ..Default::default()
    };
    let centre = birkhoff_centre_2d(&drift, &x0, &options)?;
    print_section("imprecise model: Birkhoff centre boundary (convex polygon vertices)");
    print_header(&["x_S", "x_I"]);
    for vertex in centre.polygon().vertices() {
        print_row(&[vertex.x, vertex.y]);
    }

    // Containment / strictness checks reported in EXPERIMENTS.md.
    let all_inside = fixed_points.iter().all(|fp| {
        centre
            .polygon()
            .distance_to_region(Point2::new(fp.state[0], fp.state[1]))
            < 1e-3
    });
    let min_s_curve = fixed_points
        .iter()
        .map(|fp| fp.state[0])
        .fold(f64::INFINITY, f64::min);
    let max_i_curve = fixed_points
        .iter()
        .map(|fp| fp.state[1])
        .fold(f64::NEG_INFINITY, f64::max);
    let (bb_lo, bb_hi) = centre.polygon().bounding_box();
    println!();
    println!("# summary: uncertain fixed-point curve inside the Birkhoff centre: {all_inside}");
    println!(
        "# summary: region reaches x_S as low as {:.3} (curve minimum {:.3}) and x_I as high as {:.3} (curve maximum {:.3})",
        bb_lo.x, min_s_curve, bb_hi.y, max_i_curve
    );
    println!(
        "# summary: region area {:.4}, expansions {}",
        centre.area(),
        centre.expansions()
    );
    Ok(())
}
