//! Figure 6: stationary sample paths of the stochastic SIR system under two
//! imprecise parameter policies, compared with the Birkhoff centre of the
//! mean-field differential inclusion, for N ∈ {100, 1000, 10000}.
//!
//! Policy θ1 is the hysteresis feedback of Section V-E (switch to ϑ^min when
//! X_S < 0.5, back to ϑ^max when X_S > 0.85); policy θ2 resamples ϑ uniformly
//! in [ϑ^min, ϑ^max] at rate 5·X_I. The paper observes that for N ≥ 1000 the
//! stationary samples essentially stay inside the Birkhoff centre.
//!
//! Run with `cargo run --release -p mfu-bench --bin fig6_simulation_vs_birkhoff`.

use mfu_bench::{print_header, print_row, print_section};
use mfu_core::birkhoff::{birkhoff_centre_2d, BirkhoffOptions};
use mfu_models::sir::SirModel;
use mfu_sim::gillespie::Simulator;
use mfu_sim::policy::{HysteresisPolicy, ParameterPolicy, RandomJumpPolicy};
use mfu_sim::steady::{sample_steady_state, SteadyStateOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();

    // Birkhoff centre of the mean-field inclusion (the blue region of Fig. 6).
    let centre = birkhoff_centre_2d(
        &drift,
        &sir.reduced_initial_state(),
        &BirkhoffOptions {
            settle_time: 30.0,
            boundary_samples: 160,
            ..Default::default()
        },
    )?;

    println!("# Figure 6: stationary SIR samples vs the Birkhoff centre");
    println!("# Birkhoff centre area: {:.4}", centre.area());

    let population_model = sir.population_model()?;
    print_section("containment of stationary samples (distance 0 means inside)");
    print_header(&["N", "policy", "fraction_inside", "mean_distance_to_region"]);

    for &scale in &[100usize, 1000, 10000] {
        let simulator = Simulator::new(population_model.clone(), scale)?;
        // fewer, more widely spaced samples at large N keep the run time bounded
        let steady = SteadyStateOptions::new(20.0, 0.25, 200);

        let policies: Vec<(&str, Box<dyn ParameterPolicy>)> = vec![
            (
                "theta1-hysteresis",
                Box::new(HysteresisPolicy::new(
                    vec![sir.contact_max],
                    0,
                    sir.contact_min,
                    sir.contact_max,
                    0,
                    0.5,
                    0.85,
                    true,
                )),
            ),
            (
                "theta2-random-jump",
                Box::new(RandomJumpPolicy::new(
                    sir.param_space()?,
                    vec![sir.contact_max],
                    0,
                    1, // jump rate proportional to X_I
                    5.0,
                    sir.contact_max,
                )),
            ),
        ];

        for (name, mut policy) in policies {
            let sample = sample_steady_state(
                &simulator,
                &sir.initial_counts(scale),
                policy.as_mut(),
                &steady,
                42,
            )?;
            let points = sample.project(0, 1)?;
            let fraction = centre.containment_fraction(&points);
            let mean_distance = points
                .iter()
                .map(|p| centre.polygon().distance_to_region(*p))
                .sum::<f64>()
                / points.len() as f64;
            print_row(&[
                scale as f64,
                if name.starts_with("theta1") { 1.0 } else { 2.0 },
                fraction,
                mean_distance,
            ]);
            println!("# N = {scale}, policy {name}: {:.0}% of samples inside, mean distance {mean_distance:.4}", fraction * 100.0);
        }
    }

    println!();
    println!("# summary: the fraction inside increases and the mean distance decreases with N,");
    println!("# matching the concentration on the Birkhoff centre stated by Theorem 3.");
    Ok(())
}
