//! Emits `BENCH_rate_engine.json`: the perf trajectory of the rate engine
//! (interpreted tree vs bytecode VM, scalar vs batched SoA evaluation), of
//! the Gillespie propensity and selection strategies, of the τ-leap
//! engine vs the exact SSA at large population scales, and of the
//! `mfu serve` artifact cache (cold vs hot query latency).
//!
//! Run from the repository root (ideally `--release`):
//!
//! ```text
//! cargo run --release -p mfu-bench --bin rate_engine_report
//! ```
//!
//! The numbers land in `BENCH_rate_engine.json` next to the manifest and on
//! stdout; CI runs the binary so the report (and the code paths it times)
//! cannot rot.
//!
//! # Bench-regression guard
//!
//! ```text
//! rate_engine_report --check <baseline.json> [--tolerance 0.25] [--current <report.json>]
//! ```
//!
//! compares the timing metrics (every `*_ns` leaf) of a freshly written
//! report against a committed baseline and exits non-zero when any shared
//! metric regressed by more than the tolerance (default 25%). CI copies
//! the committed `BENCH_rate_engine.json` aside, regenerates the report,
//! then runs the check — so a perf regression fails the build instead of
//! silently rewriting the baseline.

use std::time::Instant;

use mfu_bench::regression;
use mfu_core::artifact::BoundMethod;
use mfu_lang::scenarios::{ring_source, ScenarioRegistry};
use mfu_lang::vm::RateProgram;
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::ode::{Integrator, Rk4};
use mfu_num::StateVec;
use mfu_obs::Obs;
use mfu_serve::{BoundRequest, QueryService, ServiceOptions};
use mfu_sim::gillespie::{PropensityStrategy, SimulationOptions, Simulator};
use mfu_sim::policy::ConstantPolicy;
use mfu_sim::selection::SelectionStrategy;
use mfu_sim::tauleap::TauLeapOptions;
use std::hint::black_box;

/// Rules of one model paired with a ring of ϑ points of the model's
/// parameter dimension.
type RuleGroup = (
    Vec<Vec<f64>>,
    Vec<(mfu_lang::expr::CompiledExpr, RateProgram)>,
);

/// Median of `samples` timing runs of `f`, in nanoseconds.
fn median_ns<F: FnMut() -> f64>(samples: usize, mut f: F) -> f64 {
    black_box(f()); // warm-up
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    timings.sort_by(f64::total_cmp);
    timings[timings.len() / 2]
}

/// Minimum of `samples` timing runs of `f`, in nanoseconds — the most
/// noise-resistant estimator for tight evaluation loops (any scheduling or
/// frequency hiccup only ever inflates a sample).
fn min_ns<F: FnMut() -> f64>(samples: usize, mut f: F) -> f64 {
    black_box(f()); // warm-up
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Ten parameter points of the given dimension for the evaluation loops
/// (values sweep 1..10 independent of any declared parameter bounds).
fn theta_ring(dim: usize) -> Vec<Vec<f64>> {
    (0..10)
        .map(|k| (0..dim).map(|d| 1.0 + ((k + d) % 10) as f64).collect())
        .collect()
}

/// tree-ns/eval, vm-ns/eval, rule count and fast-path count over a set of
/// per-model rule groups.
fn measure_rate_set(groups: &[RuleGroup], x: &StateVec) -> (f64, f64, usize, usize) {
    const EVALS: u32 = 20_000;
    let n_rules: usize = groups.iter().map(|(_, rules)| rules.len()).sum();
    let total_evals = (EVALS as usize * n_rules) as f64;
    let tree_ns = min_ns(25, || {
        let mut acc = 0.0;
        for k in 0..EVALS {
            let slot = (k % 10) as usize;
            for (thetas, rules) in groups {
                let theta = &thetas[slot];
                for (tree, _) in rules {
                    acc += tree.eval(black_box(x), theta);
                }
            }
        }
        acc
    }) / total_evals;
    let vm_ns = min_ns(25, || {
        let mut acc = 0.0;
        for k in 0..EVALS {
            let slot = (k % 10) as usize;
            for (thetas, rules) in groups {
                let theta = &thetas[slot];
                for (_, program) in rules {
                    acc += program.eval(black_box(x), theta);
                }
            }
        }
        acc
    }) / total_evals;
    let fast_path = groups
        .iter()
        .flat_map(|(_, rules)| rules)
        .filter(|(_, program)| program.is_fast_path())
        .count();
    (tree_ns, vm_ns, n_rules, fast_path)
}

/// `--check` mode: compare two already-written reports, print a verdict
/// table, and return whether the guard passed.
fn run_check(baseline_path: &str, current_path: &str, tolerance: f64) -> Result<bool, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let current = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read current report `{current_path}`: {e}"))?;
    let comparison = regression::compare(&baseline, &current, tolerance)?;
    println!(
        "bench-regression guard: {} shared timing metrics within {:.0}% of `{baseline_path}`",
        comparison.passed,
        tolerance * 100.0
    );
    for path in &comparison.unmatched {
        println!("  (unmatched, ignored) {path}");
    }
    for regression in &comparison.regressions {
        println!(
            "  REGRESSION {}: {:.2} ns -> {:.2} ns ({:+.0}%)",
            regression.path,
            regression.baseline,
            regression.current,
            (regression.current / regression.baseline - 1.0) * 100.0
        );
    }
    Ok(comparison.regressions.is_empty())
}

/// Parsed command line: measurement mode (default) or check mode.
enum Mode {
    Measure {
        /// `--assert-overhead <factor>`: fail when any "must be ≈ free"
        /// ratio exceeds `factor`: metrics-enabled vs disabled per-event
        /// cost, armed-budget vs unbudgeted per-event cost, or width-1
        /// batched vs scalar per-eval cost.
        assert_overhead: Option<f64>,
    },
    Check {
        baseline: String,
        current: String,
        tolerance: f64,
    },
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut baseline = None;
    let mut current = "BENCH_rate_engine.json".to_string();
    let mut tolerance: f64 = 0.25;
    let mut assert_overhead = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("`{flag}` needs {what}"))
                .cloned()
        };
        match flag.as_str() {
            "--check" => baseline = Some(value("a baseline path")?),
            "--current" => current = value("a report path")?,
            "--tolerance" => {
                tolerance = value("a relative tolerance")?
                    .parse()
                    .map_err(|e| format!("`--tolerance`: {e}"))?;
                if !(tolerance >= 0.0 && tolerance.is_finite()) {
                    return Err("`--tolerance` must be a non-negative number".into());
                }
            }
            "--assert-overhead" => {
                let factor: f64 = value("a ratio cap")?
                    .parse()
                    .map_err(|e| format!("`--assert-overhead`: {e}"))?;
                if !(factor >= 1.0 && factor.is_finite()) {
                    return Err("`--assert-overhead` must be a finite ratio >= 1".into());
                }
                assert_overhead = Some(factor);
            }
            other => {
                return Err(format!(
                    "unknown option `{other}` (expected --check <baseline.json> \
                     [--tolerance <rel>] [--current <report.json>] or \
                     [--assert-overhead <factor>])"
                ))
            }
        }
    }
    match baseline {
        Some(baseline) => {
            if assert_overhead.is_some() {
                return Err("`--assert-overhead` only applies to measure mode; \
                     drop `--check` or the overhead assertion"
                    .into());
            }
            Ok(Mode::Check {
                baseline,
                current,
                tolerance,
            })
        }
        // without --check the binary measures and OVERWRITES the report,
        // so stray check-only flags must not be silently ignored
        None if tolerance != 0.25 || current != "BENCH_rate_engine.json" => {
            Err("`--tolerance`/`--current` only apply to --check mode; add \
             `--check <baseline.json>` or drop them"
                .into())
        }
        None => Ok(Mode::Measure { assert_overhead }),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let assert_overhead = match parse_args(&args)? {
        Mode::Check {
            baseline,
            current,
            tolerance,
        } => {
            if run_check(&baseline, &current, tolerance)? {
                return Ok(());
            }
            eprintln!("bench-regression guard failed");
            std::process::exit(1);
        }
        Mode::Measure { assert_overhead } => assert_overhead,
    };

    // ---- rate engine: tree vs VM over every builtin scenario rule --------
    // Two measured sets: the full-coordinate scenario rules (exactly what
    // the `dsl_parse_compile/rate_engine` bench group times — the PR's
    // acceptance gauge) and the broader mix that additionally includes the
    // reduced-coordinate rules of the hull/Pontryagin hot path, whose
    // conservation substitution makes the trees deeper and less
    // fast-path-friendly. Rules are grouped per model, each group carrying
    // a ring of ϑ points *dimensioned* to its own parameter space (the
    // values sweep 1..10 regardless of the declared bounds — rate
    // evaluation does not clamp), so the loop stays valid if a
    // multi-parameter scenario is ever registered; the ϑ lookup is hoisted
    // out of the per-rule loop and the variation keeps the optimizer from
    // hoisting the eval itself.
    let registry = ScenarioRegistry::with_builtins();
    let mut groups_full: Vec<RuleGroup> = Vec::new();
    let mut groups_mix: Vec<RuleGroup> = Vec::new();
    let mut max_dim = 0;
    for scenario in registry.iter() {
        let model = scenario.compile()?;
        max_dim = max_dim.max(model.dim());
        let thetas = theta_ring(model.params().dim());
        let full: Vec<_> = model
            .rules()
            .iter()
            .map(|rule| (rule.rate.clone(), RateProgram::compile(&rule.rate)))
            .collect();
        let mut mix = full.clone();
        for rule in model.reduced_drift().rules() {
            mix.push((rule.rate.clone(), RateProgram::compile(&rule.rate)));
        }
        groups_full.push((thetas.clone(), full));
        groups_mix.push((thetas, mix));
    }
    let x: StateVec = (0..max_dim).map(|i| 0.1 + 0.07 * i as f64).collect();

    let (tree_ns, vm_ns, n_rules, fast_path) = measure_rate_set(&groups_full, &x);
    let (mix_tree_ns, mix_vm_ns, mix_rules, mix_fast_path) = measure_rate_set(&groups_mix, &x);

    // ---- batched SoA evaluation: per-eval cost vs lane width -------------
    // The batched-VM acceptance gauge: the 200 ring rules evaluated over
    // lane-varying states with a shared ϑ, scalar `eval` loop vs
    // `RateProgram::eval_batch_into` at widths 1/4/16/64. The equivalence
    // suites prove the lanes bit-identical, so the only open question is
    // throughput: width 1 must be ≈ free (`--assert-overhead` gates the
    // ratio next to the metrics/guard checks) and wide lanes must amortise
    // dispatch into a real per-eval speedup.
    let ring_model = mfu_lang::compile(&ring_source(200))?;
    let ring_programs: Vec<RateProgram> = ring_model
        .rules()
        .iter()
        .map(|rule| RateProgram::compile(&rule.rate))
        .collect();
    let ring_theta_mid = ring_model.params().midpoint();
    let lanes: Vec<Vec<f64>> = (0..64)
        .map(|lane| {
            (0..ring_model.dim())
                .map(|i| 0.1 + 0.07 * i as f64 + 1e-3 * lane as f64)
                .collect()
        })
        .collect();
    let lane_states: Vec<StateVec> = lanes
        .iter()
        .map(|lane| lane.iter().copied().collect())
        .collect();
    // Hold total evals per timing sample roughly constant across widths so
    // every configuration gets the same measurement resolution.
    let batch_target_evals = 200_000usize;
    let scalar_iters = (batch_target_evals / (ring_programs.len() * lane_states.len())).max(1);
    let batch_scalar_ns = min_ns(25, || {
        let mut acc = 0.0;
        for _ in 0..scalar_iters {
            for program in &ring_programs {
                for point in &lane_states {
                    acc += program.eval(black_box(point), &ring_theta_mid);
                }
            }
        }
        acc
    }) / (scalar_iters * ring_programs.len() * lane_states.len()) as f64;
    let mut batched_entries = Vec::new();
    for width in [1usize, 4, 16, 64] {
        let batch = SoaBatch::from_lanes(&lanes[..width]);
        let mut out = vec![0.0; width];
        let iters = (batch_target_evals / (ring_programs.len() * width)).max(1);
        let batch_ns = min_ns(25, || {
            let mut acc = 0.0;
            for _ in 0..iters {
                for program in &ring_programs {
                    program.eval_batch_into(
                        black_box(&batch),
                        BatchTheta::Shared(&ring_theta_mid),
                        &mut out,
                    );
                    acc += out[width - 1];
                }
            }
            acc
        }) / (iters * ring_programs.len() * width) as f64;
        batched_entries.push((width, batch_ns, batch_scalar_ns / batch_ns));
    }
    let batch_width1_overhead = batched_entries[0].1 / batch_scalar_ns;

    // ---- SSA: per-event cost under the propensity strategies -------------
    let strategies = [
        ("full_rescan", PropensityStrategy::FullRescan),
        ("dependency_graph", PropensityStrategy::DependencyGraph),
        (
            "incremental_total",
            PropensityStrategy::IncrementalTotal { refresh_every: 256 },
        ),
    ];
    let cases = [
        (
            "botnet5",
            registry
                .get("botnet")
                .expect("registered")
                .source()
                .to_string(),
            4000usize,
            5.0,
        ),
        ("ring12", ring_source(12), 4800usize, 4.0),
    ];
    let mut ssa_entries = Vec::new();
    for (label, source, scale, t_end) in cases {
        let model = mfu_lang::compile(&source)?;
        let population = model.population_model()?;
        let simulator = Simulator::new(population, scale)?;
        let counts = model.initial_counts(scale);
        let theta = model.params().midpoint();
        let mut per_strategy = Vec::new();
        for (name, strategy) in strategies {
            let options = SimulationOptions::new(t_end)
                .record_stride(4096)
                .propensity_strategy(strategy);
            let mut events = 0usize;
            let wall_ns = median_ns(7, || {
                let mut policy = ConstantPolicy::new(theta.clone());
                let run = simulator
                    .simulate(&counts, &mut policy, &options, 11)
                    .expect("simulation failed");
                events = run.events();
                run.final_counts()[0] as f64
            });
            per_strategy.push((name, wall_ns / events.max(1) as f64, events));
        }
        ssa_entries.push((label, scale, per_strategy));
    }

    // ---- SSA: per-event cost of the transition-selection strategies ------
    // Propensity maintenance is pinned to IncrementalTotal so the O(K)
    // reference re-summation does not mask the selection cost; K spans the
    // paper-sized botnet (5 rules) and the generated ring family (48 and
    // 200 rules).
    let selections = [
        ("linear", SelectionStrategy::LinearScan),
        ("tree", SelectionStrategy::SumTree),
        (
            "composition_rejection",
            SelectionStrategy::CompositionRejection,
        ),
    ];
    let selection_cases = [
        (
            "botnet_K5",
            registry
                .get("botnet")
                .expect("registered")
                .source()
                .to_string(),
            4000usize,
            5.0,
        ),
        (
            "ring_K48",
            registry
                .get("ring_48")
                .expect("registered")
                .source()
                .to_string(),
            4800usize,
            4.0,
        ),
        ("ring_K200", ring_source(200), 4800usize, 4.0),
    ];
    let mut selection_entries = Vec::new();
    for (label, source, scale, t_end) in selection_cases {
        let model = mfu_lang::compile(&source)?;
        let population = model.population_model()?;
        let n_transitions = population.transitions().len();
        let simulator = Simulator::new(population, scale)?;
        let counts = model.initial_counts(scale);
        let theta = model.params().midpoint();
        let mut per_selection = Vec::new();
        for (name, selection) in selections {
            let options = SimulationOptions::new(t_end)
                .record_stride(4096)
                .propensity_strategy(PropensityStrategy::IncrementalTotal { refresh_every: 256 })
                .selection_strategy(selection);
            let mut events = 0usize;
            let wall_ns = median_ns(7, || {
                let mut policy = ConstantPolicy::new(theta.clone());
                let run = simulator
                    .simulate(&counts, &mut policy, &options, 11)
                    .expect("simulation failed");
                events = run.events();
                run.final_counts()[0] as f64
            });
            per_selection.push((name, wall_ns / events.max(1) as f64, events));
        }
        selection_entries.push((label, n_transitions, scale, per_selection));
    }

    // ---- SSA: tau-leap vs exact cost per unit simulated time -------------
    // The τ-leap acceptance gauge: on the paper's SIR scenario the exact
    // SSA pays O(N) events per unit time while the leap engine pays a
    // near-constant number of leaps, so the per-unit-time cost gap must
    // widen linearly with N (≥ 10× at N = 10⁶ is the PR 5 acceptance
    // floor; the measured gap is far larger). Each leap run also records
    // its sup-norm distance from the mean-field drift at the midpoint
    // parameters — the mean-trajectory error the Cao–Gillespie bound
    // controls (at small N this figure is dominated by the O(1/√N)
    // stochastic fluctuations, not the leap bias).
    let epsilon = 0.03;
    let sir = mfu_lang::compile(registry.get("sir").expect("registered").source())?;
    let sir_population = sir.population_model()?;
    let sir_horizon = 3.0;
    let sir_theta = sir.params().midpoint();
    let sir_reference = Rk4::with_step(1e-3).integrate(
        &sir_population.ode_for(sir_theta.clone()),
        0.0,
        sir.initial_state(),
        sir_horizon,
    )?;
    let tau_cases: [(&str, usize, usize); 3] = [
        ("sir_N1e3", 1_000, 7),
        ("sir_N1e5", 100_000, 5),
        ("sir_N1e6", 1_000_000, 3),
    ];
    let mut tauleap_entries = Vec::new();
    for (label, scale, samples) in tau_cases {
        let simulator = Simulator::new(sir_population.clone(), scale)?;
        let counts = sir.initial_counts(scale);
        let exact_options = SimulationOptions::new(sir_horizon).record_stride(1 << 20);
        let mut exact_events = 0usize;
        let exact_wall = median_ns(samples, || {
            let mut policy = ConstantPolicy::new(sir_theta.clone());
            let run = simulator
                .simulate(&counts, &mut policy, &exact_options, 11)
                .expect("exact simulation failed");
            exact_events = run.events();
            run.final_counts()[0] as f64
        });
        let leap_options =
            SimulationOptions::new(sir_horizon).tau_leap(TauLeapOptions::new(epsilon));
        let mut leap_steps = 0usize;
        let leap_wall = median_ns(samples.max(5), || {
            let mut policy = ConstantPolicy::new(sir_theta.clone());
            let run = simulator
                .simulate(&counts, &mut policy, &leap_options, 11)
                .expect("tau-leap simulation failed");
            leap_steps = run.events();
            run.final_counts()[0] as f64
        });
        let mut policy = ConstantPolicy::new(sir_theta.clone());
        let leap_run = simulator.simulate(&counts, &mut policy, &leap_options, 11)?;
        let sup_error = leap_run
            .trajectory()
            .iter()
            .map(|(t, state)| state.distance_inf(&sir_reference.at(t).expect("reference sampled")))
            .fold(0.0_f64, f64::max);
        tauleap_entries.push((
            label,
            scale,
            exact_wall / sir_horizon,
            exact_events,
            leap_wall / sir_horizon,
            leap_steps,
            sup_error,
        ));
    }

    // ---- engine counters: run accounting + metrics overhead --------------
    // The observability counters are maintained in plain run-locals, so for
    // a fixed seed they are exactly reproducible — unlike wall-clock they
    // can be regression-gated tightly. Three gauges matter: how many
    // propensity re-evaluations the dependency graph pays per event on the
    // sparse ring, how often the composition–rejection sampler rejects, and
    // whether the τ-leap step selection ever trips the halving guard on the
    // well-conditioned SIR (it must not).
    let ring200 = mfu_lang::compile(&ring_source(200))?;
    let ring_population = ring200.population_model()?;
    let ring_counts = ring200.initial_counts(4800);
    let ring_theta = ring200.params().midpoint();
    let ring_options = SimulationOptions::new(4.0)
        .record_stride(4096)
        .propensity_strategy(PropensityStrategy::DependencyGraph)
        .selection_strategy(SelectionStrategy::CompositionRejection);
    let counted = Simulator::new(ring_population.clone(), 4800)?.with_obs(Obs::with_metrics());
    let mut policy = ConstantPolicy::new(ring_theta.clone());
    let ring_run = counted.simulate(&ring_counts, &mut policy, &ring_options, 11)?;
    let rc = ring_run.counters();
    let ring_events = rc.events_fired.max(1) as f64;
    let propensity_evals_per_event = rc.propensity_evals as f64 / ring_events;
    let propensity_skips_per_event = rc.propensity_skips as f64 / ring_events;
    let cr_rejection_rate = rc.selection_rejections as f64 / ring_events;

    let tau_counted =
        Simulator::new(sir_population.clone(), 100_000)?.with_obs(Obs::with_metrics());
    let tau_options = SimulationOptions::new(sir_horizon).tau_leap(TauLeapOptions::new(epsilon));
    let mut policy = ConstantPolicy::new(sir_theta.clone());
    let tau_run =
        tau_counted.simulate(&sir.initial_counts(100_000), &mut policy, &tau_options, 11)?;
    let tc = tau_run.counters();
    let tau_halvings_rate = tc.tau_halvings as f64 / tc.tau_leap_steps.max(1) as f64;

    // Metrics must be free when attached: time the ring_K200 hot path with
    // the bundle off and on (identical seed and options; the trajectories
    // are bit-identical, so any delta is pure instrumentation cost).
    let plain = Simulator::new(ring_population.clone(), 4800)?;
    let mut off_events = 0usize;
    let off_wall = min_ns(9, || {
        let mut policy = ConstantPolicy::new(ring_theta.clone());
        let run = plain
            .simulate(&ring_counts, &mut policy, &ring_options, 11)
            .expect("simulation failed");
        off_events = run.events();
        run.final_counts()[0] as f64
    });
    let instrumented = Simulator::new(ring_population.clone(), 4800)?.with_obs(Obs::with_metrics());
    let mut on_events = 0usize;
    let on_wall = min_ns(9, || {
        let mut policy = ConstantPolicy::new(ring_theta.clone());
        let run = instrumented
            .simulate(&ring_counts, &mut policy, &ring_options, 11)
            .expect("simulation failed");
        on_events = run.events();
        run.final_counts()[0] as f64
    });
    assert_eq!(off_events, on_events, "observability changed the run");
    let metrics_off_step_ns = off_wall / off_events.max(1) as f64;
    let metrics_on_step_ns = on_wall / on_events.max(1) as f64;
    let overhead_ratio = metrics_on_step_ns / metrics_off_step_ns;

    // The same zero-cost-when-off contract for the run budget: arm every cap
    // generously enough that none trips (identical seed and options, so the
    // trajectories are bit-identical) and time the delta against the
    // unbudgeted hot path. The tracker's amortised wall-clock check and the
    // event-count comparison are all the guarded loop pays.
    let guarded_options = ring_options.budget(
        mfu_guard::RunBudget::unlimited()
            .wall_clock(std::time::Duration::from_secs(3600))
            .max_events(u64::MAX)
            .max_leap_steps(u64::MAX)
            .max_tau_halvings(u64::MAX),
    );
    let mut guarded_events = 0usize;
    let guarded_wall = min_ns(9, || {
        let mut policy = ConstantPolicy::new(ring_theta.clone());
        let run = plain
            .simulate(&ring_counts, &mut policy, &guarded_options, 11)
            .expect("simulation failed");
        guarded_events = run.events();
        run.final_counts()[0] as f64
    });
    assert_eq!(
        off_events, guarded_events,
        "an armed budget changed the run"
    );
    let budget_on_step_ns = guarded_wall / guarded_events.max(1) as f64;
    let guard_overhead_ratio = budget_on_step_ns / metrics_off_step_ns;

    // ---- served queries: artifact-cache cold vs hot latency --------------
    // The `mfu serve` acceptance gauge: a repeated bound query must come
    // out of the artifact cache at a latency ≥ 100× better than the cold
    // hull computation that populated it (a hot answer costs one key hash
    // and an `Arc` clone). Cold is the first hull query against a fresh
    // in-process service; hot is the identical request replayed. `hot_ns`
    // and `cold_ns` are regression-gated like every other timing leaf;
    // `speedup_x` and `hit_ratio` document the run (the hit ratio is a
    // deterministic function of the replay count).
    let service = QueryService::new(ServiceOptions::default());
    let served_request = BoundRequest {
        model: Some("sir".to_string()),
        source: None,
        method: BoundMethod::Hull,
        horizon: Some(1.0),
        box_overrides: Vec::new(),
    };
    let cold = service
        .bound(&served_request)
        .map_err(|e| format!("served cold query failed: {e}"))?;
    assert!(!cold.cache_hit, "fresh service answered from the cache");
    let served_cold_ns = cold.elapsed_ns.max(1) as f64;
    let mut served_hits = 0u64;
    let served_hot_ns = median_ns(25, || {
        let outcome = service.bound(&served_request).expect("hot query failed");
        assert!(outcome.cache_hit, "replayed query missed the cache");
        served_hits += 1;
        outcome.artifact.lower[0]
    })
    .max(1.0);
    let served_speedup = served_cold_ns / served_hot_ns;
    let served_hit_ratio = served_hits as f64 / (served_hits + 1) as f64;

    // ---- report ----------------------------------------------------------
    let speedup = tree_ns / vm_ns;
    let mix_speedup = mix_tree_ns / mix_vm_ns;
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"rate_engine\",\n");
    json.push_str(
        "  \"units\": {\"eval_ns\": \"ns/eval\", \"step_ns\": \"ns/event\", \
         \"per_unit_time_ns\": \"ns per simulated time unit\"},\n",
    );
    json.push_str(&format!(
        "  \"rate_eval\": {{\n    \"scope\": \"full-coordinate scenario rules (= dsl_parse_compile/rate_engine bench)\",\n    \"rules\": {n_rules},\n    \"fast_path_rules\": {fast_path},\n    \"tree_eval_ns\": {tree_ns:.2},\n    \"vm_eval_ns\": {vm_ns:.2},\n    \"speedup\": {speedup:.2}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"rate_eval_with_reduced\": {{\n    \"scope\": \"full + reduced-coordinate rules (hull/Pontryagin mix)\",\n    \"rules\": {mix_rules},\n    \"fast_path_rules\": {mix_fast_path},\n    \"tree_eval_ns\": {mix_tree_ns:.2},\n    \"vm_eval_ns\": {mix_vm_ns:.2},\n    \"speedup\": {mix_speedup:.2}\n  }},\n"
    ));
    let batched_lines: Vec<String> = batched_entries
        .iter()
        .map(|(width, batch_ns, speedup)| {
            format!(
                "    \"width_{width}\": {{\"batch_eval_ns\": {batch_ns:.2}, \
                 \"speedup_vs_scalar\": {speedup:.2}}}"
            )
        })
        .collect();
    json.push_str(&format!(
        "  \"batched_eval\": {{\n    \"scope\": \"ring_K200 rules, shared theta, lane-varying states (eval_batch_into)\",\n    \"rules\": {},\n    \"scalar_eval_ns\": {batch_scalar_ns:.2},\n    \"width1_overhead_ratio\": {batch_width1_overhead:.3},\n{}\n  }},\n",
        ring_programs.len(),
        batched_lines.join(",\n")
    ));
    let ssa_blocks: Vec<String> = ssa_entries
        .iter()
        .map(|(label, scale, per_strategy)| {
            let full = per_strategy
                .iter()
                .find(|(name, _, _)| *name == "full_rescan")
                .expect("full_rescan timed")
                .1;
            let lines: Vec<String> = std::iter::once(format!("      \"scale\": {scale}"))
                .chain(per_strategy.iter().map(|(name, step_ns, events)| {
                    format!(
                        "      \"{name}\": {{\"step_ns\": {step_ns:.2}, \"events\": {events}, \"speedup_vs_full\": {:.2}}}",
                        full / step_ns
                    )
                }))
                .collect();
            format!("    \"{label}\": {{\n{}\n    }}", lines.join(",\n"))
        })
        .collect();
    json.push_str(&format!(
        "  \"ssa\": {{\n{}\n  }},\n",
        ssa_blocks.join(",\n")
    ));
    let selection_blocks: Vec<String> = selection_entries
        .iter()
        .map(|(label, n_transitions, scale, per_selection)| {
            let linear = per_selection
                .iter()
                .find(|(name, _, _)| *name == "linear")
                .expect("linear timed")
                .1;
            let lines: Vec<String> = std::iter::once(format!(
                "      \"transitions\": {n_transitions},\n      \"scale\": {scale}"
            ))
            .chain(per_selection.iter().map(|(name, step_ns, events)| {
                format!(
                    "      \"{name}\": {{\"step_ns\": {step_ns:.2}, \"events\": {events}, \"speedup_vs_linear\": {:.2}}}",
                    linear / step_ns
                )
            }))
            .collect();
            format!("    \"{label}\": {{\n{}\n    }}", lines.join(",\n"))
        })
        .collect();
    json.push_str(&format!(
        "  \"ssa_selection\": {{\n{}\n  }},\n",
        selection_blocks.join(",\n")
    ));
    let tauleap_blocks: Vec<String> = tauleap_entries
        .iter()
        .map(
            |(label, scale, exact_unit, exact_events, leap_unit, leap_steps, sup_error)| {
                format!(
                    "    \"{label}\": {{\n      \"scale\": {scale},\n      \
                     \"exact\": {{\"per_unit_time_ns\": {exact_unit:.0}, \"events\": {exact_events}}},\n      \
                     \"tau_leap\": {{\"per_unit_time_ns\": {leap_unit:.0}, \"steps\": {leap_steps}, \
                     \"speedup_vs_exact\": {:.1}, \"sup_error_vs_drift\": {sup_error:.5}}}\n    }}",
                    exact_unit / leap_unit
                )
            },
        )
        .collect();
    json.push_str(&format!(
        "  \"ssa_tauleap\": {{\n    \"epsilon\": {epsilon},\n    \"horizon\": {sir_horizon},\n{}\n  }},\n",
        tauleap_blocks.join(",\n")
    ));
    json.push_str(&format!(
        "  \"counters\": {{\n    \
         \"ring_K200_cr\": {{\"scale\": 4800, \"seed\": 11, \"events\": {}, \
         \"propensity_evals_per_event\": {propensity_evals_per_event:.3}, \
         \"propensity_skips_per_event\": {propensity_skips_per_event:.3}, \
         \"cr_rejection_rate\": {cr_rejection_rate:.4}}},\n    \
         \"sir_tauleap_N1e5\": {{\"seed\": 11, \"leap_steps\": {}, \
         \"fallback_steps\": {}, \"poisson_draws\": {}, \
         \"tau_halvings\": {}, \"tau_halvings_rate\": {tau_halvings_rate:.4}}},\n    \
         \"metrics_overhead_ring_K200\": {{\"metrics_off_step_ns\": {metrics_off_step_ns:.2}, \
         \"metrics_on_step_ns\": {metrics_on_step_ns:.2}, \
         \"overhead_ratio\": {overhead_ratio:.3}}},\n    \
         \"guard_overhead_ring_K200\": {{\"budget_off_step_ns\": {metrics_off_step_ns:.2}, \
         \"budget_on_step_ns\": {budget_on_step_ns:.2}, \
         \"overhead_ratio\": {guard_overhead_ratio:.3}}}\n  }},\n",
        rc.events_fired,
        tc.tau_leap_steps,
        tc.tau_fallback_steps,
        tc.poisson_draws,
        tc.tau_halvings
    ));
    json.push_str(&format!(
        "  \"served_query\": {{\n    \
         \"scope\": \"in-process QueryService, sir hull bound at horizon 1.0\",\n    \
         \"cold_ns\": {served_cold_ns:.0},\n    \
         \"hot_ns\": {served_hot_ns:.0},\n    \
         \"speedup_x\": {served_speedup:.0},\n    \
         \"hits\": {served_hits},\n    \
         \"misses\": 1,\n    \
         \"hit_ratio\": {served_hit_ratio:.4}\n  }}\n}}\n"
    ));

    println!("{json}");
    std::fs::write("BENCH_rate_engine.json", &json)?;
    eprintln!("wrote BENCH_rate_engine.json");
    if let Some(cap) = assert_overhead {
        if overhead_ratio > cap {
            eprintln!(
                "metrics overhead assertion failed: enabled/disabled per-event \
                 ratio {overhead_ratio:.3} exceeds the cap {cap}"
            );
            std::process::exit(1);
        }
        eprintln!("metrics overhead {overhead_ratio:.3} within the {cap} cap");
        if guard_overhead_ratio > cap {
            eprintln!(
                "budget-guard overhead assertion failed: armed/unarmed per-event \
                 ratio {guard_overhead_ratio:.3} exceeds the cap {cap}"
            );
            std::process::exit(1);
        }
        eprintln!("budget-guard overhead {guard_overhead_ratio:.3} within the {cap} cap");
        if batch_width1_overhead > cap {
            eprintln!(
                "batched-eval overhead assertion failed: width-1 \
                 eval_batch_into/scalar per-eval ratio {batch_width1_overhead:.3} \
                 exceeds the cap {cap}"
            );
            std::process::exit(1);
        }
        eprintln!("batched width-1 eval overhead {batch_width1_overhead:.3} within the {cap} cap");
        // the serve acceptance floor rides along with the overhead gate:
        // a hot artifact-cache answer must beat the cold computation by
        // at least two orders of magnitude
        if served_speedup < 100.0 {
            eprintln!(
                "served-query assertion failed: hot/cold speedup {served_speedup:.0}x \
                 is below the 100x floor ({served_cold_ns:.0} ns cold, \
                 {served_hot_ns:.0} ns hot)"
            );
            std::process::exit(1);
        }
        eprintln!("served-query hot path {served_speedup:.0}x faster than cold (>= 100x floor)");
    }
    Ok(())
}
