//! Figure 5: steady-state comparison between the imprecise model (Birkhoff
//! centre), the uncertain model (fixed-point curve) and the differential-hull
//! box, for ϑ^max ∈ {2, 3, 4, 5}.
//!
//! The paper shows that the hull's rectangular steady-state approximation is
//! accurate for ϑ^max = 2 or 3 and very loose for ϑ^max = 5 (trivial from
//! ϑ^max ≥ 6 on).
//!
//! Run with `cargo run --release -p mfu-bench --bin fig5_hull_vs_pontryagin_steady`.

use mfu_bench::{print_header, print_row, print_section};
use mfu_core::birkhoff::{birkhoff_centre_2d, BirkhoffOptions};
use mfu_core::hull::{DifferentialHull, HullOptions};
use mfu_core::uncertain::UncertainAnalysis;
use mfu_models::sir::SirModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("# Figure 5: steady-state regions for the SIR model, theta_min = 1");
    print_header(&[
        "theta_max",
        "xS_lo_uncertain",
        "xS_hi_uncertain",
        "xI_lo_uncertain",
        "xI_hi_uncertain",
        "xS_lo_imprecise",
        "xS_hi_imprecise",
        "xI_lo_imprecise",
        "xI_hi_imprecise",
        "xS_lo_hull",
        "xS_hi_hull",
        "xI_lo_hull",
        "xI_hi_hull",
    ]);

    for &theta_max in &[2.0, 3.0, 4.0, 5.0] {
        let sir = SirModel::paper_with_contact_max(theta_max);
        let drift = sir.reduced_drift();
        let x0 = sir.reduced_initial_state();

        // Uncertain: range spanned by the fixed points of the constant-ϑ model.
        let analysis = UncertainAnalysis {
            grid_per_axis: 30,
            time_intervals: 10,
            step: 2e-3,
        };
        let fixed_points = analysis.fixed_points(&drift, &x0)?;
        let (mut s_lo, mut s_hi, mut i_lo, mut i_hi) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for fp in &fixed_points {
            s_lo = s_lo.min(fp.state[0]);
            s_hi = s_hi.max(fp.state[0]);
            i_lo = i_lo.min(fp.state[1]);
            i_hi = i_hi.max(fp.state[1]);
        }

        // Imprecise: bounding box of the Birkhoff centre.
        let centre = birkhoff_centre_2d(
            &drift,
            &x0,
            &BirkhoffOptions {
                settle_time: 30.0,
                boundary_samples: 120,
                ..Default::default()
            },
        )?;
        let (bb_lo, bb_hi) = centre.polygon().bounding_box();

        // Differential hull: integrate the hull ODE to a long horizon and use
        // the final box as the steady-state approximation (clamped to [0, 1]
        // as the probability interpretation demands).
        let hull = DifferentialHull::new(
            &drift,
            HullOptions {
                step: 2e-3,
                time_intervals: 50,
                clamp: Some((0.0, 1.0)),
                ..Default::default()
            },
        );
        let bounds = hull.bounds(&x0, 30.0)?;
        let (hull_lo, hull_hi) = bounds.final_bounds();

        print_row(&[
            theta_max, s_lo, s_hi, i_lo, i_hi, bb_lo.x, bb_hi.x, bb_lo.y, bb_hi.y, hull_lo[0],
            hull_hi[0], hull_lo[1], hull_hi[1],
        ]);
    }

    print_section("reading guide");
    println!("# each row: steady-state ranges of x_S and x_I under the three analyses;");
    println!("# the uncertain range is inside the imprecise range, which is inside the hull box;");
    println!(
        "# the hull box degrades quickly as theta_max grows (trivial [0,1] from theta_max ~ 6)."
    );
    Ok(())
}
