//! Figure 2: the trajectories that attain the maximum / minimum number of
//! infected nodes at time T = 3, together with the bang-bang structure of the
//! extremal control.
//!
//! The paper reports that the maximising control uses ϑ^min until t ≈ 2.25
//! and ϑ^max afterwards, while the minimising control uses ϑ^min until
//! t ≈ 0.7, ϑ^max until t ≈ 2.2, then ϑ^min again.
//!
//! Run with `cargo run --release -p mfu-bench --bin fig2_extremal_trajectories`.

use mfu_bench::{print_header, print_row, print_section};
use mfu_core::pontryagin::{ExtremalSolution, PontryaginOptions, PontryaginSolver};
use mfu_models::sir::SirModel;

fn describe(label: &str, solution: &ExtremalSolution) {
    print_section(&format!(
        "{label} (objective value {:.4})",
        solution.objective_value()
    ));
    println!(
        "# bang-bang switching times: {:?}",
        solution.switching_times(1e-6)
    );
    print_header(&["t", "x_S", "x_I", "theta"]);
    let grid = solution.state().grid().clone();
    // subsample the sweep grid to ~60 reported rows
    let stride = (grid.nodes() / 60).max(1);
    for k in (0..grid.nodes()).step_by(stride) {
        let state = &solution.state().values()[k];
        let control = &solution.control().values()[k.min(grid.intervals() - 1)];
        print_row(&[grid.node(k), state[0], state[1], control[0]]);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    let x0 = sir.reduced_initial_state();
    let horizon = 3.0;

    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 600,
        ..Default::default()
    });
    let maximal = solver.maximize_coordinate(&drift, &x0, horizon, 1)?;
    let minimal = solver.minimize_coordinate(&drift, &x0, horizon, 1)?;

    println!("# Figure 2: extremal trajectories of x_I({horizon}) for the imprecise SIR model");
    describe("trajectory maximising x_I(3)", &maximal);
    describe("trajectory minimising x_I(3)", &minimal);
    Ok(())
}
