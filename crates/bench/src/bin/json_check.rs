//! `json_check` — minimal JSON validator for CI smoke tests.
//!
//! The vendored `serde` is a stub (no `serde_json`), so CI validates the
//! machine-readable outputs of this workspace — `mfu run --metrics=json`
//! snapshots, `--trace` JSONL files, `BENCH_*.json` reports — with the same
//! hand-rolled reader the bench-regression guard uses:
//!
//! ```text
//! json_check <file> [--require <dotted.path>]... [--jsonl]
//! ```
//!
//! Without `--jsonl` the file must be one JSON document; every `--require`
//! path must resolve to a numeric leaf (array indices are path segments,
//! e.g. `counters.sim_events_fired`). With `--jsonl` every non-empty line
//! must parse as a JSON document and each `--require` path must resolve in
//! at least one line. Exit code 0 when everything holds, 1 otherwise, 2 on
//! usage errors.

use std::process::ExitCode;

use mfu_bench::regression::{numeric_leaves, parse};

struct Args {
    file: String,
    requires: Vec<String>,
    jsonl: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut it = args.iter();
    let file = it
        .next()
        .ok_or("usage: json_check <file> [--require <dotted.path>]... [--jsonl]")?
        .clone();
    if file.starts_with("--") {
        return Err(format!("expected a file path first, got `{file}`"));
    }
    let mut requires = Vec::new();
    let mut jsonl = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--require" => {
                let path = it.next().ok_or("`--require` needs a dotted path")?;
                requires.push(path.clone());
            }
            "--jsonl" => jsonl = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Args {
        file,
        requires,
        jsonl,
    })
}

fn check(args: &Args, text: &str) -> Result<(), String> {
    if args.jsonl {
        let mut satisfied = vec![false; args.requires.len()];
        let mut lines = 0usize;
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            lines += 1;
            let value = parse(line).map_err(|e| format!("line {}: {e}", number + 1))?;
            let leaves = numeric_leaves(&value);
            for (slot, path) in args.requires.iter().enumerate() {
                if leaves.contains_key(path) {
                    satisfied[slot] = true;
                }
            }
        }
        if lines == 0 {
            return Err("no JSON lines in the file".into());
        }
        for (slot, path) in args.requires.iter().enumerate() {
            if !satisfied[slot] {
                return Err(format!(
                    "`{path}` is not a numeric leaf of any of the {lines} lines"
                ));
            }
        }
        println!("{}: {lines} JSON lines ok", args.file);
    } else {
        let leaves = numeric_leaves(&parse(text)?);
        for path in &args.requires {
            if !leaves.contains_key(path) {
                return Err(format!("`{path}` is not a numeric leaf of the document"));
            }
        }
        println!("{}: valid JSON, {} numeric leaves", args.file, leaves.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    match check(&args, &text) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{}: {message}", args.file);
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags() {
        let parsed = parse_args(&args("m.json --require a.b --require c --jsonl")).unwrap();
        assert_eq!(parsed.file, "m.json");
        assert_eq!(parsed.requires, vec!["a.b".to_string(), "c".to_string()]);
        assert!(parsed.jsonl);
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args("--require x")).is_err());
        assert!(parse_args(&args("m.json --require")).is_err());
        assert!(parse_args(&args("m.json --what")).is_err());
    }

    #[test]
    fn single_document_checks() {
        let parsed = parse_args(&args("m.json --require counters.sim_events_fired")).unwrap();
        assert!(check(&parsed, r#"{"counters": {"sim_events_fired": 12}}"#).is_ok());
        assert!(check(&parsed, r#"{"counters": {}}"#).is_err());
        assert!(check(&parsed, "{nope").is_err());
    }

    #[test]
    fn jsonl_checks_every_line_and_any_line_satisfies_requires() {
        let parsed = parse_args(&args("t.jsonl --jsonl --require t_ns")).unwrap();
        assert!(check(
            &parsed,
            "{\"ev\":\"a\",\"t_ns\":1}\n{\"ev\":\"b\",\"t_ns\":2}\n"
        )
        .is_ok());
        // one malformed line fails the whole file
        assert!(check(&parsed, "{\"ev\":\"a\",\"t_ns\":1}\nnot json\n").is_err());
        // a required leaf missing from every line fails
        let parsed = parse_args(&args("t.jsonl --jsonl --require missing")).unwrap();
        assert!(check(&parsed, "{\"t_ns\":1}\n").is_err());
        // an empty file fails
        assert!(check(&parsed, "\n\n").is_err());
    }
}
