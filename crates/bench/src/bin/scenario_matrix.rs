//! Emits `BENCH_scenario_matrix.json`: the cross-scenario accuracy/cost
//! matrix of the bounding methods. Every registry scenario whose analysed
//! drift fits the hull's corner enumeration is swept through the three
//! bound pipelines —
//!
//! * the **differential hull** (coordinate-wise interval ODE),
//! * the **Pontryagin** costate sweep (transient extremal trajectories),
//! * a **seeded τ-leap ensemble** envelope over the parameter-box
//!   vertices (mean ± 2σ of the objective coordinate at the horizon) —
//!
//! and each cell records the resulting bound **width** at the scenario's
//! objective coordinate and horizon plus the **wall-clock** cost of
//! producing it. The width column is the accuracy axis (tighter is
//! better), the wall column the cost axis; together they are the
//! accuracy/cost trade-off the paper's method comparison is about.
//!
//! Run from the repository root (ideally `--release`):
//!
//! ```text
//! cargo run --release -p mfu-bench --bin scenario_matrix
//! ```
//!
//! # Bench-regression guard
//!
//! ```text
//! scenario_matrix --check <baseline.json> [--tolerance 0.5] [--current <report.json>]
//! ```
//!
//! compares the `wall_ns` leaves of a freshly written report against a
//! committed baseline via [`mfu_bench::regression`] and exits non-zero on
//! a regression. Cells are second-scale end-to-end pipelines (not
//! nanosecond micro-loops), so CI gates them at a looser tolerance than
//! the rate-engine report. Widths are *not* wall-clock gated — they are
//! deterministic, and any drift surfaces through the markdown staleness
//! gate below instead.
//!
//! # Markdown rendering and the docs staleness gate
//!
//! ```text
//! scenario_matrix --markdown [--current <report.json>]
//! scenario_matrix --markdown --check docs/SCENARIOS.md
//! ```
//!
//! renders the matrix of the **committed** report as a markdown table
//! (machine-independent: the table is a pure function of the JSON). With
//! `--check <doc>` it instead extracts the block between
//! `<!-- scenario-matrix:begin -->` and `<!-- scenario-matrix:end -->`
//! in the given document and exits non-zero unless it is byte-identical
//! to the rendering — so `docs/SCENARIOS.md` cannot drift from
//! `BENCH_scenario_matrix.json`.

use std::time::Instant;

use mfu_bench::regression;
use mfu_core::hull::{DifferentialHull, HullOptions};
use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mfu_lang::scenarios::ScenarioRegistry;
use mfu_sim::ensemble::{run_ensemble, EnsembleOptions};
use mfu_sim::gillespie::{SimulationAlgorithm, SimulationOptions, Simulator};
use mfu_sim::policy::ConstantPolicy;
use mfu_sim::tauleap::TauLeapOptions;

/// Largest analysed-drift dimension the hull sweep accepts: the rectangle
/// enumeration is exponential in the dimension, so the two synthetic
/// stress-test scenarios (`ring_48`, `grid_6x6`) sit out and are listed in
/// the report's `skipped` section instead of silently vanishing.
const MAX_MATRIX_DIM: usize = 8;

/// Replications per parameter vertex of the τ-leap ensemble envelope.
const REPLICATIONS: usize = 8;

/// Fixed base seed of every ensemble cell — the envelope is a
/// deterministic function of the report code, never of the run.
const BASE_SEED: u64 = 11;

/// τ-leap error-control parameter of the ensemble cells.
const EPSILON: f64 = 0.03;

/// One scenario × method cell: bound width at the objective coordinate
/// and the wall-clock cost of computing it.
struct Cell {
    width: f64,
    wall_ns: f64,
}

/// One row of the matrix: the scenario's shape plus its three cells.
struct Row {
    family: String,
    name: String,
    species: usize,
    transitions: usize,
    scale: usize,
    hull: Cell,
    pontryagin: Cell,
    ensemble: Cell,
    vertices: usize,
}

/// Median wall-clock of `samples` runs of `f`, in nanoseconds, alongside
/// the last run's result (the computations are deterministic, so every
/// run returns the same value).
fn median_wall_ns<T, F: FnMut() -> T>(samples: usize, mut f: F) -> (f64, T) {
    let mut timings = Vec::with_capacity(samples);
    let mut result = None;
    for _ in 0..samples {
        let start = Instant::now();
        result = Some(f());
        timings.push(start.elapsed().as_nanos() as f64);
    }
    timings.sort_by(f64::total_cmp);
    (timings[timings.len() / 2], result.expect("samples >= 1"))
}

/// Sweeps one scenario through the three methods.
fn measure_row(scenario: &mfu_lang::scenarios::Scenario) -> Result<Row, String> {
    let model = scenario
        .compile()
        .map_err(|e| format!("`{}` failed to compile: {e}", scenario.name()))?;
    let horizon = scenario.horizon();
    let objective = scenario.objective_coordinate();

    // Conservative models analyse in reduced coordinates (the last species
    // is eliminated); bounding that species needs the full drift. Same
    // selection rule as the CLI's `run --bound`.
    let reduced_dim = model.reduced_initial_state().dim();
    let (drift, x0) = if objective < reduced_dim {
        (model.reduced_drift(), model.reduced_initial_state())
    } else {
        (model.drift(), model.initial_state())
    };

    // Clamped to [0, 1] as the density interpretation demands (the same
    // choice as the steady-state figure): for wide parameter boxes the raw
    // hull ODE can exit the simplex and blow up (botnet's scan ∈ [0.5, 4]
    // does exactly that), and a bound outside [0, 1] carries no
    // information about an occupancy measure anyway.
    let (hull_wall, hull_bounds) = median_wall_ns(3, || {
        DifferentialHull::new(
            &drift,
            HullOptions {
                step: 1e-2,
                clamp: Some((0.0, 1.0)),
                ..HullOptions::default()
            },
        )
        .bounds(&x0, horizon)
    });
    let bounds = hull_bounds.map_err(|e| format!("`{}` hull failed: {e}", scenario.name()))?;
    let (hull_lo, hull_hi) = bounds.final_bounds();
    let hull = Cell {
        width: hull_hi[objective] - hull_lo[objective],
        wall_ns: hull_wall,
    };

    let (pmp_wall, pmp_extremes) = median_wall_ns(3, || {
        PontryaginSolver::new(PontryaginOptions::default())
            .coordinate_extremes(&drift, &x0, horizon, objective)
    });
    let (pmp_lo, pmp_hi) =
        pmp_extremes.map_err(|e| format!("`{}` Pontryagin failed: {e}", scenario.name()))?;
    let pontryagin = Cell {
        width: pmp_hi - pmp_lo,
        wall_ns: pmp_wall,
    };

    // Ensemble envelope: at every vertex of the parameter box run a seeded
    // τ-leap ensemble and take mean ± 2σ of the objective density at the
    // horizon; the envelope is the union over the vertices. This is the
    // simulation-side answer to "how uncertain is the model really" — the
    // extremes of a differential inclusion live on the parameter vertices
    // for monotone drifts, and the ± 2σ band adds the finite-N noise the
    // deterministic bounds ignore.
    let scale = scenario.default_scale().unwrap_or(1000);
    let population = model
        .population_model()
        .map_err(|e| format!("`{}` population model failed: {e}", scenario.name()))?;
    let simulator = Simulator::new(population, scale)
        .map_err(|e| format!("`{}` simulator failed: {e}", scenario.name()))?;
    let counts = model.initial_counts(scale);
    let sim_options = SimulationOptions::new(horizon)
        .record_stride(64)
        .algorithm(SimulationAlgorithm::TauLeap(TauLeapOptions::new(EPSILON)));
    let ensemble_options = EnsembleOptions {
        replications: REPLICATIONS,
        base_seed: BASE_SEED,
        grid_intervals: 10,
        ..EnsembleOptions::default()
    };
    let thetas = model.params().vertices();
    let vertices = thetas.len();
    let start = Instant::now();
    let mut env_lo = f64::INFINITY;
    let mut env_hi = f64::NEG_INFINITY;
    for theta in &thetas {
        let summary = run_ensemble(
            &simulator,
            &counts,
            || ConstantPolicy::new(theta.clone()),
            &sim_options,
            &ensemble_options,
        )
        .map_err(|e| format!("`{}` ensemble failed: {e}", scenario.name()))?;
        let last = summary.times().len() - 1;
        let mean = summary.mean_at(last)[objective];
        let sd = summary.std_dev_at(last)[objective];
        env_lo = env_lo.min(mean - 2.0 * sd);
        env_hi = env_hi.max(mean + 2.0 * sd);
    }
    let ensemble = Cell {
        width: env_hi - env_lo,
        wall_ns: start.elapsed().as_nanos() as f64,
    };

    Ok(Row {
        family: scenario.family().to_string(),
        name: scenario.name().to_string(),
        species: model.dim(),
        transitions: model.rules().len(),
        scale,
        hull,
        pontryagin,
        ensemble,
        vertices,
    })
}

/// Renders the report rows as the JSON document.
fn render_json(rows: &[Row], skipped: &[(String, usize)]) -> String {
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"scenario_matrix\",\n");
    json.push_str(
        "  \"units\": {\"wall_ns\": \"ns per cell (median of 3 for hull/pontryagin, \
         single pass for the ensemble)\", \"width\": \"upper - lower of the objective \
         density at the horizon\"},\n",
    );
    json.push_str(&format!(
        "  \"ensemble_config\": {{\"replications\": {REPLICATIONS}, \"base_seed\": {BASE_SEED}, \
         \"epsilon\": {EPSILON}, \"band\": \"mean +/- 2 sigma over the theta vertices\"}},\n"
    ));
    let skipped_lines: Vec<String> = skipped
        .iter()
        .map(|(name, dim)| {
            format!("    {{\"scenario\": \"{name}\", \"analysed_dim\": {dim}, \"reason\": \"hull corner enumeration is exponential in the dimension (> {MAX_MATRIX_DIM})\"}}")
        })
        .collect();
    json.push_str(&format!(
        "  \"skipped\": [\n{}\n  ],\n",
        skipped_lines.join(",\n")
    ));
    let row_blocks: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "    \"{}\": {{\n      \"family\": \"{}\",\n      \"species\": {},\n      \
                 \"transitions\": {},\n      \"scale\": {},\n      \"vertices\": {},\n      \
                 \"hull\": {{\"width\": {:.6}, \"wall_ns\": {:.0}}},\n      \
                 \"pontryagin\": {{\"width\": {:.6}, \"wall_ns\": {:.0}}},\n      \
                 \"ensemble\": {{\"width\": {:.6}, \"wall_ns\": {:.0}}}\n    }}",
                row.name,
                row.family,
                row.species,
                row.transitions,
                row.scale,
                row.vertices,
                row.hull.width,
                row.hull.wall_ns,
                row.pontryagin.width,
                row.pontryagin.wall_ns,
                row.ensemble.width,
                row.ensemble.wall_ns,
            )
        })
        .collect();
    json.push_str(&format!(
        "  \"matrix\": {{\n{}\n  }}\n}}\n",
        row_blocks.join(",\n")
    ));
    json
}

/// Formats a `wall_ns` leaf as milliseconds for the markdown table.
fn fmt_ms(wall_ns: f64) -> String {
    format!("{:.1}", wall_ns / 1e6)
}

/// Renders the matrix of an already-written report as a markdown table —
/// a pure function of the JSON text, so the same committed report renders
/// byte-identically on every machine.
fn render_markdown(report: &str) -> Result<String, String> {
    let doc = regression::parse(report)?;
    let matrix = doc
        .get("matrix")
        .and_then(|m| m.as_object())
        .ok_or("report has no `matrix` object")?;
    let mut rows: Vec<(String, String, &mfu_core::json::Json)> = matrix
        .iter()
        .map(|(name, entry)| {
            let family = entry
                .get("family")
                .and_then(|f| f.as_str())
                .unwrap_or("custom")
                .to_string();
            (family, name.clone(), entry)
        })
        .collect();
    rows.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    let mut out = String::new();
    out.push_str(
        "| Family | Scenario | Species | Hull width | Hull ms | Pontryagin width | \
         Pontryagin ms | Ensemble width | Ensemble ms |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for (family, name, entry) in &rows {
        let cell = |method: &str, leaf: &str| {
            entry
                .get(method)
                .and_then(|m| m.get(leaf))
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("`{name}` is missing `{method}.{leaf}`"))
        };
        let species = entry
            .get("species")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("`{name}` is missing `species`"))?;
        out.push_str(&format!(
            "| {family} | {name} | {species:.0} | {:.4} | {} | {:.4} | {} | {:.4} | {} |\n",
            cell("hull", "width")?,
            fmt_ms(cell("hull", "wall_ns")?),
            cell("pontryagin", "width")?,
            fmt_ms(cell("pontryagin", "wall_ns")?),
            cell("ensemble", "width")?,
            fmt_ms(cell("ensemble", "wall_ns")?),
        ));
    }
    if let Some(skipped) = doc.get("skipped").and_then(|s| s.as_array()) {
        let notes: Vec<String> = skipped
            .iter()
            .filter_map(|entry| {
                let name = entry.get("scenario")?.as_str()?;
                let dim = entry.get("analysed_dim")?.as_f64()?;
                Some(format!("`{name}` ({dim:.0}-dimensional)"))
            })
            .collect();
        if !notes.is_empty() {
            out.push_str(&format!(
                "\nSkipped (hull corner enumeration is exponential in the dimension, \
                 cap {MAX_MATRIX_DIM}): {}.\n",
                notes.join(", ")
            ));
        }
    }
    Ok(out)
}

/// Markers delimiting the generated block inside `docs/SCENARIOS.md`.
const BLOCK_BEGIN: &str = "<!-- scenario-matrix:begin -->";
const BLOCK_END: &str = "<!-- scenario-matrix:end -->";

/// Extracts the marker-delimited generated block of a documentation page.
fn extract_block(doc: &str) -> Result<&str, String> {
    let start = doc
        .find(BLOCK_BEGIN)
        .ok_or_else(|| format!("document has no `{BLOCK_BEGIN}` marker"))?
        + BLOCK_BEGIN.len();
    let end = doc[start..]
        .find(BLOCK_END)
        .ok_or_else(|| format!("document has no `{BLOCK_END}` marker"))?;
    Ok(doc[start..start + end].trim_matches('\n'))
}

/// `--check` mode: compare the `wall_ns` leaves of two written reports.
fn run_check(baseline_path: &str, current_path: &str, tolerance: f64) -> Result<bool, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline `{baseline_path}`: {e}"))?;
    let current = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read current report `{current_path}`: {e}"))?;
    let comparison = regression::compare(&baseline, &current, tolerance)?;
    println!(
        "scenario-matrix guard: {} shared timing metrics within {:.0}% of `{baseline_path}`",
        comparison.passed,
        tolerance * 100.0
    );
    for path in &comparison.unmatched {
        println!("  (unmatched, ignored) {path}");
    }
    for regression in &comparison.regressions {
        println!(
            "  REGRESSION {}: {:.0} ns -> {:.0} ns ({:+.0}%)",
            regression.path,
            regression.baseline,
            regression.current,
            (regression.current / regression.baseline - 1.0) * 100.0
        );
    }
    Ok(comparison.regressions.is_empty())
}

/// Parsed command line.
enum Mode {
    /// Sweep the registry and (over)write the report.
    Measure,
    /// Regression-gate a fresh report against a committed baseline.
    Check {
        baseline: String,
        current: String,
        tolerance: f64,
    },
    /// Render the committed report as markdown; with `check`, verify the
    /// marker-delimited block of the given document instead of printing.
    Markdown {
        current: String,
        check: Option<String>,
    },
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut markdown = false;
    let mut check = None;
    let mut current = "BENCH_scenario_matrix.json".to_string();
    let mut tolerance: f64 = 0.5;
    let mut saw_tuning = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("`{flag}` needs {what}"))
                .cloned()
        };
        match flag.as_str() {
            "--markdown" => markdown = true,
            "--check" => check = Some(value("a baseline or document path")?),
            "--current" => {
                current = value("a report path")?;
                saw_tuning = true;
            }
            "--tolerance" => {
                tolerance = value("a relative tolerance")?
                    .parse()
                    .map_err(|e| format!("`--tolerance`: {e}"))?;
                if !(tolerance >= 0.0 && tolerance.is_finite()) {
                    return Err("`--tolerance` must be a non-negative number".into());
                }
                saw_tuning = true;
            }
            other => {
                return Err(format!(
                    "unknown option `{other}` (expected --check <baseline.json> \
                     [--tolerance <rel>] [--current <report.json>] or \
                     --markdown [--check <doc.md>] [--current <report.json>])"
                ))
            }
        }
    }
    match (markdown, check) {
        (true, check) => {
            if tolerance != 0.5 {
                return Err("`--tolerance` does not apply to --markdown mode".into());
            }
            Ok(Mode::Markdown { current, check })
        }
        (false, Some(baseline)) => Ok(Mode::Check {
            baseline,
            current,
            tolerance,
        }),
        // without --check/--markdown the binary measures and OVERWRITES the
        // report, so stray check-only flags must not be silently ignored
        (false, None) if saw_tuning => Err("`--tolerance`/`--current` only apply to \
             --check/--markdown mode; add one of those or drop them"
            .into()),
        (false, None) => Ok(Mode::Measure),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args)? {
        Mode::Check {
            baseline,
            current,
            tolerance,
        } => {
            if run_check(&baseline, &current, tolerance)? {
                return Ok(());
            }
            eprintln!("scenario-matrix regression guard failed");
            std::process::exit(1);
        }
        Mode::Markdown { current, check } => {
            let report = std::fs::read_to_string(&current)
                .map_err(|e| format!("cannot read report `{current}`: {e}"))?;
            let table = render_markdown(&report)?;
            match check {
                None => print!("{table}"),
                Some(doc_path) => {
                    let doc = std::fs::read_to_string(&doc_path)
                        .map_err(|e| format!("cannot read document `{doc_path}`: {e}"))?;
                    let block = extract_block(&doc)?;
                    if block != table.trim_matches('\n') {
                        eprintln!(
                            "`{doc_path}` is stale: its scenario-matrix block does not \
                             match the rendering of `{current}`.\nRegenerate with:\n  \
                             cargo run --release -p mfu-bench --bin scenario_matrix -- \
                             --markdown\nand paste the output between the \
                             `scenario-matrix` markers."
                        );
                        std::process::exit(1);
                    }
                    println!("`{doc_path}` scenario-matrix block matches `{current}`");
                }
            }
            return Ok(());
        }
        Mode::Measure => {}
    }

    let registry = ScenarioRegistry::with_builtins();
    let mut scenarios: Vec<_> = registry.iter().collect();
    scenarios.sort_by_key(|s| (s.family().to_string(), s.name().to_string()));
    let mut rows = Vec::new();
    let mut skipped = Vec::new();
    for scenario in scenarios {
        let model = scenario.compile()?;
        let reduced_dim = model.reduced_initial_state().dim();
        let analysed_dim = if scenario.objective_coordinate() < reduced_dim {
            reduced_dim
        } else {
            model.dim()
        };
        if analysed_dim > MAX_MATRIX_DIM {
            eprintln!(
                "skipping `{}`: analysed drift is {analysed_dim}-dimensional \
                 (cap {MAX_MATRIX_DIM})",
                scenario.name()
            );
            skipped.push((scenario.name().to_string(), analysed_dim));
            continue;
        }
        eprintln!("measuring `{}` ...", scenario.name());
        rows.push(measure_row(scenario)?);
    }

    let json = render_json(&rows, &skipped);
    println!("{json}");
    std::fs::write("BENCH_scenario_matrix.json", &json)?;
    eprintln!(
        "wrote BENCH_scenario_matrix.json ({} scenarios)",
        rows.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal two-row report for the rendering tests.
    fn sample_report() -> String {
        let rows = vec![
            Row {
                family: "queueing".into(),
                name: "pod_choices_d2".into(),
                species: 5,
                transitions: 8,
                scale: 1000,
                hull: Cell {
                    width: 0.25,
                    wall_ns: 2.0e6,
                },
                pontryagin: Cell {
                    width: 0.125,
                    wall_ns: 40.0e6,
                },
                ensemble: Cell {
                    width: 0.1,
                    wall_ns: 300.0e6,
                },
                vertices: 2,
            },
            Row {
                family: "epidemic".into(),
                name: "sir".into(),
                species: 3,
                transitions: 2,
                scale: 1000,
                hull: Cell {
                    width: 0.5,
                    wall_ns: 1.0e6,
                },
                pontryagin: Cell {
                    width: 0.25,
                    wall_ns: 30.0e6,
                },
                ensemble: Cell {
                    width: 0.2,
                    wall_ns: 200.0e6,
                },
                vertices: 2,
            },
        ];
        render_json(&rows, &[("grid_6x6".into(), 35)])
    }

    #[test]
    fn report_json_parses_and_gates_only_wall_leaves() {
        let json = sample_report();
        let leaves = regression::numeric_leaves(&regression::parse(&json).unwrap());
        assert_eq!(leaves["matrix.sir.hull.width"], 0.5);
        assert_eq!(leaves["matrix.sir.hull.wall_ns"], 1.0e6);
        // the guard compares a report against itself cleanly, and the only
        // gated leaves are the wall clocks (widths are checked by the
        // markdown staleness gate, not by a timing tolerance)
        let comparison = regression::compare(&json, &json, 0.5).unwrap();
        assert!(comparison.regressions.is_empty());
        assert_eq!(comparison.passed, 6);
    }

    #[test]
    fn markdown_rendering_is_family_sorted_and_deterministic() {
        let table = render_markdown(&sample_report()).unwrap();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("| Family | Scenario | Species |"));
        // epidemic sorts before queueing regardless of JSON insertion order
        assert!(lines[2].starts_with("| epidemic | sir | 3 | 0.5000 | 1.0 |"));
        assert!(lines[3].starts_with("| queueing | pod_choices_d2 | 5 | 0.2500 | 2.0 |"));
        assert!(table.contains("Skipped"));
        assert!(table.contains("`grid_6x6` (35-dimensional)"));
        assert_eq!(table, render_markdown(&sample_report()).unwrap());
    }

    #[test]
    fn staleness_block_round_trips_through_a_document() {
        let table = render_markdown(&sample_report()).unwrap();
        let doc = format!("# Scenarios\n\nprose\n\n{BLOCK_BEGIN}\n{table}\n{BLOCK_END}\n\nmore\n");
        assert_eq!(extract_block(&doc).unwrap(), table.trim_matches('\n'));
        assert!(extract_block("no markers here").is_err());
    }

    #[test]
    fn arg_parsing_covers_the_three_modes() {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(parse_args(&[]).unwrap(), Mode::Measure));
        match parse_args(&s(&["--check", "b.json", "--tolerance", "0.4"])).unwrap() {
            Mode::Check {
                baseline,
                current,
                tolerance,
            } => {
                assert_eq!(baseline, "b.json");
                assert_eq!(current, "BENCH_scenario_matrix.json");
                assert!((tolerance - 0.4).abs() < 1e-12);
            }
            _ => panic!("expected check mode"),
        }
        match parse_args(&s(&["--markdown", "--check", "docs/SCENARIOS.md"])).unwrap() {
            Mode::Markdown { current, check } => {
                assert_eq!(current, "BENCH_scenario_matrix.json");
                assert_eq!(check.as_deref(), Some("docs/SCENARIOS.md"));
            }
            _ => panic!("expected markdown mode"),
        }
        // stray tuning flags without a mode must not silently measure
        assert!(parse_args(&s(&["--tolerance", "0.1"])).is_err());
        assert!(parse_args(&s(&["--markdown", "--tolerance", "0.1"])).is_err());
        assert!(parse_args(&s(&["--bogus"])).is_err());
    }
}
