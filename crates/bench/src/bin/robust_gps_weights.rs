//! Section VI-C: robust tuning of the GPS weights.
//!
//! The design question is the value of `φ_1/φ_2` minimising the worst-case
//! total queue length `max_ϑ (Q_1 + Q_2)(T)`, where the inner maximisation is
//! the Pontryagin sweep over the imprecise job-creation rates. The paper
//! reports a convex dependence with the optimum near `φ_1 = 9 φ_2`.
//!
//! The paper does not report the machine capacity `C`; the location of the
//! optimum depends on it. This binary therefore sweeps `φ_1` for the default
//! capacity (`C` equal to the per-class population) and for a congested
//! configuration (a quarter of that capacity) and reports the robust optimum
//! for both; `EXPERIMENTS.md` discusses the comparison with the paper.
//!
//! Run with `cargo run --release -p mfu-bench --bin robust_gps_weights`.

use mfu_bench::{print_header, print_row, print_section};
use mfu_core::pontryagin::{LinearObjective, PontryaginOptions, PontryaginSolver};
use mfu_core::robust::{minimize_worst_case, RobustOptions};
use mfu_core::CoreError;
use mfu_models::gps::GpsModel;
use mfu_num::StateVec;

fn worst_case_backlog(phi1: f64, capacity: f64, horizon: f64) -> Result<f64, CoreError> {
    let gps = GpsModel {
        weights: [phi1, 1.0],
        capacity,
        ..GpsModel::paper()
    };
    let drift = gps.map_drift();
    let solver = PontryaginSolver::new(PontryaginOptions {
        grid_intervals: 150,
        multi_start: true,
        ..Default::default()
    });
    let objective = LinearObjective::maximize(StateVec::from(vec![0.0, 1.0, 0.0, 1.0]));
    let solution = solver.solve(&drift, &gps.map_initial_state(), horizon, objective)?;
    Ok(solution.objective_value())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = 5.0;
    println!("# Section VI-C: robust tuning of the GPS weight phi1 (phi2 = 1, MAP scenario, T = {horizon})");

    for &capacity in &[1.0, 0.25] {
        print_section(&format!(
            "machine capacity per application C/N = {capacity}"
        ));
        print_header(&["phi1", "worst_case_total_queue"]);
        for &phi1 in &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 9.0, 10.0, 12.0, 16.0, 20.0] {
            let backlog = worst_case_backlog(phi1, capacity, horizon)?;
            print_row(&[phi1, backlog]);
        }
        let robust = RobustOptions {
            coarse_grid: 12,
            design_tolerance: 0.05,
            ..Default::default()
        };
        let best = minimize_worst_case(1.0, 20.0, &robust, |phi1| {
            worst_case_backlog(phi1, capacity, horizon)
        })?;
        println!(
            "# robust optimum: phi1 = {:.2} with worst-case total queue {:.4} ({} evaluations)",
            best.design, best.worst_case, best.evaluations
        );
    }

    println!();
    println!("# The paper reports the optimum near phi1 = 9.0 for its (unreported) capacity.");
    Ok(())
}
