//! Figure 7: maximal queue lengths of the closed GPS network as functions of
//! time, for the uncertain and imprecise models, under Poisson and MAP job
//! creation.
//!
//! Paper setting: µ = (5, 1), φ = (1, 1), λ1 ∈ [1, 7], λ2 ∈ [2, 3],
//! a = (1, 2), Q(0) = (0.1, 0.1), horizon T = 5. The headline observations
//! are (i) with Poisson creation the uncertain and imprecise maxima coincide,
//! and (ii) with MAP creation the imprecise maximum is significantly larger
//! than the uncertain one.
//!
//! Run with `cargo run --release -p mfu-bench --bin fig7_gps_queue_bounds`.

use mfu_bench::{print_header, print_row, print_section};
use mfu_core::drift::ImpreciseDrift;
use mfu_core::pontryagin::PontryaginOptions;
use mfu_core::reachability::{reach_tube, ReachTubeOptions};
use mfu_core::uncertain::UncertainAnalysis;
use mfu_models::gps::GpsModel;
use mfu_num::StateVec;

fn report_scenario<D: ImpreciseDrift + Sync>(
    label: &str,
    drift: &D,
    x0: &StateVec,
    queue_coords: [usize; 2],
    horizon: f64,
    time_points: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let uncertain = UncertainAnalysis {
        grid_per_axis: 6,
        time_intervals: time_points,
        step: 2e-3,
    };
    let envelope = uncertain.envelope(drift, x0, horizon)?;

    let tube_options = ReachTubeOptions {
        time_points,
        pontryagin: PontryaginOptions {
            grid_intervals: 200,
            multi_start: true,
            ..Default::default()
        },
    };
    let tube_q1 = reach_tube(drift, x0, horizon, queue_coords[0], &tube_options)?;
    let tube_q2 = reach_tube(drift, x0, horizon, queue_coords[1], &tube_options)?;

    print_section(label);
    print_header(&[
        "t",
        "Q1_max_uncertain",
        "Q1_max_imprecise",
        "Q2_max_uncertain",
        "Q2_max_imprecise",
        "Q1_min_uncertain",
        "Q1_min_imprecise",
        "Q2_min_uncertain",
        "Q2_min_imprecise",
    ]);
    for k in 0..time_points {
        let t = tube_q1.times()[k];
        print_row(&[
            t,
            envelope.upper()[k + 1][queue_coords[0]],
            tube_q1.upper()[k],
            envelope.upper()[k + 1][queue_coords[1]],
            tube_q2.upper()[k],
            envelope.lower()[k + 1][queue_coords[0]],
            tube_q1.lower()[k],
            envelope.lower()[k + 1][queue_coords[1]],
            tube_q2.lower()[k],
        ]);
    }
    let last = time_points - 1;
    println!(
        "# summary ({label}): at T the imprecise Q1 max exceeds the uncertain one by {:.4}, Q2 by {:.4}",
        tube_q1.upper()[last] - envelope.upper()[time_points][queue_coords[0]],
        tube_q2.upper()[last] - envelope.upper()[time_points][queue_coords[1]],
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gps = GpsModel::paper();
    let horizon = 5.0;
    let time_points = 20;

    println!("# Figure 7: GPS maximal queue lengths, uncertain vs imprecise");

    // (a) Poisson job creation: 2-dimensional mean field on (q1, q2).
    let poisson_drift = gps.poisson_drift();
    report_scenario(
        "(a) Poisson arrivals",
        &poisson_drift,
        &gps.poisson_initial_state(),
        [0, 1],
        horizon,
        time_points,
    )?;

    // (b) MAP job creation: 4-dimensional mean field on (d1, q1, d2, q2).
    let map_drift = gps.map_drift();
    report_scenario(
        "(b) Markov arrival process",
        &map_drift,
        &gps.map_initial_state(),
        [1, 3],
        horizon,
        time_points,
    )?;

    println!();
    println!(
        "# reading guide: in (a) the imprecise and uncertain maxima should (nearly) coincide;"
    );
    println!(
        "# in (b) the imprecise maxima exceed every constant-rate maximum — the delay introduced"
    );
    println!("# by the activation stage lets a time-varying rate build up bursts.");
    Ok(())
}
