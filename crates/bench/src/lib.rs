//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every figure of the paper's evaluation section has a dedicated binary in
//! `src/bin/` that prints the corresponding data series as aligned
//! tab-separated columns (one row per plotted abscissa). `EXPERIMENTS.md` at
//! the repository root records the qualitative comparison between these
//! series and the published figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a table header: a `#`-prefixed tab-separated row of column names.
pub fn print_header(columns: &[&str]) {
    println!("# {}", columns.join("\t"));
}

/// Prints one tab-separated data row with six-decimal formatting.
pub fn print_row(values: &[f64]) {
    let formatted: Vec<String> = values.iter().map(|v| format!("{v:.6}")).collect();
    println!("{}", formatted.join("\t"));
}

/// Prints a section banner so that multi-part figure outputs stay readable.
pub fn print_section(title: &str) {
    println!();
    println!("## {title}");
}

/// DSL source of a closed `sites`-species migration ring: species `X0…Xn`,
/// one mass-action rule per edge (`Xi -> Xi+1 @ rate · Xi`, with the first
/// edge driven by an imprecise parameter). With many sites, firing one edge
/// only perturbs two propensities, which makes the ring the canonical
/// workload for the dependency-graph SSA path.
///
/// # Panics
///
/// Panics if `sites < 2`.
pub fn ring_model_source(sites: usize) -> String {
    assert!(sites >= 2, "a ring needs at least two sites");
    let mut source = String::from("model ring;\nspecies ");
    for i in 0..sites {
        if i > 0 {
            source.push_str(", ");
        }
        source.push_str(&format!("X{i}"));
    }
    source.push_str(";\nparam drive in [0.5, 2];\n");
    for i in 0..sites {
        let next = (i + 1) % sites;
        let rate = if i == 0 {
            format!("drive * X{i}")
        } else {
            // deterministic per-edge rates keep the ring mildly heterogeneous
            format!("{} * X{i}", 1.0 + 0.1 * (i % 5) as f64)
        };
        source.push_str(&format!("rule hop{i}: X{i} -> X{next} @ {rate};\n"));
    }
    source.push_str("init ");
    let share = 1.0 / sites as f64;
    for i in 0..sites {
        if i > 0 {
            source.push_str(", ");
        }
        source.push_str(&format!("X{i} = {share}"));
    }
    source.push_str(";\n");
    source
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic() {
        print_header(&["t", "lower", "upper"]);
        print_row(&[0.0, 1.0, 2.0]);
        print_section("part (a)");
    }

    #[test]
    fn ring_model_compiles_with_sparse_dependencies() {
        let model = mfu_lang::compile(&ring_model_source(12)).unwrap();
        assert_eq!(model.dim(), 12);
        assert!(model.is_conservative());
        let population = model.population_model().unwrap();
        assert_eq!(population.transitions().len(), 12);
        let simulator = mfu_sim::gillespie::Simulator::new(population, 1200).unwrap();
        assert!(simulator.has_sparse_dependencies());
        // firing one hop perturbs exactly two propensities
        assert_eq!(simulator.dependency_graph()[3], vec![3, 4]);
        let counts = model.initial_counts(1200);
        assert_eq!(counts.iter().sum::<i64>(), 1200);
    }
}
