//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every figure of the paper's evaluation section has a dedicated binary in
//! `src/bin/` that prints the corresponding data series as aligned
//! tab-separated columns (one row per plotted abscissa). `EXPERIMENTS.md` at
//! the repository root records the qualitative comparison between these
//! series and the published figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a table header: a `#`-prefixed tab-separated row of column names.
pub fn print_header(columns: &[&str]) {
    println!("# {}", columns.join("\t"));
}

/// Prints one tab-separated data row with six-decimal formatting.
pub fn print_row(values: &[f64]) {
    let formatted: Vec<String> = values.iter().map(|v| format!("{v:.6}")).collect();
    println!("{}", formatted.join("\t"));
}

/// Prints a section banner so that multi-part figure outputs stay readable.
pub fn print_section(title: &str) {
    println!();
    println!("## {title}");
}

/// Bench-regression guard: parse `BENCH_*.json` reports and compare their
/// timing metrics against a committed baseline.
///
/// The JSON value type, reader and `numeric_leaves` flattener are
/// re-exported from [`mfu_core::json`] — the workspace-wide JSON layer
/// with the escaping-correct writer shared by `BoundArtifact` and the
/// `mfu-serve` line framing — so the guard reads exactly what the report
/// binaries emit. This module adds only the comparison rule CI enforces:
/// every gated metric present in *both* reports may grow by at most the
/// given relative tolerance.
pub mod regression {
    pub use mfu_core::json::{numeric_leaves, parse, Json};

    /// One metric that regressed beyond the tolerance.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// Dotted path of the metric inside the report.
        pub path: String,
        /// Baseline value (nanoseconds).
        pub baseline: f64,
        /// Current value (nanoseconds).
        pub current: f64,
    }

    /// Outcome of a baseline comparison.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Comparison {
        /// Metrics present in both reports and within tolerance.
        pub passed: usize,
        /// Metrics that regressed beyond the tolerance, worst first.
        pub regressions: Vec<Regression>,
        /// Metric paths present in only one of the two reports (new or
        /// retired sections — informational, never a failure).
        pub unmatched: Vec<String>,
    }

    /// Compares the gated metrics of `current` against `baseline`: a metric
    /// fails when it exceeds `baseline · (1 + tolerance)`. Gated leaves are
    /// the timing keys (ending `_ns` — per-event and per-eval costs) and
    /// the derived engine-counter keys (ending `_per_event`, `_rate` or
    /// `_ratio` — e.g. propensity re-evaluations per event, the
    /// composition–rejection rejection rate, the metrics-on/off overhead
    /// ratio). Metrics present in only one report are listed as unmatched
    /// so a report gaining a section cannot fail the guard retroactively.
    ///
    /// # Errors
    ///
    /// Returns a parse error if either document is malformed.
    pub fn compare(baseline: &str, current: &str, tolerance: f64) -> Result<Comparison, String> {
        let base = numeric_leaves(&parse(baseline)?);
        let cur = numeric_leaves(&parse(current)?);
        let is_timing = |path: &str| {
            path.rsplit('.').next().is_some_and(|leaf| {
                leaf.ends_with("_ns")
                    || leaf.ends_with("_per_event")
                    || leaf.ends_with("_rate")
                    || leaf.ends_with("_ratio")
            })
        };
        let mut comparison = Comparison {
            passed: 0,
            regressions: Vec::new(),
            unmatched: Vec::new(),
        };
        for (path, &base_value) in base.iter().filter(|(p, _)| is_timing(p)) {
            match cur.get(path) {
                Some(&cur_value) => {
                    if cur_value > base_value * (1.0 + tolerance) {
                        comparison.regressions.push(Regression {
                            path: path.clone(),
                            baseline: base_value,
                            current: cur_value,
                        });
                    } else {
                        comparison.passed += 1;
                    }
                }
                None => comparison.unmatched.push(path.clone()),
            }
        }
        for path in cur.keys().filter(|p| is_timing(p)) {
            if !base.contains_key(path) {
                comparison.unmatched.push(path.clone());
            }
        }
        comparison
            .regressions
            .sort_by(|a, b| (b.current / b.baseline).total_cmp(&(a.current / a.baseline)));
        Ok(comparison)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic() {
        print_header(&["t", "lower", "upper"]);
        print_row(&[0.0, 1.0, 2.0]);
        print_section("part (a)");
    }

    #[test]
    fn json_round_trip_and_leaf_flattening() {
        use super::regression::{numeric_leaves, parse, Json};
        let doc = r#"{
          "benchmark": "rate_engine",
          "units": {"eval_ns": "ns/eval"},
          "ssa": {"ring": {"scale": 4800, "linear": {"step_ns": 1.5e2, "events": 22543}}},
          "list": [1, 2.5, {"x_ns": -3e-1}],
          "flags": {"ok": true, "nothing": null}
        }"#;
        let parsed = parse(doc).unwrap();
        assert!(matches!(parsed, Json::Object(_)));
        let leaves = numeric_leaves(&parsed);
        assert_eq!(leaves["ssa.ring.scale"], 4800.0);
        assert_eq!(leaves["ssa.ring.linear.step_ns"], 150.0);
        assert_eq!(leaves["ssa.ring.linear.events"], 22543.0);
        assert_eq!(leaves["list.0"], 1.0);
        assert_eq!(leaves["list.2.x_ns"], -0.3);
        assert!(!leaves.contains_key("benchmark"));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn regression_guard_compares_only_shared_timing_keys() {
        use super::regression::compare;
        let baseline = r#"{"ssa": {"a": {"step_ns": 100.0, "events": 10},
                                    "gone": {"step_ns": 50.0}},
                           "rate_eval": {"vm_eval_ns": 4.0, "speedup": 3.0}}"#;
        // step_ns +20% (within 25%), vm_eval_ns +50% (regressed);
        // `events` and `speedup` are not timing keys and never compared;
        // a section may disappear or appear without failing the guard
        let current = r#"{"ssa": {"a": {"step_ns": 120.0, "events": 99},
                                   "new": {"step_ns": 1000.0}},
                          "rate_eval": {"vm_eval_ns": 6.0, "speedup": 0.1}}"#;
        let report = compare(baseline, current, 0.25).unwrap();
        assert_eq!(report.passed, 1);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].path, "rate_eval.vm_eval_ns");
        assert_eq!(report.unmatched.len(), 2, "{:?}", report.unmatched);
        // a faster current run passes trivially
        let report = compare(baseline, baseline, 0.0).unwrap();
        assert!(report.regressions.is_empty());
        assert_eq!(report.passed, 3);
    }

    #[test]
    fn regression_guard_gates_derived_counter_ratios() {
        use super::regression::compare;
        let baseline = r#"{"counters": {"ring": {
            "propensity_evals_per_event": 3.0,
            "cr_rejection_rate": 0.10,
            "overhead_ratio": 1.00,
            "tau_halvings_rate": 0.0,
            "events": 1000}}}"#;
        // evals/event +10% passes at 25%, rejection rate +100% fails, a
        // zero baseline fails on ANY increase (the τ-halvings invariant),
        // and plain counts (`events`) are never gated
        let current = r#"{"counters": {"ring": {
            "propensity_evals_per_event": 3.3,
            "cr_rejection_rate": 0.20,
            "overhead_ratio": 1.02,
            "tau_halvings_rate": 0.001,
            "events": 999999}}}"#;
        let report = compare(baseline, current, 0.25).unwrap();
        assert_eq!(report.passed, 2);
        let failed: Vec<&str> = report.regressions.iter().map(|r| r.path.as_str()).collect();
        assert!(
            failed.contains(&"counters.ring.cr_rejection_rate"),
            "{failed:?}"
        );
        assert!(
            failed.contains(&"counters.ring.tau_halvings_rate"),
            "{failed:?}"
        );
        assert_eq!(report.regressions.len(), 2);
    }

    #[test]
    fn the_committed_baseline_parses_and_carries_timing_metrics() {
        // the CI guard is only as good as the committed baseline: it must
        // stay parseable by this reader and keep its `_ns` leaves
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rate_engine.json");
        let text = std::fs::read_to_string(path).expect("baseline readable");
        let leaves = super::regression::numeric_leaves(&super::regression::parse(&text).unwrap());
        let timing = leaves.keys().filter(|k| k.ends_with("_ns")).count();
        assert!(timing >= 10, "only {timing} timing metrics in the baseline");
        let gated = leaves
            .keys()
            .filter(|k| {
                k.ends_with("_ns")
                    || k.ends_with("_per_event")
                    || k.ends_with("_rate")
                    || k.ends_with("_ratio")
            })
            .count();
        assert!(
            gated > timing,
            "the counters section must contribute gated ratio metrics"
        );
        let report = super::regression::compare(&text, &text, 0.25).unwrap();
        assert!(report.regressions.is_empty());
        assert_eq!(report.passed, gated);
    }

    #[test]
    fn generated_ring_has_sparse_dependencies() {
        // the generator itself lives in `mfu_lang::scenarios` (it is a
        // registry citizen now); what matters to the benches is that the
        // simulator sees a genuinely sparse dependency graph
        let model = mfu_lang::compile(&mfu_lang::scenarios::ring_source(12)).unwrap();
        let simulator =
            mfu_sim::gillespie::Simulator::new(model.population_model().unwrap(), 1200).unwrap();
        assert!(simulator.has_sparse_dependencies());
        // firing one hop perturbs exactly two propensities
        assert_eq!(simulator.dependency_graph()[3], vec![3, 4]);
    }
}
