//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every figure of the paper's evaluation section has a dedicated binary in
//! `src/bin/` that prints the corresponding data series as aligned
//! tab-separated columns (one row per plotted abscissa). `EXPERIMENTS.md` at
//! the repository root records the qualitative comparison between these
//! series and the published figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a table header: a `#`-prefixed tab-separated row of column names.
pub fn print_header(columns: &[&str]) {
    println!("# {}", columns.join("\t"));
}

/// Prints one tab-separated data row with six-decimal formatting.
pub fn print_row(values: &[f64]) {
    let formatted: Vec<String> = values.iter().map(|v| format!("{v:.6}")).collect();
    println!("{}", formatted.join("\t"));
}

/// Prints a section banner so that multi-part figure outputs stay readable.
pub fn print_section(title: &str) {
    println!();
    println!("## {title}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_do_not_panic() {
        print_header(&["t", "lower", "upper"]);
        print_row(&[0.0, 1.0, 2.0]);
        print_section("part (a)");
    }

    #[test]
    fn generated_ring_has_sparse_dependencies() {
        // the generator itself lives in `mfu_lang::scenarios` (it is a
        // registry citizen now); what matters to the benches is that the
        // simulator sees a genuinely sparse dependency graph
        let model = mfu_lang::compile(&mfu_lang::scenarios::ring_source(12)).unwrap();
        let simulator =
            mfu_sim::gillespie::Simulator::new(model.population_model().unwrap(), 1200).unwrap();
        assert!(simulator.has_sparse_dependencies());
        // firing one hop perturbs exactly two propensities
        assert_eq!(simulator.dependency_graph()[3], vec![3, 4]);
    }
}
