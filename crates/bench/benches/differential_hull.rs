//! Cost of the differential-hull over-approximation (Figures 4 and 5), as a
//! function of the state dimension (SIR: 2, GPS MAP: 4).

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_core::hull::{DifferentialHull, HullOptions};
use mfu_models::gps::GpsModel;
use mfu_models::sir::SirModel;
use std::hint::black_box;

fn bench_hull(c: &mut Criterion) {
    let mut group = c.benchmark_group("differential_hull");
    group.sample_size(10);

    group.bench_function("sir_2d_T10", |b| {
        let sir = SirModel::paper_with_contact_max(2.0);
        let drift = sir.reduced_drift();
        let x0 = sir.reduced_initial_state();
        let hull = DifferentialHull::new(
            &drift,
            HullOptions {
                step: 1e-2,
                time_intervals: 50,
                ..Default::default()
            },
        );
        b.iter(|| hull.bounds(black_box(&x0), 10.0).unwrap())
    });

    group.bench_function("gps_map_4d_T5", |b| {
        let gps = GpsModel::paper();
        let drift = gps.map_drift();
        let x0 = gps.map_initial_state();
        let hull = DifferentialHull::new(
            &drift,
            HullOptions {
                step: 1e-2,
                time_intervals: 50,
                clamp: Some((0.0, 1.0)),
                ..Default::default()
            },
        );
        b.iter(|| hull.bounds(black_box(&x0), 5.0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_hull);
criterion_main!(benches);
