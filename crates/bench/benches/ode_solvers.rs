//! Performance of the ODE integrators on the SIR mean field (the inner loop
//! of every analysis in the workspace).

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_core::drift::ImpreciseDrift;
use mfu_models::sir::SirModel;
use mfu_num::ode::{Dopri45, Euler, FnSystem, Integrator, Rk4};
use mfu_num::StateVec;
use std::hint::black_box;

fn sir_system(theta: f64) -> FnSystem<impl Fn(f64, &StateVec, &mut StateVec)> {
    let sir = SirModel::paper();
    let drift = sir.reduced_drift();
    FnSystem::new(2, move |_t, x: &StateVec, dx: &mut StateVec| {
        drift.drift_into(x, &[theta], dx)
    })
}

fn bench_ode_solvers(c: &mut Criterion) {
    let x0 = SirModel::paper().reduced_initial_state();
    let mut group = c.benchmark_group("ode_solvers_sir_t10");
    group.sample_size(20);

    group.bench_function("euler_h1e-3", |b| {
        let system = sir_system(5.0);
        b.iter(|| {
            Euler::with_step(1e-3)
                .final_state(&system, 0.0, black_box(x0.clone()), 10.0)
                .unwrap()
        })
    });
    group.bench_function("rk4_h1e-2", |b| {
        let system = sir_system(5.0);
        b.iter(|| {
            Rk4::with_step(1e-2)
                .final_state(&system, 0.0, black_box(x0.clone()), 10.0)
                .unwrap()
        })
    });
    group.bench_function("dopri45_default", |b| {
        let system = sir_system(5.0);
        b.iter(|| {
            Dopri45::default()
                .final_state(&system, 0.0, black_box(x0.clone()), 10.0)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ode_solvers);
criterion_main!(benches);
