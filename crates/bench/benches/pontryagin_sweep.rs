//! Cost of the Pontryagin forward–backward sweep (the workhorse of the
//! transient bounds of Figures 1, 2, 4 and 7).

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mfu_models::gps::GpsModel;
use mfu_models::sir::SirModel;
use std::hint::black_box;

fn bench_pontryagin(c: &mut Criterion) {
    let mut group = c.benchmark_group("pontryagin_sweep");
    group.sample_size(10);

    for &grid in &[100usize, 400] {
        group.bench_function(format!("sir_maximize_xI_T3_grid{grid}"), |b| {
            let sir = SirModel::paper();
            let drift = sir.reduced_drift();
            let x0 = sir.reduced_initial_state();
            let solver = PontryaginSolver::new(PontryaginOptions {
                grid_intervals: grid,
                ..Default::default()
            });
            b.iter(|| {
                solver
                    .maximize_coordinate(&drift, black_box(&x0), 3.0, 1)
                    .unwrap()
            })
        });
    }

    group.bench_function("gps_map_maximize_Q2_T5_grid150", |b| {
        let gps = GpsModel::paper();
        let drift = gps.map_drift();
        let x0 = gps.map_initial_state();
        let solver = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 150,
            ..Default::default()
        });
        b.iter(|| {
            solver
                .maximize_coordinate(&drift, black_box(&x0), 5.0, 3)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pontryagin);
criterion_main!(benches);
