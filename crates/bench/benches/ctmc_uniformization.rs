//! Cost of exact CTMC analysis (uniformization and stationary solution) on
//! the finite bike-sharing chain, as a function of the station capacity.

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_ctmc::finite::{ExpansionOptions, FiniteChain};
use mfu_models::bike::BikeStationModel;
use std::hint::black_box;

fn bench_uniformization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_bike_station");
    group.sample_size(20);
    let bike = BikeStationModel::symmetric();
    let model = bike.population_model().unwrap();

    for &racks in &[20usize, 100, 400] {
        let chain = FiniteChain::expand(
            &model,
            racks,
            &bike.initial_counts(racks),
            &[1.0, 1.0],
            &ExpansionOptions::default(),
        )
        .unwrap();
        let initial = chain.initial_distribution();
        group.bench_function(format!("transient_T5_racks{racks}"), |b| {
            b.iter(|| {
                chain
                    .generator()
                    .transient_distribution(black_box(&initial), 5.0, 1e-9)
                    .unwrap()
            })
        });
        group.bench_function(format!("stationary_racks{racks}"), |b| {
            b.iter(|| {
                chain
                    .generator()
                    .stationary_distribution(1e-10, 1_000_000)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uniformization);
criterion_main!(benches);
