//! Cost of exact stochastic simulation of the SIR population process as a
//! function of the population size (the finite-`N` side of Figure 6), plus
//! the propensity-maintenance strategies (full rescan vs dependency graph
//! vs incremental total) on models with enough transitions for selective
//! updates to pay off.

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_lang::scenarios::{ring_source, ScenarioRegistry};
use mfu_models::sir::SirModel;
use mfu_sim::gillespie::{PropensityStrategy, SimulationOptions, Simulator};
use mfu_sim::policy::{ConstantPolicy, HysteresisPolicy};
use mfu_sim::selection::SelectionStrategy;
use mfu_sim::tauleap::TauLeapOptions;
use std::hint::black_box;

fn bench_ssa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssa_sir");
    group.sample_size(10);
    let sir = SirModel::paper();
    let model = sir.population_model().unwrap();

    for &scale in &[100usize, 1000, 10000] {
        group.bench_function(format!("constant_theta_N{scale}_T10"), |b| {
            let simulator = Simulator::new(model.clone(), scale).unwrap();
            let counts = sir.initial_counts(scale);
            let options = SimulationOptions::new(10.0).record_stride(64);
            b.iter(|| {
                let mut policy = ConstantPolicy::new(vec![5.0]);
                simulator
                    .simulate(black_box(&counts), &mut policy, &options, 7)
                    .unwrap()
            })
        });
    }

    group.bench_function("hysteresis_theta1_N1000_T10", |b| {
        let simulator = Simulator::new(model.clone(), 1000).unwrap();
        let counts = sir.initial_counts(1000);
        let options = SimulationOptions::new(10.0).record_stride(64);
        b.iter(|| {
            let mut policy = HysteresisPolicy::new(
                vec![sir.contact_max],
                0,
                sir.contact_min,
                sir.contact_max,
                0,
                0.5,
                0.85,
                true,
            );
            simulator
                .simulate(black_box(&counts), &mut policy, &options, 7)
                .unwrap()
        })
    });
    group.finish();
}

/// Full-rescan vs dependency-graph vs incremental-total per-step cost on
/// the 5-transition botnet scenario and a 12-transition migration ring.
fn bench_propensity_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssa_propensity");
    group.sample_size(10);

    let registry = ScenarioRegistry::with_builtins();
    let strategies: [(&str, PropensityStrategy); 3] = [
        ("full_rescan", PropensityStrategy::FullRescan),
        ("dependency_graph", PropensityStrategy::DependencyGraph),
        (
            "incremental_total",
            PropensityStrategy::IncrementalTotal { refresh_every: 256 },
        ),
    ];

    let cases = [
        (
            "botnet5",
            registry.get("botnet").unwrap().source().to_string(),
            2000usize,
            5.0,
        ),
        ("ring12", ring_source(12), 2400usize, 4.0),
    ];
    for (label, source, scale, t_end) in cases {
        let model = mfu_lang::compile(&source).unwrap();
        let population = model.population_model().unwrap();
        let simulator = Simulator::new(population, scale).unwrap();
        let counts = model.initial_counts(scale);
        let theta = model.params().midpoint();
        for (name, strategy) in strategies {
            let options = SimulationOptions::new(t_end)
                .record_stride(256)
                .propensity_strategy(strategy);
            group.bench_function(format!("{label}_{name}_N{scale}"), |b| {
                b.iter(|| {
                    let mut policy = ConstantPolicy::new(theta.clone());
                    simulator
                        .simulate(black_box(&counts), &mut policy, &options, 11)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Linear-scan vs sum-tree vs composition-rejection transition selection
/// at K ∈ {5, 48, 200} transitions. Propensity maintenance is pinned to
/// `IncrementalTotal` so the `O(K)` reference re-summation does not mask
/// the selection cost being measured.
fn bench_selection_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssa_selection");
    group.sample_size(10);

    let registry = ScenarioRegistry::with_builtins();
    let selections: [(&str, SelectionStrategy); 3] = [
        ("linear", SelectionStrategy::LinearScan),
        ("tree", SelectionStrategy::SumTree),
        ("cr", SelectionStrategy::CompositionRejection),
    ];
    let cases = [
        (
            "botnet_K5",
            registry.get("botnet").unwrap().source().to_string(),
            2000usize,
            5.0,
        ),
        (
            "ring_K48",
            registry.get("ring_48").unwrap().source().to_string(),
            2400usize,
            4.0,
        ),
        ("ring_K200", ring_source(200), 2400usize, 4.0),
    ];
    for (label, source, scale, t_end) in cases {
        let model = mfu_lang::compile(&source).unwrap();
        let population = model.population_model().unwrap();
        let simulator = Simulator::new(population, scale).unwrap();
        let counts = model.initial_counts(scale);
        let theta = model.params().midpoint();
        for (name, selection) in selections {
            let options = SimulationOptions::new(t_end)
                .record_stride(256)
                .propensity_strategy(PropensityStrategy::IncrementalTotal { refresh_every: 256 })
                .selection_strategy(selection);
            group.bench_function(format!("{label}_{name}_N{scale}"), |b| {
                b.iter(|| {
                    let mut policy = ConstantPolicy::new(theta.clone());
                    simulator
                        .simulate(black_box(&counts), &mut policy, &options, 11)
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Exact SSA vs adaptive τ-leaping on the registry SIR scenario across
/// population scales. The exact engine's cost grows linearly with `N`
/// while the leap engine's stays near constant, so the ratio is the
/// large-`N` speedup the τ-leap subsystem exists for (the
/// `rate_engine_report` binary records the same comparison, including
/// `N = 10⁶` and the mean-trajectory error, in `BENCH_rate_engine.json`).
fn bench_tauleap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssa_tauleap");
    group.sample_size(10);

    let registry = ScenarioRegistry::with_builtins();
    let model = mfu_lang::compile(registry.get("sir").unwrap().source()).unwrap();
    let population = model.population_model().unwrap();
    let theta = model.params().midpoint();
    let horizon = 3.0;
    for &scale in &[1_000usize, 100_000] {
        let simulator = Simulator::new(population.clone(), scale).unwrap();
        let counts = model.initial_counts(scale);
        let exact = SimulationOptions::new(horizon).record_stride(4096);
        group.bench_function(format!("sir_exact_N{scale}"), |b| {
            b.iter(|| {
                let mut policy = ConstantPolicy::new(theta.clone());
                simulator
                    .simulate(black_box(&counts), &mut policy, &exact, 11)
                    .unwrap()
            })
        });
        let leap = SimulationOptions::new(horizon).tau_leap(TauLeapOptions::new(0.03));
        group.bench_function(format!("sir_tauleap_eps0.03_N{scale}"), |b| {
            b.iter(|| {
                let mut policy = ConstantPolicy::new(theta.clone());
                simulator
                    .simulate(black_box(&counts), &mut policy, &leap, 11)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ssa,
    bench_propensity_strategies,
    bench_selection_strategies,
    bench_tauleap
);
criterion_main!(benches);
