//! Cost of exact stochastic simulation of the SIR population process as a
//! function of the population size (the finite-`N` side of Figure 6).

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_models::sir::SirModel;
use mfu_sim::gillespie::{SimulationOptions, Simulator};
use mfu_sim::policy::{ConstantPolicy, HysteresisPolicy};
use std::hint::black_box;

fn bench_ssa(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssa_sir");
    group.sample_size(10);
    let sir = SirModel::paper();
    let model = sir.population_model().unwrap();

    for &scale in &[100usize, 1000, 10000] {
        group.bench_function(format!("constant_theta_N{scale}_T10"), |b| {
            let simulator = Simulator::new(model.clone(), scale).unwrap();
            let counts = sir.initial_counts(scale);
            let options = SimulationOptions::new(10.0).record_stride(64);
            b.iter(|| {
                let mut policy = ConstantPolicy::new(vec![5.0]);
                simulator
                    .simulate(black_box(&counts), &mut policy, &options, 7)
                    .unwrap()
            })
        });
    }

    group.bench_function("hysteresis_theta1_N1000_T10", |b| {
        let simulator = Simulator::new(model.clone(), 1000).unwrap();
        let counts = sir.initial_counts(1000);
        let options = SimulationOptions::new(10.0).record_stride(64);
        b.iter(|| {
            let mut policy = HysteresisPolicy::new(
                vec![sir.contact_max],
                0,
                sir.contact_min,
                sir.contact_max,
                0,
                0.5,
                0.85,
                true,
            );
            simulator
                .simulate(black_box(&counts), &mut policy, &options, 7)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ssa);
criterion_main!(benches);
