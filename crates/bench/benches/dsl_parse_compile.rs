//! Cost of the DSL front-end (parse + validate + compile) and of the
//! end-to-end DSL-scenario → Pontryagin-bound pipeline, so later PRs can
//! track both the front-end throughput and the analysis hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mfu_lang::scenarios::{ScenarioRegistry, SIR_SOURCE};
use std::hint::black_box;

fn bench_dsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsl_parse_compile");
    group.sample_size(50);

    group.bench_function("parse_sir", |b| {
        b.iter(|| mfu_lang::parse(black_box(SIR_SOURCE)).unwrap())
    });

    group.bench_function("compile_sir", |b| {
        b.iter(|| mfu_lang::compile(black_box(SIR_SOURCE)).unwrap())
    });

    group.bench_function("compile_all_builtin_scenarios", |b| {
        let registry = ScenarioRegistry::with_builtins();
        b.iter(|| {
            for scenario in registry.iter() {
                black_box(scenario.compile().unwrap());
            }
        })
    });

    group.bench_function("sir_drift_eval_1e4", |b| {
        use mfu_core::drift::ImpreciseDrift;
        let model = mfu_lang::compile(SIR_SOURCE).unwrap();
        let drift = model.reduced_drift();
        let x = model.reduced_initial_state();
        b.iter(|| {
            let mut out = mfu_num::StateVec::zeros(2);
            for k in 0..10_000u32 {
                let theta = [1.0 + (k % 10) as f64];
                drift.drift_into(black_box(&x), &theta, &mut out);
            }
            out
        })
    });
    group.finish();

    let mut group = c.benchmark_group("dsl_end_to_end");
    group.sample_size(10);
    group.bench_function("sir_source_to_pontryagin_bound_T3", |b| {
        b.iter(|| {
            let model = mfu_lang::compile(black_box(SIR_SOURCE)).unwrap();
            let solver = PontryaginSolver::new(PontryaginOptions {
                grid_intervals: 120,
                ..Default::default()
            });
            solver
                .coordinate_extremes(
                    &model.reduced_drift(),
                    &model.reduced_initial_state(),
                    3.0,
                    1,
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dsl);
criterion_main!(benches);
