//! Cost of the DSL front-end (parse + validate + compile), of the two rate
//! evaluation engines (interpreted expression tree vs flat bytecode VM),
//! and of the end-to-end DSL-scenario → Pontryagin-bound pipeline, so later
//! PRs can track front-end throughput, the rate hot path and the analysis
//! pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mfu_lang::scenarios::{ScenarioRegistry, SIR_SOURCE};
use mfu_lang::vm::RateProgram;
use mfu_num::StateVec;
use std::hint::black_box;

/// Rules of one model paired with a ring of ϑ points of the model's
/// parameter dimension.
type RuleGroup = (
    Vec<Vec<f64>>,
    Vec<(mfu_lang::expr::CompiledExpr, RateProgram)>,
);

fn bench_dsl(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsl_parse_compile");
    group.sample_size(50);

    group.bench_function("parse_sir", |b| {
        b.iter(|| mfu_lang::parse(black_box(SIR_SOURCE)).unwrap())
    });

    group.bench_function("compile_sir", |b| {
        b.iter(|| mfu_lang::compile(black_box(SIR_SOURCE)).unwrap())
    });

    group.bench_function("compile_all_builtin_scenarios", |b| {
        let registry = ScenarioRegistry::with_builtins();
        b.iter(|| {
            for scenario in registry.iter() {
                black_box(scenario.compile().unwrap());
            }
        })
    });

    group.bench_function("sir_drift_eval_1e4", |b| {
        use mfu_core::drift::ImpreciseDrift;
        let model = mfu_lang::compile(SIR_SOURCE).unwrap();
        let drift = model.reduced_drift();
        let x = model.reduced_initial_state();
        b.iter(|| {
            let mut out = mfu_num::StateVec::zeros(2);
            for k in 0..10_000u32 {
                let theta = [1.0 + (k % 10) as f64];
                drift.drift_into(black_box(&x), &theta, &mut out);
            }
            out
        })
    });
    group.finish();

    // Interpreted tree vs flat bytecode VM over the same rate expressions:
    // every rule of every builtin scenario, 10^4 evaluations per sample.
    // The acceptance criterion of the rate-engine PR is bytecode ≥ 3×
    // faster than the tree here (see BENCH_rate_engine.json).
    let mut group = c.benchmark_group("rate_engine");
    group.sample_size(30);
    let registry = ScenarioRegistry::with_builtins();
    // rules grouped per model, each group with a ring of ϑ points
    // *dimensioned* to its own parameter space (values sweep 1..10
    // regardless of the declared bounds; stays valid for future
    // multi-parameter scenarios; the lookup is hoisted out of the
    // per-rule loop)
    let mut groups: Vec<RuleGroup> = Vec::new();
    let mut max_dim = 0;
    for scenario in registry.iter() {
        let model = scenario.compile().unwrap();
        max_dim = max_dim.max(model.dim());
        let thetas: Vec<Vec<f64>> = (0..10usize)
            .map(|k| {
                (0..model.params().dim())
                    .map(|d| 1.0 + ((k + d) % 10) as f64)
                    .collect()
            })
            .collect();
        let rules = model
            .rules()
            .iter()
            .map(|rule| (rule.rate.clone(), RateProgram::compile(&rule.rate)))
            .collect();
        groups.push((thetas, rules));
    }
    let x: StateVec = (0..max_dim).map(|i| 0.1 + 0.07 * i as f64).collect();

    group.bench_function("tree_eval_all_rules_1e4", |b| {
        b.iter(|| {
            let mut acc = 0.0_f64;
            for k in 0..10_000u32 {
                let slot = (k % 10) as usize;
                for (thetas, rules) in &groups {
                    let theta = &thetas[slot];
                    for (tree, _) in rules {
                        acc += tree.eval(black_box(&x), theta);
                    }
                }
            }
            acc
        })
    });

    group.bench_function("vm_eval_all_rules_1e4", |b| {
        b.iter(|| {
            let mut acc = 0.0_f64;
            for k in 0..10_000u32 {
                let slot = (k % 10) as usize;
                for (thetas, rules) in &groups {
                    let theta = &thetas[slot];
                    for (_, program) in rules {
                        acc += program.eval(black_box(&x), theta);
                    }
                }
            }
            acc
        })
    });
    group.finish();

    let mut group = c.benchmark_group("dsl_end_to_end");
    group.sample_size(10);
    group.bench_function("sir_source_to_pontryagin_bound_T3", |b| {
        b.iter(|| {
            let model = mfu_lang::compile(black_box(SIR_SOURCE)).unwrap();
            let solver = PontryaginSolver::new(PontryaginOptions {
                grid_intervals: 120,
                ..Default::default()
            });
            solver
                .coordinate_extremes(
                    &model.reduced_drift(),
                    &model.reduced_initial_state(),
                    3.0,
                    1,
                )
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dsl);
criterion_main!(benches);
