//! Cost of the Birkhoff-centre construction (the steady-state analysis behind
//! Figures 3, 5 and 6).

use criterion::{criterion_group, criterion_main, Criterion};
use mfu_core::birkhoff::{birkhoff_centre_2d, BirkhoffOptions};
use mfu_models::sir::SirModel;
use std::hint::black_box;

fn bench_birkhoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("birkhoff_centre_sir");
    group.sample_size(10);

    for &theta_max in &[2.0, 5.0, 10.0] {
        group.bench_function(format!("theta_max_{theta_max}"), |b| {
            let sir = SirModel::paper_with_contact_max(theta_max);
            let drift = sir.reduced_drift();
            let x0 = sir.reduced_initial_state();
            let options = BirkhoffOptions {
                step: 2e-3,
                settle_time: 25.0,
                boundary_samples: 80,
                ..Default::default()
            };
            b.iter(|| birkhoff_centre_2d(&drift, black_box(&x0), &options).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_birkhoff);
criterion_main!(benches);
