//! Robustness guard shared by every engine in the workspace.
//!
//! The crate is dependency-free (like `mfu-obs`) and provides four small,
//! orthogonal building blocks:
//!
//! - [`RunBudget`]: declarative caps on wall-clock time, event counts,
//!   τ-leap steps, τ halvings, and Pontryagin sweeps. All caps default to
//!   "unlimited" so an unconfigured budget costs a single branch per check.
//! - [`BudgetTracker`]: an amortised deadline checker. Wall-clock reads are
//!   expensive relative to a propensity update, so the tracker only consults
//!   the clock every `stride` calls; every other call is a counter decrement.
//! - [`Outcome`] / [`TruncationReason`]: the graceful-degradation contract.
//!   Engines that can return a meaningful prefix report
//!   `Outcome::Truncated { reason, reached_t }` alongside the partial result
//!   instead of discarding the work behind an error.
//! - [`FaultPlan`]: deterministic fault injection keyed on event counts (never
//!   wall-clock), used by the fault-injection harness to prove that every
//!   engine fails typed and bounded — never with a panic or a hang.
//!
//! Guard checks never touch the random-number stream or any floating-point
//! state on the numeric path, so a run with a budget that does not trip is
//! bit-identical to a run without one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::fmt;
use std::time::{Duration, Instant};

/// Magnitude above which an ODE sweep is considered divergent.
///
/// Mean-field occupancy measures live in `[0, 1]^d` and scaled population
/// counts stay within a few orders of magnitude of the population size, so a
/// coordinate beyond this cap can only be produced by a numerically exploding
/// integration. The cap is deliberately far below `f64::MAX` so divergence is
/// diagnosed before the state degenerates into infinities.
pub const DIVERGENCE_CAP: f64 = 1e100;

/// Default number of budget checks between genuine wall-clock reads.
pub const DEFAULT_CHECK_STRIDE: u32 = 1024;

/// Declarative resource caps for a single engine run.
///
/// Every field defaults to `None` (unlimited). Budgets are `Copy` so they can
/// ride along inside engine option structs without lifetime plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Wall-clock deadline for the run, checked amortised via [`BudgetTracker`].
    pub wall_clock: Option<Duration>,
    /// Maximum number of simulated events (exact SSA steps, including τ-leap
    /// fallback-burst steps).
    pub max_events: Option<u64>,
    /// Maximum number of accepted τ-leap steps.
    pub max_leap_steps: Option<u64>,
    /// Maximum cumulative number of τ halvings before the run is truncated.
    pub max_tau_halvings: Option<u64>,
    /// Maximum number of forward/backward sweeps in iterative solvers.
    pub max_sweeps: Option<u64>,
}

impl RunBudget {
    /// A budget with every cap disabled.
    #[must_use]
    pub const fn unlimited() -> Self {
        RunBudget {
            wall_clock: None,
            max_events: None,
            max_leap_steps: None,
            max_tau_halvings: None,
            max_sweeps: None,
        }
    }

    /// Caps the wall-clock time of the run.
    #[must_use]
    pub const fn wall_clock(mut self, limit: Duration) -> Self {
        self.wall_clock = Some(limit);
        self
    }

    /// Caps the number of simulated events.
    #[must_use]
    pub const fn max_events(mut self, limit: u64) -> Self {
        self.max_events = Some(limit);
        self
    }

    /// Caps the number of accepted τ-leap steps.
    #[must_use]
    pub const fn max_leap_steps(mut self, limit: u64) -> Self {
        self.max_leap_steps = Some(limit);
        self
    }

    /// Caps the cumulative number of τ halvings.
    #[must_use]
    pub const fn max_tau_halvings(mut self, limit: u64) -> Self {
        self.max_tau_halvings = Some(limit);
        self
    }

    /// Caps the number of solver sweeps.
    #[must_use]
    pub const fn max_sweeps(mut self, limit: u64) -> Self {
        self.max_sweeps = Some(limit);
        self
    }

    /// True when no cap is set; engines may skip tracker setup entirely.
    #[must_use]
    pub const fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none()
            && self.max_events.is_none()
            && self.max_leap_steps.is_none()
            && self.max_tau_halvings.is_none()
            && self.max_sweeps.is_none()
    }
}

/// Why a run stopped before reaching its nominal end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// The wall-clock deadline in [`RunBudget::wall_clock`] expired.
    WallClock,
    /// The event cap ([`RunBudget::max_events`] or an engine-level cap) was hit.
    MaxEvents,
    /// The τ-leap step cap was hit.
    MaxLeapSteps,
    /// The cumulative τ-halving cap was hit.
    MaxTauHalvings,
    /// The solver sweep cap was hit.
    MaxSweeps,
}

impl TruncationReason {
    /// Stable snake_case identifier used in traces and machine-readable output.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            TruncationReason::WallClock => "wall_clock",
            TruncationReason::MaxEvents => "max_events",
            TruncationReason::MaxLeapSteps => "max_leap_steps",
            TruncationReason::MaxTauHalvings => "max_tau_halvings",
            TruncationReason::MaxSweeps => "max_sweeps",
        }
    }
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            TruncationReason::WallClock => "wall-clock budget exhausted",
            TruncationReason::MaxEvents => "event budget exhausted",
            TruncationReason::MaxLeapSteps => "tau-leap step budget exhausted",
            TruncationReason::MaxTauHalvings => "tau-halving budget exhausted",
            TruncationReason::MaxSweeps => "sweep budget exhausted",
        };
        f.write_str(text)
    }
}

/// How a run ended: to completion, or truncated by a budget with a usable
/// prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The run reached its nominal end (`t_end`, absorption, or convergence).
    Completed,
    /// The run stopped early; the result holds everything computed up to
    /// `reached_t` and is internally consistent over `[0, reached_t]`.
    Truncated {
        /// Which budget tripped.
        reason: TruncationReason,
        /// Simulated (not wall-clock) time reached when the budget tripped.
        reached_t: f64,
    },
}

impl Outcome {
    /// True when the run stopped before its nominal end.
    #[must_use]
    pub const fn is_truncated(&self) -> bool {
        matches!(self, Outcome::Truncated { .. })
    }

    /// The truncation reason, if the run was truncated.
    #[must_use]
    pub const fn truncation(&self) -> Option<TruncationReason> {
        match self {
            Outcome::Completed => None,
            Outcome::Truncated { reason, .. } => Some(*reason),
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Completed => f.write_str("completed"),
            Outcome::Truncated { reason, reached_t } => {
                write!(f, "truncated ({reason}) at t = {reached_t}")
            }
        }
    }
}

/// Amortised wall-clock deadline checker.
///
/// `expired()` is designed to sit inside a hot loop: with no deadline it is a
/// single branch on an `Option`; with a deadline it decrements a counter and
/// only reads the clock every `stride` calls. The number of genuine clock
/// reads is available via [`BudgetTracker::checks`] so callers can surface it
/// as an observability counter.
#[derive(Debug)]
pub struct BudgetTracker {
    deadline: Option<Instant>,
    stride: u32,
    until_check: u32,
    checks: u64,
    tripped: bool,
}

impl BudgetTracker {
    /// Starts tracking `budget` from now with the default check stride.
    #[must_use]
    pub fn start(budget: &RunBudget) -> Self {
        Self::with_stride(budget, DEFAULT_CHECK_STRIDE)
    }

    /// Starts tracking `budget` from now, reading the clock every `stride`
    /// calls to [`BudgetTracker::expired`].
    #[must_use]
    pub fn with_stride(budget: &RunBudget, stride: u32) -> Self {
        let stride = stride.max(1);
        BudgetTracker {
            deadline: budget.wall_clock.map(|limit| Instant::now() + limit),
            stride,
            until_check: 1,
            checks: 0,
            tripped: false,
        }
    }

    /// Returns true once the wall-clock deadline has expired.
    ///
    /// Amortised: at most one clock read per `stride` calls. Once the deadline
    /// has tripped the tracker latches and keeps returning true.
    #[inline]
    pub fn expired(&mut self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.tripped {
            return true;
        }
        self.until_check -= 1;
        if self.until_check > 0 {
            return false;
        }
        self.until_check = self.stride;
        self.checks += 1;
        if Instant::now() >= deadline {
            self.tripped = true;
        }
        self.tripped
    }

    /// Forces an immediate clock read, bypassing the amortisation stride.
    ///
    /// Useful at coarse natural boundaries (per sweep, per report interval)
    /// where a check is cheap relative to the work between calls.
    #[inline]
    pub fn expired_now(&mut self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if !self.tripped {
            self.checks += 1;
            self.tripped = Instant::now() >= deadline;
        }
        self.tripped
    }

    /// Number of genuine clock reads performed so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// True when the tracker has a deadline to enforce.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some()
    }
}

/// True when `rate` is a valid propensity: finite and non-negative.
#[inline]
#[must_use]
pub fn rate_is_healthy(rate: f64) -> bool {
    rate.is_finite() && rate >= 0.0
}

/// True when any coordinate is non-finite or exceeds `cap` in magnitude.
///
/// Used by ODE sweeps (hull, Pontryagin) to detect divergence before the
/// state degenerates into infinities. Pass [`DIVERGENCE_CAP`] unless the
/// caller has a tighter domain-specific bound.
#[inline]
#[must_use]
pub fn state_diverged(values: &[f64], cap: f64) -> bool {
    values.iter().any(|v| !v.is_finite() || v.abs() > cap)
}

/// One fault to inject into a simulation at a chosen event count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Event count (number of fired events) from which the fault is active.
    pub at_event: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

/// The effect of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Transition `rule` starts returning NaN, exercising the numeric-health
    /// sentinel at the rate-evaluation boundary.
    NanRate {
        /// Index of the transition class whose rate is poisoned.
        rule: usize,
    },
    /// Transition `rule`'s rate is multiplied by `factor`, exercising stiff
    /// regimes (τ thrashing, budget exhaustion) or — with a non-finite or
    /// negative factor — the sentinel.
    RateSpike {
        /// Index of the transition class whose rate is scaled.
        rule: usize,
        /// Multiplicative factor applied to the rate.
        factor: f64,
    },
    /// Policy parameter `param` is overwritten with `value` before range
    /// containment is checked, exercising policy-discontinuity handling.
    PolicyJump {
        /// Index of the policy parameter to overwrite.
        param: usize,
        /// The value the parameter jumps to.
        value: f64,
    },
}

/// A deterministic schedule of faults keyed on event counts.
///
/// Faults are keyed on the number of events fired so far — never wall-clock —
/// so an injected failure reproduces bit-identically under the same seed.
/// Each fault stays active from its `at_event` onward.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault active from `at_event` onward.
    #[must_use]
    pub fn inject(mut self, at_event: u64, kind: FaultKind) -> Self {
        self.faults.push(Fault { at_event, kind });
        self
    }

    /// Generates a deterministic pseudo-random plan from `seed`.
    ///
    /// Draws `count` faults over transition indices `< rules`, parameter
    /// indices `< params`, and event counts `< horizon_events` using a
    /// splitmix64 stream, so property tests can sweep fault space without a
    /// hand-written schedule.
    #[must_use]
    pub fn seeded(
        seed: u64,
        rules: usize,
        params: usize,
        count: usize,
        horizon_events: u64,
    ) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at_event = if horizon_events == 0 {
                0
            } else {
                next() % horizon_events
            };
            let kind = match next() % 3 {
                0 if rules > 0 => FaultKind::NanRate {
                    rule: (next() as usize) % rules,
                },
                1 if rules > 0 => FaultKind::RateSpike {
                    rule: (next() as usize) % rules,
                    factor: 1e6,
                },
                _ if params > 0 => FaultKind::PolicyJump {
                    param: (next() as usize) % params,
                    value: f64::INFINITY,
                },
                _ => continue,
            };
            plan = plan.inject(at_event, kind);
        }
        plan
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when the plan contains a policy fault.
    ///
    /// Engines that short-circuit constant policies must disable that
    /// short-circuit when this returns true, otherwise the injected jump
    /// would be skipped.
    #[must_use]
    pub fn has_policy_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::PolicyJump { .. }))
    }

    /// Applies active rate faults for transition `rule` at `events` fired.
    #[inline]
    #[must_use]
    pub fn perturb_rate(&self, rule: usize, events: u64, rate: f64) -> f64 {
        let mut out = rate;
        for fault in &self.faults {
            if events < fault.at_event {
                continue;
            }
            match fault.kind {
                FaultKind::NanRate { rule: r } if r == rule => out = f64::NAN,
                FaultKind::RateSpike { rule: r, factor } if r == rule => out *= factor,
                _ => {}
            }
        }
        out
    }

    /// Applies active policy faults to `theta` at `events` fired.
    #[inline]
    pub fn perturb_params(&self, events: u64, theta: &mut [f64]) {
        for fault in &self.faults {
            if events < fault.at_event {
                continue;
            }
            if let FaultKind::PolicyJump { param, value } = fault.kind {
                if let Some(slot) = theta.get_mut(param) {
                    *slot = value;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_has_no_caps() {
        let budget = RunBudget::default();
        assert!(budget.is_unlimited());
        assert_eq!(budget, RunBudget::unlimited());
        let capped = budget.max_events(10);
        assert!(!capped.is_unlimited());
        assert_eq!(capped.max_events, Some(10));
    }

    #[test]
    fn tracker_without_deadline_never_expires_or_reads_clock() {
        let mut tracker = BudgetTracker::start(&RunBudget::unlimited());
        for _ in 0..10_000 {
            assert!(!tracker.expired());
        }
        assert_eq!(tracker.checks(), 0);
        assert!(!tracker.is_armed());
    }

    #[test]
    fn tracker_amortises_clock_reads() {
        let budget = RunBudget::unlimited().wall_clock(Duration::from_secs(3600));
        let mut tracker = BudgetTracker::with_stride(&budget, 100);
        for _ in 0..1000 {
            assert!(!tracker.expired());
        }
        assert_eq!(tracker.checks(), 10);
    }

    #[test]
    fn expired_deadline_latches() {
        let budget = RunBudget::unlimited().wall_clock(Duration::ZERO);
        let mut tracker = BudgetTracker::with_stride(&budget, 1);
        assert!(tracker.expired());
        assert!(tracker.expired());
        let reads = tracker.checks();
        assert!(tracker.expired_now());
        assert_eq!(
            tracker.checks(),
            reads,
            "latched tracker stops reading the clock"
        );
    }

    #[test]
    fn outcome_reports_truncation() {
        assert!(!Outcome::Completed.is_truncated());
        let truncated = Outcome::Truncated {
            reason: TruncationReason::WallClock,
            reached_t: 1.5,
        };
        assert!(truncated.is_truncated());
        assert_eq!(truncated.truncation(), Some(TruncationReason::WallClock));
        assert_eq!(
            truncated.to_string(),
            "truncated (wall-clock budget exhausted) at t = 1.5"
        );
        assert_eq!(TruncationReason::MaxEvents.name(), "max_events");
    }

    #[test]
    fn health_helpers_classify_rates_and_states() {
        assert!(rate_is_healthy(0.0));
        assert!(rate_is_healthy(3.5));
        assert!(!rate_is_healthy(f64::NAN));
        assert!(!rate_is_healthy(f64::INFINITY));
        assert!(!rate_is_healthy(-1e-9));
        assert!(!state_diverged(&[0.0, 1.0, -0.5], DIVERGENCE_CAP));
        assert!(state_diverged(&[0.0, f64::NAN], DIVERGENCE_CAP));
        assert!(state_diverged(&[1e120], DIVERGENCE_CAP));
    }

    #[test]
    fn fault_plan_activates_at_event_counts() {
        let plan = FaultPlan::new()
            .inject(10, FaultKind::NanRate { rule: 1 })
            .inject(
                5,
                FaultKind::RateSpike {
                    rule: 0,
                    factor: 100.0,
                },
            )
            .inject(
                3,
                FaultKind::PolicyJump {
                    param: 0,
                    value: 9.0,
                },
            );
        assert!(plan.has_policy_faults());

        assert_eq!(plan.perturb_rate(0, 4, 2.0), 2.0);
        assert_eq!(plan.perturb_rate(0, 5, 2.0), 200.0);
        assert!(plan.perturb_rate(1, 9, 2.0) == 2.0);
        assert!(plan.perturb_rate(1, 10, 2.0).is_nan());

        let mut theta = [0.5, 0.5];
        plan.perturb_params(2, &mut theta);
        assert_eq!(theta, [0.5, 0.5]);
        plan.perturb_params(3, &mut theta);
        assert_eq!(theta, [9.0, 0.5]);

        let mut short = [0.25];
        FaultPlan::new()
            .inject(
                0,
                FaultKind::PolicyJump {
                    param: 7,
                    value: 1.0,
                },
            )
            .perturb_params(0, &mut short);
        assert_eq!(short, [0.25], "out-of-range parameter index is ignored");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(42, 3, 2, 8, 1000);
        let b = FaultPlan::seeded(42, 3, 2, 8, 1000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for fault in a.faults() {
            assert!(fault.at_event < 1000);
            match fault.kind {
                FaultKind::NanRate { rule } | FaultKind::RateSpike { rule, .. } => {
                    assert!(rule < 3);
                }
                FaultKind::PolicyJump { param, .. } => assert!(param < 2),
            }
        }
        let c = FaultPlan::seeded(43, 3, 2, 8, 1000);
        assert_ne!(a, c, "different seeds give different plans");
    }
}
