//! Property-based tests for the mean-field analyses: the fundamental
//! soundness invariants (hull bounds contain solutions, Pontryagin maxima
//! dominate every admissible constant parameter, extremal-θ optimisation
//! dominates random samples).

use mfu_core::drift::{FnDrift, ImpreciseDrift};
use mfu_core::hull::{DifferentialHull, HullOptions};
use mfu_core::inclusion::DifferentialInclusion;
use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
use mfu_core::signal::PiecewiseSignal;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_num::StateVec;
use proptest::prelude::*;

/// A random two-dimensional drift, affine in the parameter and globally
/// contractive in the state (so trajectories stay bounded):
/// `ẋ0 = θ (x1 - x0) + c0 - x0`, `ẋ1 = c1 - x1 + 0.5 θ x0`.
fn coupled_drift(
    c0: f64,
    c1: f64,
    lo: f64,
    hi: f64,
) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
    let params = ParamSpace::new(vec![("theta", Interval::new(lo, hi).unwrap())]).unwrap();
    FnDrift::new(
        2,
        params,
        move |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0] * (x[1] - x[0]) + c0 - x[0];
            dx[1] = c1 - x[1] + 0.5 * th[0] * x[0];
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The differential hull contains the constant-parameter solutions for
    /// every admissible parameter value.
    #[test]
    fn hull_contains_constant_parameter_solutions(
        c0 in -1.0..1.0f64,
        c1 in -1.0..1.0f64,
        lo in 0.1..0.5f64,
        width in 0.1..0.6f64,
        pick in 0.0..1.0f64,
    ) {
        let drift = coupled_drift(c0, c1, lo, lo + width);
        let x0 = StateVec::from([0.2, -0.1]);
        let hull = DifferentialHull::new(
            &drift,
            HullOptions { step: 5e-3, time_intervals: 10, ..Default::default() },
        );
        let bounds = hull.bounds(&x0, 2.0).unwrap();
        let theta = lo + pick * width;
        let inclusion = DifferentialInclusion::new(&drift);
        let traj = inclusion.solve_constant(&[theta], x0, 2.0).unwrap();
        for (k, &t) in bounds.times().iter().enumerate() {
            let state = traj.at(t).unwrap();
            prop_assert!(bounds.contains_at(k, &state, 2e-3), "violated at t = {t}");
        }
    }

    /// The Pontryagin maximum dominates the terminal value of every constant
    /// parameter, and the minimum is dominated by it.
    #[test]
    fn pontryagin_extremes_dominate_constant_parameters(
        c0 in -1.0..1.0f64,
        c1 in -1.0..1.0f64,
        lo in 0.1..0.5f64,
        width in 0.1..0.6f64,
        pick in 0.0..1.0f64,
    ) {
        let drift = coupled_drift(c0, c1, lo, lo + width);
        let x0 = StateVec::from([0.2, -0.1]);
        let solver = PontryaginSolver::new(PontryaginOptions { grid_intervals: 80, ..Default::default() });
        let (min_v, max_v) = solver.coordinate_extremes(&drift, &x0, 1.5, 1).unwrap();
        let theta = lo + pick * width;
        let inclusion = DifferentialInclusion::new(&drift);
        let value = inclusion.solve_constant(&[theta], x0, 1.5).unwrap().last_state()[1];
        prop_assert!(value <= max_v + 1e-3, "constant θ = {theta} beats the max: {value} > {max_v}");
        prop_assert!(value >= min_v - 1e-3, "constant θ = {theta} undercuts the min: {value} < {min_v}");
    }

    /// The Pontryagin maximum also dominates random piecewise-constant
    /// (switching) selections of the inclusion.
    #[test]
    fn pontryagin_maximum_dominates_random_switching_signals(
        c0 in -1.0..1.0f64,
        lo in 0.1..0.5f64,
        width in 0.2..0.6f64,
        switch in 0.2..1.2f64,
        first_high in proptest::bool::ANY,
    ) {
        let drift = coupled_drift(c0, 0.3, lo, lo + width);
        let x0 = StateVec::from([0.2, -0.1]);
        let horizon = 1.5;
        let solver = PontryaginSolver::new(PontryaginOptions { grid_intervals: 80, ..Default::default() });
        let max_v = solver.maximize_coordinate(&drift, &x0, horizon, 1).unwrap().objective_value();

        let (a, b) = if first_high { (lo + width, lo) } else { (lo, lo + width) };
        let signal = PiecewiseSignal::new(vec![switch], vec![vec![a], vec![b]]);
        let inclusion = DifferentialInclusion::new(&drift);
        let value = inclusion
            .solve_fixed_step(&signal, x0, horizon, 1e-3)
            .unwrap()
            .last_state()[1];
        prop_assert!(value <= max_v + 1e-3, "switching signal beats the sweep: {value} > {max_v}");
    }

    /// `extremal_theta` dominates the value of the linear functional at any
    /// sampled parameter of the box.
    #[test]
    fn extremal_theta_dominates_sampled_parameters(
        x0 in -2.0..2.0f64,
        x1 in -2.0..2.0f64,
        d0 in -1.0..1.0f64,
        d1 in -1.0..1.0f64,
        pick in 0.0..1.0f64,
    ) {
        let drift = coupled_drift(0.3, -0.2, 0.2, 1.0);
        let x = StateVec::from([x0, x1]);
        let direction = StateVec::from([d0, d1]);
        let (_, best) = drift.extremal_theta(&x, &direction);
        let theta = 0.2 + pick * 0.8;
        let value = drift.drift(&x, &[theta]).dot(&direction);
        prop_assert!(value <= best + 1e-9);
    }

    /// Hull lower bounds never exceed upper bounds, at any reported time.
    #[test]
    fn hull_bounds_are_ordered(c0 in -1.0..1.0f64, c1 in -1.0..1.0f64, width in 0.1..1.0f64) {
        let drift = coupled_drift(c0, c1, 0.2, 0.2 + width);
        let hull = DifferentialHull::new(
            &drift,
            HullOptions { step: 5e-3, time_intervals: 10, ..Default::default() },
        );
        let bounds = hull.bounds(&StateVec::from([0.0, 0.0]), 2.0).unwrap();
        for (lo, hi) in bounds.lower().iter().zip(bounds.upper().iter()) {
            prop_assert!(lo.le(hi));
        }
    }
}
