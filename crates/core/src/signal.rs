//! Deterministic parameter signals `ϑ(t)`.
//!
//! A *solution* of the mean-field differential inclusion is obtained by
//! choosing a measurable selection `ϑ(t) ∈ Θ` and integrating
//! `ẋ = f(x, ϑ(t))`. This module provides the deterministic signals used by
//! the analyses: constants (the uncertain scenario), piecewise-constant
//! switching schedules (the bang-bang extremal controls produced by the
//! Pontryagin sweep), signals interpolated from a grid, and arbitrary
//! closures of time.
//!
//! These signals are the deterministic counterpart of the stochastic
//! [`ParameterPolicy`](../../mfu_sim/policy/trait.ParameterPolicy.html) used
//! by the simulator; they take no randomness and do not observe the state.

use mfu_num::grid::GridSignal;

/// A deterministic parameter signal `t ↦ ϑ(t)`.
pub trait ParamSignal {
    /// The parameter vector in effect at time `t`.
    fn theta_at(&self, t: f64) -> Vec<f64>;
}

impl<S: ParamSignal + ?Sized> ParamSignal for &S {
    fn theta_at(&self, t: f64) -> Vec<f64> {
        (**self).theta_at(t)
    }
}

/// A constant signal: the uncertain scenario for one candidate `ϑ`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantSignal {
    theta: Vec<f64>,
}

impl ConstantSignal {
    /// Creates a signal that always returns `theta`.
    pub fn new(theta: Vec<f64>) -> Self {
        ConstantSignal { theta }
    }
}

impl ParamSignal for ConstantSignal {
    fn theta_at(&self, _t: f64) -> Vec<f64> {
        self.theta.clone()
    }
}

/// A piecewise-constant switching schedule (e.g. a bang-bang control).
///
/// The value on `[t_k, t_{k+1})` is `values[k]`; before the first breakpoint
/// `values[0]` applies, after the last breakpoint the last value applies.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseSignal {
    breakpoints: Vec<f64>,
    values: Vec<Vec<f64>>,
}

impl PiecewiseSignal {
    /// Creates a schedule from breakpoints `t_1 < … < t_m` and `m + 1` values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != breakpoints.len() + 1` or the breakpoints
    /// are not strictly increasing.
    pub fn new(breakpoints: Vec<f64>, values: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            values.len(),
            breakpoints.len() + 1,
            "need one more value than breakpoints"
        );
        assert!(
            breakpoints.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly increasing"
        );
        PiecewiseSignal {
            breakpoints,
            values,
        }
    }
}

impl ParamSignal for PiecewiseSignal {
    fn theta_at(&self, t: f64) -> Vec<f64> {
        let idx = self.breakpoints.iter().take_while(|&&b| t >= b).count();
        self.values[idx].clone()
    }
}

/// A signal read from a [`GridSignal`] with piecewise-constant sampling.
///
/// This is how the extremal control returned by the Pontryagin sweep is
/// replayed through the plain integrator (e.g. to plot the extremal
/// trajectories of Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct GridParamSignal {
    signal: GridSignal,
}

impl GridParamSignal {
    /// Wraps a grid signal.
    pub fn new(signal: GridSignal) -> Self {
        GridParamSignal { signal }
    }

    /// The wrapped grid signal.
    pub fn grid_signal(&self) -> &GridSignal {
        &self.signal
    }
}

impl ParamSignal for GridParamSignal {
    fn theta_at(&self, t: f64) -> Vec<f64> {
        self.signal.at_piecewise_constant(t).into_inner()
    }
}

/// A signal defined by an arbitrary closure of time.
pub struct FnSignal<F> {
    f: F,
}

impl<F> FnSignal<F>
where
    F: Fn(f64) -> Vec<f64>,
{
    /// Creates a signal from a closure.
    pub fn new(f: F) -> Self {
        FnSignal { f }
    }
}

impl<F> ParamSignal for FnSignal<F>
where
    F: Fn(f64) -> Vec<f64>,
{
    fn theta_at(&self, t: f64) -> Vec<f64> {
        (self.f)(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_num::grid::TimeGrid;
    use mfu_num::StateVec;

    #[test]
    fn constant_signal() {
        let s = ConstantSignal::new(vec![1.0, 2.0]);
        assert_eq!(s.theta_at(0.0), vec![1.0, 2.0]);
        assert_eq!(s.theta_at(100.0), vec![1.0, 2.0]);
    }

    #[test]
    fn piecewise_signal_switches() {
        let s = PiecewiseSignal::new(vec![1.0, 2.0], vec![vec![0.0], vec![5.0], vec![9.0]]);
        assert_eq!(s.theta_at(0.5), vec![0.0]);
        assert_eq!(s.theta_at(1.0), vec![5.0]);
        assert_eq!(s.theta_at(1.99), vec![5.0]);
        assert_eq!(s.theta_at(2.0), vec![9.0]);
        assert_eq!(s.theta_at(10.0), vec![9.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_signal_validates_breakpoints() {
        let _ = PiecewiseSignal::new(vec![2.0, 1.0], vec![vec![0.0], vec![1.0], vec![2.0]]);
    }

    #[test]
    fn grid_signal_is_piecewise_constant() {
        let grid = TimeGrid::new(0.0, 1.0, 2).unwrap();
        let gs = GridSignal::new(
            grid,
            vec![
                StateVec::from([1.0]),
                StateVec::from([2.0]),
                StateVec::from([3.0]),
            ],
        )
        .unwrap();
        let s = GridParamSignal::new(gs);
        assert_eq!(s.theta_at(0.1), vec![1.0]);
        assert_eq!(s.theta_at(0.6), vec![2.0]);
        assert_eq!(s.grid_signal().dim(), 1);
    }

    #[test]
    fn fn_signal_evaluates_closure() {
        let s = FnSignal::new(|t: f64| vec![t.sin(), t.cos()]);
        let v = s.theta_at(0.0);
        assert_eq!(v, vec![0.0, 1.0]);
    }

    #[test]
    fn references_are_signals_too() {
        let s = ConstantSignal::new(vec![3.0]);
        fn sample<S: ParamSignal>(signal: S) -> Vec<f64> {
            signal.theta_at(1.0)
        }
        assert_eq!(sample(&s), vec![3.0]);
    }
}
