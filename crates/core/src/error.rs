use std::fmt;

use mfu_ctmc::CtmcError;
use mfu_num::NumError;

/// Error type for the mean-field analysis layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Inconsistent inputs (wrong dimensions, empty grids, invalid horizons, …).
    InvalidInput {
        /// Description of the offending input.
        message: String,
    },
    /// An iterative analysis did not converge within its budget.
    NoConvergence {
        /// Name of the analysis.
        analysis: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iterate.
        residual: f64,
    },
    /// An ODE sweep left the numerically meaningful range (NaN, infinity,
    /// or magnitudes beyond [`mfu_guard::DIVERGENCE_CAP`]).
    ///
    /// Reported with the analysis name and the integration time at which
    /// divergence was detected, so the caller can diagnose the sweep
    /// instead of receiving poisoned bounds.
    Diverged {
        /// Name of the analysis whose sweep diverged.
        analysis: &'static str,
        /// Integration time at which divergence was detected.
        time: f64,
    },
    /// The analysis is only available for a specific state dimension
    /// (e.g. the Birkhoff-centre construction is two-dimensional).
    UnsupportedDimension {
        /// Dimension required by the analysis.
        required: usize,
        /// Dimension of the supplied model.
        found: usize,
    },
    /// An error bubbled up from the modelling layer.
    Model(CtmcError),
    /// An error bubbled up from the numerical layer.
    Numerical(NumError),
}

impl CoreError {
    /// Creates an [`CoreError::InvalidInput`] from anything printable.
    pub fn invalid_input(message: impl Into<String>) -> Self {
        CoreError::InvalidInput {
            message: message.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            CoreError::NoConvergence { analysis, iterations, residual } => write!(
                f,
                "{analysis} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            CoreError::Diverged { analysis, time } => {
                write!(f, "{analysis} diverged at t = {time}")
            }
            CoreError::UnsupportedDimension { required, found } => {
                write!(f, "analysis requires dimension {required}, model has dimension {found}")
            }
            CoreError::Model(err) => write!(f, "model error: {err}"),
            CoreError::Numerical(err) => write!(f, "numerical error: {err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(err) => Some(err),
            CoreError::Numerical(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CtmcError> for CoreError {
    fn from(err: CtmcError) -> Self {
        CoreError::Model(err)
    }
}

impl From<NumError> for CoreError {
    fn from(err: NumError) -> Self {
        CoreError::Numerical(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::invalid_input("bad grid")
            .to_string()
            .contains("bad grid"));
        let err = CoreError::NoConvergence {
            analysis: "pontryagin",
            iterations: 7,
            residual: 0.1,
        };
        assert!(err.to_string().contains("pontryagin"));
        let err = CoreError::Diverged {
            analysis: "differential hull",
            time: 0.25,
        };
        assert!(err.to_string().contains("differential hull") && err.to_string().contains("0.25"));
        let err = CoreError::UnsupportedDimension {
            required: 2,
            found: 4,
        };
        assert!(err.to_string().contains("dimension 2"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let err: CoreError = CtmcError::invalid_model("oops").into();
        assert!(std::error::Error::source(&err).is_some());
        let err: CoreError = NumError::invalid_argument("oops").into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<CoreError>();
    }
}
